//! A dependency-free HTTP/1.1 foundation on `std::net`.
//!
//! Factored out of the admin endpoint so every HTTP surface of the
//! engine — the read-only [`crate::AdminServer`] and the client-facing
//! `asterix-server` query/ingest service — shares one bounded request
//! parser, one response writer, and one accept loop:
//!
//! * [`Request`]: one parsed request with lower-cased headers and a
//!   fully-read body. Parsing is bounded — request heads larger than
//!   [`HttpLimits::max_head_bytes`] answer `431`, bodies larger than
//!   [`HttpLimits::max_body_bytes`] answer `413` — before any
//!   allocation proportional to attacker input.
//! * [`Response`]: a complete (`Content-Length`) response.
//! * [`ResponseWriter`]: handed to handlers that stream; chunked
//!   transfer encoding via [`ResponseWriter::start_chunked`] lets a
//!   handler emit result frames as they are produced without ever
//!   materializing the full body.
//! * [`HttpServer`]: the accept loop — one detached thread per
//!   connection (`Connection: close`), non-blocking accept with a 10 ms
//!   poll so dropping the server unbinds promptly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Size and time bounds applied to every connection before the handler
/// runs.
#[derive(Clone, Debug)]
pub struct HttpLimits {
    /// Largest request head (request line + headers) accepted before
    /// answering `431 Request Header Fields Too Large`.
    pub max_head_bytes: usize,
    /// Largest request body (`Content-Length`) accepted before
    /// answering `413 Content Too Large`.
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout (a stalled client cannot pin
    /// its handler thread forever).
    pub read_timeout: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// One fully-parsed HTTP request: request line, headers (names
/// lower-cased), and the complete body.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// The request path with any query string still attached; use
    /// [`Request::route_path`] for dispatch.
    pub path: String,
    /// Header `(name, value)` pairs; names are lower-cased, values
    /// trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of `name` (case-insensitive), if the header was sent.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path with any `?query` stripped — what routing matches on.
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// The body decoded as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// One complete HTTP response about to be written with a
/// `Content-Length` header.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The full response body.
    pub body: String,
    /// Extra headers appended verbatim, e.g. `("Retry-After", "1")`.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response from an ADM [`asterix_adm::Value`].
    pub fn json(status: u16, body: asterix_adm::Value) -> Response {
        Response::raw_json(status, asterix_adm::json::to_string(&body))
    }

    /// A JSON response from already-serialized JSON text.
    pub fn raw_json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A minimal JSON error payload: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            asterix_adm::Value::record(vec![(
                "error".into(),
                asterix_adm::Value::from(message),
            )]),
        )
    }

    /// Append an extra response header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra_headers.push((name, value));
        self
    }
}

/// The standard reason phrase for the status codes this engine emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        499 => "Query Cancelled",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        507 => "Insufficient Storage",
        _ => "Internal Server Error",
    }
}

/// Write access to one connection's response, handed to handlers.
///
/// A handler either returns a full [`Response`] (written by the server
/// loop) or calls [`ResponseWriter::start_chunked`] and streams the
/// body itself, in which case it returns `None`.
pub struct ResponseWriter<'a> {
    stream: &'a mut TcpStream,
    streamed: bool,
}

impl<'a> ResponseWriter<'a> {
    /// Begin a `Transfer-Encoding: chunked` response. After this, the
    /// status line is on the wire — errors discovered later must be
    /// encoded in the body protocol (e.g. a final NDJSON error line).
    pub fn start_chunked(
        &mut self,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
    ) -> std::io::Result<ChunkedBody<'_>> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            status,
            status_text(status),
            content_type,
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.streamed = true;
        Ok(ChunkedBody {
            stream: self.stream,
            finished: false,
        })
    }

    /// Detach an owned, lazily-started chunked stream for this
    /// connection, usable from another thread (e.g. an executor's
    /// result-sink callback writing frames straight to the socket).
    ///
    /// Nothing goes on the wire until the first
    /// [`StreamHandle::write_chunk`] — so a handler that detaches but
    /// then fails before producing any output can still return a full
    /// typed error [`Response`]. If the handle *did* start, the handler
    /// must call [`ResponseWriter::mark_streamed`] and return `None`.
    pub fn detach(
        &mut self,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
    ) -> std::io::Result<StreamHandle> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            status,
            status_text(status),
            content_type,
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        Ok(StreamHandle {
            stream: self.stream.try_clone()?,
            head,
            started: false,
            finished: false,
        })
    }

    /// Record that a detached [`StreamHandle`] put the response on the
    /// wire, so the server loop must not write another one.
    pub fn mark_streamed(&mut self) {
        self.streamed = true;
    }
}

/// An owned chunked-response stream, independent of the handler's
/// borrow of the connection (see [`ResponseWriter::detach`]).
///
/// The status line and headers are written lazily by the first
/// [`StreamHandle::write_chunk`]; [`StreamHandle::started`] tells the
/// handler whether the status line is already on the wire (in-band
/// error protocol) or still free to choose (full typed response).
pub struct StreamHandle {
    stream: TcpStream,
    head: String,
    started: bool,
    finished: bool,
}

impl StreamHandle {
    /// Whether the status line has been written.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Write one chunk, writing the response head first if this is the
    /// first. Empty input is a no-op (a zero-length chunk would
    /// terminate the body).
    pub fn write_chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        if !self.started {
            self.stream.write_all(self.head.as_bytes())?;
            self.started = true;
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the body (zero-length chunk) if it started. Idempotent.
    pub fn finish(&mut self) -> std::io::Result<()> {
        if self.finished || !self.started {
            self.finished = true;
            return Ok(());
        }
        self.finished = true;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        if self.started && !self.finished {
            let _ = self.stream.write_all(b"0\r\n\r\n");
            let _ = self.stream.flush();
        }
    }
}

/// An in-progress chunked response body.
///
/// Each [`ChunkedBody::write_chunk`] is one HTTP chunk flushed to the
/// socket immediately — the unit of streaming the client observes.
/// [`ChunkedBody::finish`] writes the terminating zero-length chunk;
/// dropping without finishing truncates the body, which chunked
/// encoding makes detectable client-side.
pub struct ChunkedBody<'a> {
    stream: &'a mut TcpStream,
    finished: bool,
}

impl ChunkedBody<'_> {
    /// Write one chunk (no-op for empty input: a zero-length chunk
    /// would terminate the body).
    pub fn write_chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the body (zero-length chunk). Idempotent.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.finished = true;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

impl Drop for ChunkedBody<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort terminator so well-behaved early returns still
            // produce a complete body; write errors are already fatal to
            // the connection.
            let _ = self.stream.write_all(b"0\r\n\r\n");
            let _ = self.stream.flush();
        }
    }
}

/// A running HTTP server: a bound listener plus its accept-loop thread.
///
/// Generic over the handler: the admin endpoint and the query/ingest
/// service are both instances of this loop with different routers.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:7654"`, port `0` for OS-assigned)
    /// and serve requests on a background thread named `name`.
    ///
    /// `handler` runs on a per-connection thread. Returning
    /// `Some(response)` writes a complete response; returning `None`
    /// asserts the handler already streamed one via the
    /// [`ResponseWriter`].
    pub fn bind<H>(addr: &str, name: &str, limits: HttpLimits, handler: H) -> std::io::Result<HttpServer>
    where
        H: Fn(&Request, &mut ResponseWriter<'_>) -> Option<Response> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handler = Arc::new(handler);
        let conn_name = format!("{name}-conn");
        let accept_thread = thread::Builder::new().name(name.to_string()).spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let handler = Arc::clone(&handler);
                        let limits = limits.clone();
                        // Connections are short-lived (`Connection:
                        // close`), so handler threads are detached
                        // rather than tracked.
                        let _ = thread::Builder::new()
                            .name(conn_name.clone())
                            .spawn(move || handle_connection(stream, &limits, &*handler));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => thread::sleep(ACCEPT_POLL),
                }
            }
        })?;
        Ok(HttpServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound socket address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's base URL, e.g. `http://127.0.0.1:7654`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stop accepting connections and join the accept thread. Called
    /// automatically on drop; idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection<H>(mut stream: TcpStream, limits: &HttpLimits, handler: &H)
where
    H: Fn(&Request, &mut ResponseWriter<'_>) -> Option<Response>,
{
    // Accepted sockets are blocking on Linux, but make it explicit —
    // the bounded read below relies on blocking reads with a timeout.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    // Streamed NDJSON goes out as many small chunk writes; with Nagle
    // enabled each can stall up to a delayed-ACK interval (~40 ms).
    let _ = stream.set_nodelay(true);
    match read_request(&mut stream, limits) {
        Ok(request) => {
            let mut writer = ResponseWriter {
                stream: &mut stream,
                streamed: false,
            };
            let full = handler(&request, &mut writer);
            let streamed = writer.streamed;
            match full {
                Some(response) => {
                    let _ = write_response(&mut stream, &response);
                }
                None if streamed => {}
                None => {
                    // Handler bug: neither streamed nor returned.
                    let _ = write_response(
                        &mut stream,
                        &Response::error(500, "handler produced no response"),
                    );
                }
            }
        }
        Err(status) => {
            let _ = write_response(&mut stream, &Response::error(status, status_text(status)));
        }
    }
}

/// Read and parse one full request (head + body) under `limits`.
/// Returns the request or an HTTP status code to answer with.
fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, u16> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(431);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Client closed its half; parse what we have.
                break buf.len();
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(400), // timeout or reset mid-request
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_string();
    let path = parts.next().ok_or(400u16)?.to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/") => {}
        _ => return Err(400),
    }
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    // Body: exactly Content-Length bytes (we never accept chunked
    // request bodies — every client of this API sends a sized body).
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(413);
    }
    let mut body: Vec<u8> = buf[head_end..].to_vec();
    // Over-read past the head can only come from this request's body
    // (Connection: close ⇒ no pipelining clients to be fair to).
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(400), // body shorter than declared
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(400),
        }
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Offset just past the `\r\n\r\n` (or `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(i + 4);
    }
    buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2)
}

/// Write one complete response with `Content-Length`.
pub fn write_response(stream: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        r.status,
        status_text(r.status),
        r.content_type,
        r.body.len()
    );
    for (name, value) in &r.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        String::from_utf8_lossy(&out).to_string()
    }

    #[test]
    fn serves_full_and_chunked_responses() {
        let server = HttpServer::bind("127.0.0.1:0", "t", HttpLimits::default(), |req, w| {
            match req.route_path() {
                "/full" => Some(Response::text(200, format!("body={}", req.body_str()))),
                "/stream" => {
                    let mut body = w.start_chunked(200, "text/plain", &[]).unwrap();
                    body.write_chunk(b"one\n").unwrap();
                    body.write_chunk(b"two\n").unwrap();
                    body.finish().unwrap();
                    None
                }
                _ => Some(Response::error(404, "nope")),
            }
        })
        .unwrap();
        let addr = server.local_addr();

        let full = http_roundtrip(
            addr,
            "POST /full HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi",
        );
        assert!(full.starts_with("HTTP/1.1 200"), "{full}");
        assert!(full.contains("body=hi"), "{full}");

        let streamed = http_roundtrip(addr, "GET /stream HTTP/1.1\r\n\r\n");
        assert!(streamed.contains("Transfer-Encoding: chunked"), "{streamed}");
        assert!(streamed.contains("one\n"), "{streamed}");
        assert!(streamed.ends_with("0\r\n\r\n"), "{streamed}");

        let missing = http_roundtrip(addr, "GET /other HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    }

    #[test]
    fn bounds_head_and_body() {
        let limits = HttpLimits {
            max_head_bytes: 1024,
            max_body_bytes: 64,
            ..HttpLimits::default()
        };
        let server =
            HttpServer::bind("127.0.0.1:0", "t", limits, |_req, _w| Some(Response::text(200, "ok".into())))
                .unwrap();
        let addr = server.local_addr();

        // Oversized head → 431. The server stops reading at the cap and
        // may reset with padding unread, so tolerate write errors.
        let mut stream = TcpStream::connect(addr).unwrap();
        let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(4096));
        let _ = stream.write_all(huge.as_bytes());
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 431"));

        // Oversized declared body → 413 before reading it.
        let r = http_roundtrip(addr, "POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 413"), "{r}");

        // Garbage request line → 400.
        let r = http_roundtrip(addr, "NONSENSE\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");

        // Body shorter than declared → 400.
        let r = http_roundtrip(addr, "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");
    }

    #[test]
    fn headers_are_case_insensitive_and_query_strings_strip() {
        let server = HttpServer::bind("127.0.0.1:0", "t", HttpLimits::default(), |req, _w| {
            assert_eq!(req.header("X-Custom"), Some("yes"));
            assert_eq!(req.header("x-custom"), Some("yes"));
            assert_eq!(req.route_path(), "/p");
            Some(Response::text(200, "ok".into()))
        })
        .unwrap();
        let r = http_roundtrip(
            server.local_addr(),
            "GET /p?a=1&b=2 HTTP/1.1\r\nX-CUSTOM: yes\r\n\r\n",
        );
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    }
}
