//! Query admission control on top of the shared worker pool.
//!
//! The seed instance executed every query the moment it arrived, each on
//! its own freshly spawned set of operator threads — N concurrent clients
//! meant N × operators × partitions live threads and unbounded memory.
//! This module bounds both, the way an AsterixDB cluster controller
//! bounds its job queue:
//!
//! * a single instance-lifetime [`asterix_hyracks::WorkerPool`] executes
//!   every admitted query's operator tasks (thread count fixed at
//!   `SchedulerConfig::workers`),
//! * an admission controller caps concurrently *executing* queries at
//!   `max_concurrent_queries`; arrivals beyond the cap wait in a bounded
//!   FIFO queue (`queue_depth`) and are rejected with a typed
//!   [`ExecError::QueueFull`] when it is exhausted,
//! * queueing is fair across query classes: one FIFO per
//!   [`QueryClass`], served round-robin, so a flood of cheap scans cannot
//!   starve index joins (or vice versa),
//! * each admitted query gets a per-query [`MemoryBudget`] of
//!   `memory_budget_bytes`, charged by the executor for every buffered
//!   frame and postings-cache install; exceeding it stops the query with
//!   [`ExecError::MemoryBudgetExceeded`] instead of ballooning.
//!
//! A queued query stays cancellable: its [`CancelToken`] (installed
//! before admission) is polled while waiting, so cancellation dequeues it
//! immediately and a deadline expiring in the queue surfaces as
//! [`ExecError::AdmissionTimeout`] rather than a silent hang.
//!
//! Everything the controller observes — queue-wait histogram, admitted /
//! queued / rejected / cancelled counters, live inflight and queue-length
//! gauges, pool utilization — is exported through [`SchedulerSnapshot`]
//! into `Instance::metrics_snapshot`.

use crate::telemetry::{Histogram, HistogramSnapshot, QueryClass};
use asterix_hyracks::{CancelToken, ExecError, SchedulerConfig, WorkerPool};
use asterix_storage::MemoryBudget;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a queued query sleeps between cancellation checks. Admission
/// wakes waiters eagerly on every slot release, so this only bounds the
/// latency of noticing an *external* cancel or deadline.
const ADMISSION_POLL: Duration = Duration::from_millis(5);

/// Monotone counters + queue-wait histogram, all relaxed atomics.
#[derive(Debug, Default)]
struct SchedulerCounters {
    admitted: AtomicU64,
    queued_total: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_timeout: AtomicU64,
    cancelled_while_queued: AtomicU64,
    queue_wait: Histogram,
}

/// How many per-query admission records the scheduler retains. Enough
/// to correlate a burst of queries with the registry / slow log by
/// `query_id` without growing unboundedly.
const RECENT_ADMISSIONS: usize = 32;

/// One query's passage through admission, keyed by the instance-wide
/// `query_id` so scheduler metrics correlate with the running-query
/// registry, the slow-query log, and span exports.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionRecord {
    /// The query's instance-wide id.
    pub query_id: u64,
    /// Workload class it was admitted under.
    pub class: QueryClass,
    /// Time it waited for admission (0 for fast-path admits).
    pub queue_wait_us: u64,
}

/// Mutable admission state, guarded by one mutex.
#[derive(Debug)]
struct AdmissionState {
    /// Queries currently holding an [`AdmissionPermit`].
    inflight: usize,
    /// One FIFO of waiting tickets per [`QueryClass`] slot.
    queues: [VecDeque<u64>; 3],
    /// Round-robin pointer: the class slot to serve next.
    next_class: usize,
    /// Ticket id generator (ids are unique per scheduler).
    next_ticket: u64,
}

impl AdmissionState {
    fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Whether the ticket at the head of `slot`'s queue is the one the
    /// round-robin pointer would admit next.
    fn is_next(&self, slot: usize, ticket: u64) -> bool {
        if self.queues[slot].front() != Some(&ticket) {
            return false;
        }
        for i in 0..self.queues.len() {
            let c = (self.next_class + i) % self.queues.len();
            if !self.queues[c].is_empty() {
                return c == slot;
            }
        }
        false
    }
}

#[derive(Debug)]
struct SchedulerInner {
    max_concurrent: usize,
    queue_depth: usize,
    state: Mutex<AdmissionState>,
    /// Notified whenever a slot frees or the queue shape changes.
    slot_freed: Condvar,
    counters: SchedulerCounters,
    /// Ring of the newest [`RECENT_ADMISSIONS`] admissions, by query id.
    recent: Mutex<VecDeque<AdmissionRecord>>,
}

impl SchedulerInner {
    fn record_admission(&self, query_id: u64, class: QueryClass, queue_wait_us: u64) {
        let mut recent = self.recent.lock().unwrap();
        if recent.len() == RECENT_ADMISSIONS {
            recent.pop_front();
        }
        recent.push_back(AdmissionRecord {
            query_id,
            class,
            queue_wait_us,
        });
    }
}

/// The per-instance query scheduler: worker pool, admission controller,
/// and per-query memory-budget factory. Created by `Instance::new` when
/// [`SchedulerConfig::enabled`]; `None` (seed behaviour) otherwise.
#[derive(Debug)]
pub struct QueryScheduler {
    config: SchedulerConfig,
    pool: Arc<WorkerPool>,
    inner: Arc<SchedulerInner>,
}

impl QueryScheduler {
    /// Build the scheduler for `config`, spawning the shared worker pool.
    /// Returns `None` when the config disables scheduling (`workers == 0`).
    pub fn new(config: &SchedulerConfig) -> Option<QueryScheduler> {
        if !config.enabled() {
            return None;
        }
        Some(QueryScheduler {
            config: config.clone(),
            pool: WorkerPool::new(config.workers),
            inner: Arc::new(SchedulerInner {
                max_concurrent: config.max_concurrent_queries.max(1),
                queue_depth: config.queue_depth,
                state: Mutex::new(AdmissionState {
                    inflight: 0,
                    queues: Default::default(),
                    next_class: 0,
                    next_ticket: 0,
                }),
                slot_freed: Condvar::new(),
                counters: SchedulerCounters::default(),
                recent: Mutex::new(VecDeque::new()),
            }),
        })
    }

    /// The configuration this scheduler was built from.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The shared worker pool every admitted query executes on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// A fresh per-query memory budget of `memory_budget_bytes`
    /// (`0` = unlimited accounting-only budget).
    pub fn memory_budget(&self) -> Arc<MemoryBudget> {
        MemoryBudget::new(self.config.memory_budget_bytes)
    }

    /// Queries currently admitted (holding a live permit).
    pub fn inflight(&self) -> usize {
        self.inner.state.lock().unwrap().inflight
    }

    /// Queries currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.inner.state.lock().unwrap().total_queued()
    }

    /// Block until the query may execute, then return the permit that
    /// holds its concurrency slot (released on drop).
    ///
    /// * Immediate admission when a slot is free and nobody is queued.
    /// * Otherwise the query joins its class's FIFO; the three class
    ///   queues are served round-robin as slots free up.
    /// * An arrival that finds `queue_depth` queries already waiting is
    ///   rejected with [`ExecError::QueueFull`] without queueing.
    /// * While waiting, `cancel` is polled: an explicit cancel dequeues
    ///   the ticket and returns [`ExecError::Cancelled`]; an expired
    ///   deadline dequeues and returns [`ExecError::AdmissionTimeout`]
    ///   with the time spent waiting.
    ///
    /// `query_id` is the instance-wide id assigned by the running-query
    /// registry; it keys the scheduler's recent-admission records so
    /// admission metrics correlate with the registry and the slow log.
    pub fn admit(
        &self,
        class: QueryClass,
        cancel: &CancelToken,
        query_id: u64,
    ) -> Result<AdmissionPermit, ExecError> {
        let inner = &self.inner;
        let slot = class.slot();
        let started = Instant::now();
        let mut state = inner.state.lock().unwrap();

        // Fast path: free slot and an empty queue — nobody to be fair to.
        if state.inflight < inner.max_concurrent && state.total_queued() == 0 {
            state.inflight += 1;
            drop(state);
            inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
            inner.counters.queue_wait.record_us(0);
            inner.record_admission(query_id, class, 0);
            return Ok(AdmissionPermit {
                inner: inner.clone(),
            });
        }

        let queued = state.total_queued();
        if queued >= inner.queue_depth {
            inner
                .counters
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            return Err(ExecError::QueueFull {
                queued,
                queue_depth: inner.queue_depth,
            });
        }

        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queues[slot].push_back(ticket);
        inner.counters.queued_total.fetch_add(1, Ordering::Relaxed);

        loop {
            if state.inflight < inner.max_concurrent && state.is_next(slot, ticket) {
                state.queues[slot].pop_front();
                state.inflight += 1;
                state.next_class = (slot + 1) % state.queues.len();
                drop(state);
                inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
                inner.counters.queue_wait.record(started.elapsed());
                inner.record_admission(query_id, class, started.elapsed().as_micros() as u64);
                // The round-robin pointer moved: another class's head may
                // be admissible now if more slots are free.
                inner.slot_freed.notify_all();
                return Ok(AdmissionPermit {
                    inner: inner.clone(),
                });
            }
            if let Err(reason) = cancel.check() {
                state.queues[slot].retain(|t| *t != ticket);
                drop(state);
                // Removing a queue head can make another waiter eligible.
                inner.slot_freed.notify_all();
                return Err(match reason {
                    ExecError::Timeout(_) => {
                        inner
                            .counters
                            .rejected_timeout
                            .fetch_add(1, Ordering::Relaxed);
                        ExecError::AdmissionTimeout(started.elapsed())
                    }
                    other => {
                        inner
                            .counters
                            .cancelled_while_queued
                            .fetch_add(1, Ordering::Relaxed);
                        other
                    }
                });
            }
            // Bounded wait so cancellation/deadline is noticed even
            // without a notification.
            let (guard, _timeout) = inner
                .slot_freed
                .wait_timeout(state, ADMISSION_POLL)
                .unwrap();
            state = guard;
        }
    }

    /// Immutable view of the scheduler for `metrics_snapshot`.
    pub fn snapshot(&self) -> SchedulerSnapshot {
        let (inflight, queued) = {
            let state = self.inner.state.lock().unwrap();
            (state.inflight as u64, state.total_queued() as u64)
        };
        let c = &self.inner.counters;
        SchedulerSnapshot {
            enabled: true,
            workers: self.pool.workers() as u64,
            busy_workers: self.pool.busy() as u64,
            pool_queued_tasks: self.pool.queued_tasks() as u64,
            max_concurrent_queries: self.config.max_concurrent_queries as u64,
            queue_depth: self.config.queue_depth as u64,
            memory_budget_bytes: self.config.memory_budget_bytes,
            inflight,
            queued,
            admitted: c.admitted.load(Ordering::Relaxed),
            queued_total: c.queued_total.load(Ordering::Relaxed),
            rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
            rejected_timeout: c.rejected_timeout.load(Ordering::Relaxed),
            cancelled_while_queued: c.cancelled_while_queued.load(Ordering::Relaxed),
            queue_wait: c.queue_wait.snapshot(),
            recent_admissions: self
                .inner
                .recent
                .lock()
                .unwrap()
                .iter()
                .copied()
                .collect(),
        }
    }
}

/// A held concurrency slot. Dropping it (normally, or while unwinding)
/// releases the slot and wakes the admission queue.
#[derive(Debug)]
pub struct AdmissionPermit {
    inner: Arc<SchedulerInner>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.inflight -= 1;
        }
        self.inner.slot_freed.notify_all();
    }
}

/// Everything the scheduler exports into the metrics snapshot. All-zero
/// (with `enabled == false`) on instances running without a scheduler.
#[derive(Clone, Debug, Default)]
pub struct SchedulerSnapshot {
    /// Whether an admission controller + worker pool is active.
    pub enabled: bool,
    /// Configured worker-thread count.
    pub workers: u64,
    /// Workers running a task right now (gauge).
    pub busy_workers: u64,
    /// Operator tasks waiting in the pool's queue (gauge).
    pub pool_queued_tasks: u64,
    /// Configured concurrent-query cap.
    pub max_concurrent_queries: u64,
    /// Configured admission-queue capacity.
    pub queue_depth: u64,
    /// Configured per-query memory budget (bytes; 0 = unlimited).
    pub memory_budget_bytes: u64,
    /// Queries currently executing under a permit (gauge).
    pub inflight: u64,
    /// Queries currently waiting for admission (gauge).
    pub queued: u64,
    /// Queries ever admitted.
    pub admitted: u64,
    /// Queries that had to wait in the queue before their outcome.
    pub queued_total: u64,
    /// Arrivals rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Queued queries whose deadline expired before admission.
    pub rejected_timeout: u64,
    /// Queued queries cancelled before admission.
    pub cancelled_while_queued: u64,
    /// Time spent waiting for admission (µs; immediate admits record 0).
    pub queue_wait: HistogramSnapshot,
    /// The newest admissions (oldest first), keyed by instance-wide
    /// query id for correlation with the running-query registry.
    pub recent_admissions: Vec<AdmissionRecord>,
}

impl SchedulerSnapshot {
    /// Fraction of workers busy at snapshot time, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            self.busy_workers as f64 / self.workers as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(max_concurrent: usize, queue_depth: usize) -> QueryScheduler {
        QueryScheduler::new(&SchedulerConfig {
            workers: 2,
            max_concurrent_queries: max_concurrent,
            queue_depth,
            memory_budget_bytes: 0,
        })
        .expect("enabled config")
    }

    #[test]
    fn disabled_config_builds_no_scheduler() {
        assert!(QueryScheduler::new(&SchedulerConfig::disabled()).is_none());
    }

    #[test]
    fn immediate_admission_when_idle() {
        let s = sched(2, 4);
        let live = CancelToken::new();
        let p1 = s.admit(QueryClass::Scan, &live, 0).unwrap();
        let p2 = s.admit(QueryClass::IndexJoin, &live, 0).unwrap();
        assert_eq!(s.inflight(), 2);
        drop((p1, p2));
        assert_eq!(s.inflight(), 0);
        let snap = s.snapshot();
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.queued_total, 0);
    }

    #[test]
    fn queue_full_rejects_typed() {
        let s = sched(1, 0);
        let live = CancelToken::new();
        let _held = s.admit(QueryClass::Scan, &live, 0).unwrap();
        match s.admit(QueryClass::Scan, &live, 0) {
            Err(ExecError::QueueFull {
                queued: 0,
                queue_depth: 0,
            }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(s.snapshot().rejected_queue_full, 1);
    }

    #[test]
    fn deadline_in_queue_is_admission_timeout() {
        let s = sched(1, 4);
        let live = CancelToken::new();
        let _held = s.admit(QueryClass::Scan, &live, 0).unwrap();
        let deadline = CancelToken::with_timeout(Duration::from_millis(30));
        let started = Instant::now();
        match s.admit(QueryClass::Scan, &deadline, 0) {
            Err(ExecError::AdmissionTimeout(waited)) => {
                assert!(waited >= Duration::from_millis(30), "{waited:?}");
            }
            other => panic!("expected AdmissionTimeout, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(5));
        let snap = s.snapshot();
        assert_eq!(snap.rejected_timeout, 1);
        assert_eq!(snap.queued, 0, "rejected ticket must leave the queue");
    }

    #[test]
    fn cancel_while_queued_dequeues_and_counts() {
        let s = sched(1, 4);
        let live = CancelToken::new();
        let held = s.admit(QueryClass::Scan, &live, 0).unwrap();
        let token = Arc::new(CancelToken::new());
        let waiter = {
            let s = &s;
            let waiter_token = token.clone();
            std::thread::scope(|scope| {
                let h = scope.spawn(move || s.admit(QueryClass::Scan, &waiter_token, 0));
                while s.queued() == 0 {
                    std::thread::yield_now();
                }
                token.cancel();
                h.join().expect("waiter thread")
            })
        };
        assert!(matches!(waiter, Err(ExecError::Cancelled)));
        let snap = s.snapshot();
        assert_eq!(snap.cancelled_while_queued, 1);
        assert_eq!(snap.queued, 0);
        drop(held);
        // The released slot must still be usable.
        let _next = s.admit(QueryClass::Scan, &live, 0).unwrap();
    }

    #[test]
    fn permit_release_admits_next_waiter() {
        let s = sched(1, 8);
        let live = CancelToken::new();
        let held = s.admit(QueryClass::Scan, &live, 0).unwrap();
        std::thread::scope(|scope| {
            let s = &s;
            let h = scope.spawn(move || {
                let token = CancelToken::with_timeout(Duration::from_secs(10));
                s.admit(QueryClass::IndexSelect, &token, 0).map(drop)
            });
            while s.queued() == 0 {
                std::thread::yield_now();
            }
            drop(held);
            assert!(h.join().expect("waiter").is_ok());
        });
        assert_eq!(s.snapshot().admitted, 2);
        assert!(s.snapshot().queue_wait.count >= 2);
    }

    #[test]
    fn round_robin_serves_every_class() {
        // One slot, a long queue of scans plus one index-join: the join
        // must be admitted after at most one scan, not after all of them.
        let s = Arc::new(sched(1, 16));
        let order = Arc::new(Mutex::new(Vec::new()));
        let held = s.admit(QueryClass::Scan, &CancelToken::new(), 0).unwrap();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..4usize {
                let s = s.clone();
                let order = order.clone();
                handles.push(scope.spawn(move || {
                    let token = CancelToken::with_timeout(Duration::from_secs(10));
                    let permit = s.admit(QueryClass::Scan, &token, 0).unwrap();
                    order.lock().unwrap().push(format!("scan{i}"));
                    drop(permit);
                }));
            }
            while s.queued() < 4 {
                std::thread::yield_now();
            }
            let s2 = s.clone();
            let order2 = order.clone();
            handles.push(scope.spawn(move || {
                let token = CancelToken::with_timeout(Duration::from_secs(10));
                let permit = s2.admit(QueryClass::IndexJoin, &token, 0).unwrap();
                order2.lock().unwrap().push("join".to_string());
                drop(permit);
            }));
            while s.queued() < 5 {
                std::thread::yield_now();
            }
            drop(held);
            for h in handles {
                h.join().expect("admission thread");
            }
        });
        let order = order.lock().unwrap();
        let join_pos = order.iter().position(|n| n == "join").expect("join ran");
        assert!(
            join_pos <= 1,
            "index-join starved behind scans: {order:?}"
        );
    }
}
