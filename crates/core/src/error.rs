//! The engine error type.

use asterix_hyracks::ExecError;
use std::fmt;
use std::time::Duration;

/// Anything that can go wrong across the query lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The AQL text failed to parse.
    Parse(String),
    /// The parsed AQL could not be translated to a logical plan.
    Translate(String),
    /// DDL or catalog violation (unknown dataset, duplicate index, ...).
    Schema(String),
    /// A runtime failure inside the executor (operator error or panic).
    Execution(ExecError),
    /// The query exceeded its [`crate::QueryOptions::timeout`] budget.
    Timeout(Duration),
    /// The query was cancelled from outside (e.g. via
    /// [`asterix_hyracks::ClusterContext::cancel_active`]).
    Cancelled,
    /// A storage-layer i/o failure that survived retries.
    Io(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(m) => write!(f, "parse error: {m}"),
            CoreError::Translate(m) => write!(f, "translate error: {m}"),
            CoreError::Schema(m) => write!(f, "schema error: {m}"),
            CoreError::Execution(e) => write!(f, "execution error: {e}"),
            CoreError::Timeout(d) => {
                write!(f, "query timed out after {} ms", d.as_millis())
            }
            CoreError::Cancelled => write!(f, "query cancelled"),
            CoreError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ExecError> for CoreError {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::Timeout(d) => CoreError::Timeout(d),
            ExecError::Cancelled => CoreError::Cancelled,
            ExecError::Io(m) => CoreError::Io(m),
            other => CoreError::Execution(other),
        }
    }
}

impl From<asterix_adm::AdmError> for CoreError {
    fn from(e: asterix_adm::AdmError) -> Self {
        CoreError::Schema(e.to_string())
    }
}

impl From<asterix_storage::IoError> for CoreError {
    fn from(e: asterix_storage::IoError) -> Self {
        CoreError::Io(e.to_string())
    }
}

impl From<asterix_storage::StorageError> for CoreError {
    fn from(e: asterix_storage::StorageError) -> Self {
        match e {
            asterix_storage::StorageError::Adm(adm) => adm.into(),
            asterix_storage::StorageError::Io(io) => io.into(),
        }
    }
}

impl From<asterix_aql::ParseError> for CoreError {
    fn from(e: asterix_aql::ParseError) -> Self {
        CoreError::Parse(e.to_string())
    }
}

impl From<asterix_aql::TranslateError> for CoreError {
    fn from(e: asterix_aql::TranslateError) -> Self {
        CoreError::Translate(e.to_string())
    }
}
