//! The engine error type.

use std::fmt;

/// Anything that can go wrong across the query lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    Parse(String),
    Translate(String),
    Schema(String),
    Execution(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(m) => write!(f, "parse error: {m}"),
            CoreError::Translate(m) => write!(f, "translate error: {m}"),
            CoreError::Schema(m) => write!(f, "schema error: {m}"),
            CoreError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<asterix_adm::AdmError> for CoreError {
    fn from(e: asterix_adm::AdmError) -> Self {
        CoreError::Schema(e.to_string())
    }
}

impl From<asterix_aql::ParseError> for CoreError {
    fn from(e: asterix_aql::ParseError) -> Self {
        CoreError::Parse(e.to_string())
    }
}

impl From<asterix_aql::TranslateError> for CoreError {
    fn from(e: asterix_aql::TranslateError) -> Self {
        CoreError::Translate(e.to_string())
    }
}
