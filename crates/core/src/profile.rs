//! Per-query profiling: the `EXPLAIN PROFILE`-style report attached to a
//! [`crate::QueryResult`] when [`crate::QueryOptions::profile`] is set.
//!
//! A [`QueryProfile`] unifies, for one query:
//!
//! * per-operator runtime stats (tuples, frames, bytes, per-partition
//!   wall times) from the executor,
//! * buffer-cache hits/misses/evictions attributed to *this query only*
//!   (via the scoped counters of [`asterix_storage::QueryCounters`] — not
//!   the racy global `reset_stats()` pattern, which breaks as soon as two
//!   queries run concurrently),
//! * index-search counters: inverted-list elements read, T-occurrence
//!   candidates (Table 6's column C), primary-index lookups, and the
//!   rows that survived post-verification (§4.1.1's candidate → verify
//!   funnel),
//! * LSM activity: disk components searched by this query, plus the
//!   instance-lifetime flush/merge totals for context,
//! * the optimizer's rule-firing trace.
//!
//! Rendered as structured JSON ([`QueryProfile::to_json_string`]) or as a
//! text tree over the job topology ([`QueryProfile::render_text`]).

use asterix_adm::Value;
use asterix_hyracks::{JobSpec, JobStats, OpId};
use asterix_storage::StorageProfile;
use std::time::Duration;

/// Runtime profile of one physical operator, aggregated over partitions.
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// Operator id in the job spec.
    pub id: OpId,
    /// Operator name (e.g. `"secondary-index-search"`).
    pub name: &'static str,
    /// Total tuples consumed across partitions.
    pub input_tuples: u64,
    /// Total tuples produced across partitions.
    pub output_tuples: u64,
    /// Frames this operator sent downstream (channel sends of up to
    /// `FRAME_CAPACITY` tuples).
    pub frames_emitted: u64,
    /// How many of those frames were columnar batches (`Frame::Batch`)
    /// moved zero-copy; `frames_emitted - batch_frames_emitted` travelled
    /// as row vectors.
    pub batch_frames_emitted: u64,
    /// Heap bytes of the values sent downstream.
    pub bytes_emitted: u64,
    /// Wall time of every partition instance, sorted by partition.
    pub partition_times: Vec<(usize, Duration)>,
    /// Operators feeding this one, by input slot order.
    pub inputs: Vec<OpId>,
}

impl OpProfile {
    /// Longest per-partition wall time (critical-path contribution).
    pub fn max_partition_time(&self) -> Duration {
        self.partition_times
            .iter()
            .map(|(_, t)| *t)
            .max()
            .unwrap_or_default()
    }
}

/// Buffer-cache activity attributed to one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheProfile {
    /// Page reads served from the buffer cache.
    pub hits: u64,
    /// Page reads that went to simulated disk.
    pub misses: u64,
    /// Pages evicted to make room while this query ran.
    pub evictions: u64,
}

impl CacheProfile {
    /// hits / (hits + misses), or 0 when no reads happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Index-search funnel of one query: list scan → candidates → primary
/// lookups → verified survivors (§4.1.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexSearchProfile {
    /// Elements read from inverted lists. Postings served from the
    /// postings cache are *not* re-counted: this measures actual LSM
    /// range-scan work.
    pub inverted_elements_read: u64,
    /// Postings-list probes answered from the per-index postings cache.
    pub postings_cache_hits: u64,
    /// Postings-list probes that had to scan the LSM tree (and then
    /// populated the cache).
    pub postings_cache_misses: u64,
    /// Candidates emitted by T-occurrence searches (Table 6's column C).
    pub toccurrence_candidates: u64,
    /// Primary-index point lookups issued.
    pub primary_lookups: u64,
    /// Rows that survived the post-verification selects directly
    /// downstream of primary-index lookups.
    pub post_verification_survivors: u64,
}

/// Similarity-kernel activity of one query: how much of the verify and
/// candidate-generation work ran through the optimized kernels versus
/// the scalar fallbacks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelProfile {
    /// Edit-distance verifications answered by the Myers bit-parallel
    /// kernel (the remainder used the banded scalar DP).
    pub bitparallel_ed_calls: u64,
    /// Galloping (exponential-probe) binary searches performed by the
    /// full-intersection T-occurrence path.
    pub gallop_probes: u64,
    /// T-occurrence searches that fell back to the ScanCount kernel
    /// (threshold below list count, or kernels disabled).
    pub scancount_fallbacks: u64,
}

/// LSM activity: per-query component probes plus instance-lifetime
/// flush/merge totals (queries never flush; the totals give context on
/// how fragmented the trees were when the query ran).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LsmProfile {
    /// Disk components consulted by this query's point lookups.
    pub components_searched: u64,
    /// Flushes across all LSM trees since the instance started.
    pub total_flushes: u64,
    /// Merges across all LSM trees since the instance started.
    pub total_merges: u64,
}

/// Everything measured about one profiled query.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// The instance-wide query id this profile belongs to — the same
    /// key used by the running-query registry, the slow-query log, and
    /// trace exports.
    pub query_id: u64,
    /// Per-operator stats in job-spec order.
    pub operators: Vec<OpProfile>,
    /// Buffer-cache activity attributed to this query.
    pub cache: CacheProfile,
    /// Index-search funnel counters attributed to this query.
    pub index_search: IndexSearchProfile,
    /// Similarity-kernel counters attributed to this query.
    pub kernels: KernelProfile,
    /// LSM probes plus instance-lifetime flush/merge context.
    pub lsm: LsmProfile,
    /// Optimizer rule firings, in application order, with counts.
    pub rule_trace: Vec<(&'static str, usize)>,
    /// Parse + translate + optimize + job generation time.
    pub compile_time: Duration,
    /// Parallel execution wall time.
    pub execution_time: Duration,
}

impl QueryProfile {
    /// Assemble a profile from the compiled job, the executor's stats,
    /// and the query's scoped storage counters.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        query_id: u64,
        job: &JobSpec,
        stats: &JobStats,
        storage: StorageProfile,
        lsm_totals: (u64, u64),
        rule_trace: Vec<(&'static str, usize)>,
        compile_time: Duration,
        execution_time: Duration,
    ) -> QueryProfile {
        let mut operators = Vec::with_capacity(job.ops.len());
        for (id, op) in &job.ops {
            let mut inputs: Vec<(usize, OpId)> = job
                .edges
                .iter()
                .filter(|e| e.to == *id)
                .map(|e| (e.input, e.from))
                .collect();
            inputs.sort();
            let s = stats.per_op.get(id);
            let mut partition_times = s.map(|s| s.partition_times.clone()).unwrap_or_default();
            partition_times.sort();
            operators.push(OpProfile {
                id: *id,
                name: op.name(),
                input_tuples: s.map_or(0, |s| s.input_tuples),
                output_tuples: s.map_or(0, |s| s.output_tuples),
                frames_emitted: s.map_or(0, |s| s.frames_emitted),
                batch_frames_emitted: s.map_or(0, |s| s.batch_frames_emitted),
                bytes_emitted: s.map_or(0, |s| s.bytes_emitted),
                partition_times,
                inputs: inputs.into_iter().map(|(_, from)| from).collect(),
            });
        }

        // Post-verification survivors: output of every select directly
        // downstream of a primary-index lookup (the verify step of the
        // candidate funnel).
        let lookup_ids: Vec<OpId> = operators
            .iter()
            .filter(|o| o.name == "primary-index-lookup")
            .map(|o| o.id)
            .collect();
        let survivors = operators
            .iter()
            .filter(|o| o.name == "select" && o.inputs.iter().any(|i| lookup_ids.contains(i)))
            .map(|o| o.output_tuples)
            .sum();

        QueryProfile {
            query_id,
            operators,
            cache: CacheProfile {
                hits: storage.cache_hits,
                misses: storage.cache_misses,
                evictions: storage.cache_evictions,
            },
            index_search: IndexSearchProfile {
                inverted_elements_read: storage.inverted_elements_read,
                postings_cache_hits: storage.postings_cache_hits,
                postings_cache_misses: storage.postings_cache_misses,
                toccurrence_candidates: storage.toccurrence_candidates,
                primary_lookups: storage.primary_lookups,
                post_verification_survivors: survivors,
            },
            kernels: KernelProfile {
                bitparallel_ed_calls: storage.bitparallel_ed_calls,
                gallop_probes: storage.gallop_probes,
                scancount_fallbacks: storage.scancount_fallbacks,
            },
            lsm: LsmProfile {
                components_searched: storage.lsm_components_searched,
                total_flushes: lsm_totals.0,
                total_merges: lsm_totals.1,
            },
            rule_trace,
            compile_time,
            execution_time,
        }
    }

    /// The first operator profile with the given name.
    pub fn operator(&self, name: &str) -> Option<&OpProfile> {
        self.operators.iter().find(|o| o.name == name)
    }

    /// The profile as an ADM record (serializable to JSON without any
    /// extra dependency via [`asterix_adm::json::to_string`]).
    pub fn to_json(&self) -> Value {
        let operators = Value::OrderedList(
            self.operators
                .iter()
                .map(|o| {
                    Value::record(vec![
                        ("id".into(), Value::Int64(o.id.0 as i64)),
                        ("name".into(), Value::from(o.name)),
                        ("input_tuples".into(), Value::Int64(o.input_tuples as i64)),
                        ("output_tuples".into(), Value::Int64(o.output_tuples as i64)),
                        ("frames_emitted".into(), Value::Int64(o.frames_emitted as i64)),
                        (
                            "batch_frames_emitted".into(),
                            Value::Int64(o.batch_frames_emitted as i64),
                        ),
                        ("bytes_emitted".into(), Value::Int64(o.bytes_emitted as i64)),
                        (
                            "partition_times_us".into(),
                            Value::OrderedList(
                                o.partition_times
                                    .iter()
                                    .map(|(p, t)| {
                                        Value::OrderedList(vec![
                                            Value::Int64(*p as i64),
                                            Value::Int64(t.as_micros() as i64),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "inputs".into(),
                            Value::OrderedList(
                                o.inputs.iter().map(|i| Value::Int64(i.0 as i64)).collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Value::record(vec![
            ("query_id".into(), Value::Int64(self.query_id as i64)),
            ("operators".into(), operators),
            (
                "cache".into(),
                Value::record(vec![
                    ("hits".into(), Value::Int64(self.cache.hits as i64)),
                    ("misses".into(), Value::Int64(self.cache.misses as i64)),
                    ("evictions".into(), Value::Int64(self.cache.evictions as i64)),
                    ("hit_ratio".into(), Value::double(self.cache.hit_ratio())),
                ]),
            ),
            (
                "index_search".into(),
                Value::record(vec![
                    (
                        "inverted_elements_read".into(),
                        Value::Int64(self.index_search.inverted_elements_read as i64),
                    ),
                    (
                        "postings_cache_hits".into(),
                        Value::Int64(self.index_search.postings_cache_hits as i64),
                    ),
                    (
                        "postings_cache_misses".into(),
                        Value::Int64(self.index_search.postings_cache_misses as i64),
                    ),
                    (
                        "toccurrence_candidates".into(),
                        Value::Int64(self.index_search.toccurrence_candidates as i64),
                    ),
                    (
                        "primary_lookups".into(),
                        Value::Int64(self.index_search.primary_lookups as i64),
                    ),
                    (
                        "post_verification_survivors".into(),
                        Value::Int64(self.index_search.post_verification_survivors as i64),
                    ),
                ]),
            ),
            (
                "kernels".into(),
                Value::record(vec![
                    (
                        "bitparallel_ed_calls".into(),
                        Value::Int64(self.kernels.bitparallel_ed_calls as i64),
                    ),
                    (
                        "gallop_probes".into(),
                        Value::Int64(self.kernels.gallop_probes as i64),
                    ),
                    (
                        "scancount_fallbacks".into(),
                        Value::Int64(self.kernels.scancount_fallbacks as i64),
                    ),
                ]),
            ),
            (
                "lsm".into(),
                Value::record(vec![
                    (
                        "components_searched".into(),
                        Value::Int64(self.lsm.components_searched as i64),
                    ),
                    (
                        "total_flushes".into(),
                        Value::Int64(self.lsm.total_flushes as i64),
                    ),
                    (
                        "total_merges".into(),
                        Value::Int64(self.lsm.total_merges as i64),
                    ),
                ]),
            ),
            (
                "rule_trace".into(),
                Value::OrderedList(
                    self.rule_trace
                        .iter()
                        .map(|(name, n)| {
                            Value::record(vec![
                                ("rule".into(), Value::from(*name)),
                                ("fired".into(), Value::Int64(*n as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "compile_time_us".into(),
                Value::Int64(self.compile_time.as_micros() as i64),
            ),
            (
                "execution_time_us".into(),
                Value::Int64(self.execution_time.as_micros() as i64),
            ),
        ])
    }

    /// The profile as a JSON string.
    pub fn to_json_string(&self) -> String {
        asterix_adm::json::to_string(&self.to_json())
    }

    /// `EXPLAIN PROFILE`-style text: the operator tree (root = the result
    /// sink), each node annotated with its runtime stats, followed by the
    /// storage and optimizer sections.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("QUERY PROFILE (query_id {})\n", self.query_id));

        // Roots: operators nobody consumes (normally just result-sink).
        let consumed: Vec<OpId> = self.operators.iter().flat_map(|o| o.inputs.clone()).collect();
        let roots: Vec<OpId> = self
            .operators
            .iter()
            .map(|o| o.id)
            .filter(|id| !consumed.contains(id))
            .collect();
        for root in roots {
            self.render_node(&mut out, root, 0);
        }

        out.push_str(&format!(
            "cache: {} hits, {} misses ({:.1}% hit ratio), {} evictions\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_ratio() * 100.0,
            self.cache.evictions,
        ));
        out.push_str(&format!(
            "index search: {} list elements read, {} candidates, {} primary lookups, {} verified\n",
            self.index_search.inverted_elements_read,
            self.index_search.toccurrence_candidates,
            self.index_search.primary_lookups,
            self.index_search.post_verification_survivors,
        ));
        out.push_str(&format!(
            "postings cache: {} hits, {} misses\n",
            self.index_search.postings_cache_hits, self.index_search.postings_cache_misses,
        ));
        out.push_str(&format!(
            "kernels: {} bit-parallel ed calls, {} gallop probes, {} scancount fallbacks\n",
            self.kernels.bitparallel_ed_calls,
            self.kernels.gallop_probes,
            self.kernels.scancount_fallbacks,
        ));
        out.push_str(&format!(
            "lsm: {} components searched ({} flushes, {} merges lifetime)\n",
            self.lsm.components_searched, self.lsm.total_flushes, self.lsm.total_merges,
        ));
        out.push_str("rules:\n");
        for (rule, n) in &self.rule_trace {
            out.push_str(&format!("  {rule} x{n}\n"));
        }
        out.push_str(&format!(
            "compile {:?}, execute {:?}\n",
            self.compile_time, self.execution_time
        ));
        out
    }

    fn render_node(&self, out: &mut String, id: OpId, depth: usize) {
        let Some(o) = self.operators.iter().find(|o| o.id == id) else {
            return;
        };
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} [{}] in={} out={} frames={} batch_frames={} bytes={} max_partition={:?}\n",
            o.name,
            o.id,
            o.input_tuples,
            o.output_tuples,
            o.frames_emitted,
            o.batch_frames_emitted,
            o.bytes_emitted,
            o.max_partition_time(),
        ));
        for input in &o.inputs {
            self.render_node(out, *input, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the JSON serialization contract: every key is emitted even
    /// when its value is zero/empty. Downstream consumers (snapshot
    /// differs, the CI validators) index these keys unconditionally, so a
    /// "skip zeros" optimization here would be a silent breaking change.
    #[test]
    fn to_json_emits_every_key_even_when_zero() {
        let zero = QueryProfile {
            query_id: 0,
            operators: Vec::new(),
            cache: CacheProfile::default(),
            index_search: IndexSearchProfile::default(),
            kernels: KernelProfile::default(),
            lsm: LsmProfile::default(),
            rule_trace: Vec::new(),
            compile_time: Duration::ZERO,
            execution_time: Duration::ZERO,
        };
        let json = zero.to_json_string();
        for key in [
            "\"query_id\"",
            "\"operators\"",
            "\"cache\"",
            "\"hits\"",
            "\"misses\"",
            "\"evictions\"",
            "\"hit_ratio\"",
            "\"index_search\"",
            "\"inverted_elements_read\"",
            "\"postings_cache_hits\"",
            "\"postings_cache_misses\"",
            "\"toccurrence_candidates\"",
            "\"primary_lookups\"",
            "\"post_verification_survivors\"",
            "\"kernels\"",
            "\"bitparallel_ed_calls\"",
            "\"gallop_probes\"",
            "\"scancount_fallbacks\"",
            "\"lsm\"",
            "\"components_searched\"",
            "\"total_flushes\"",
            "\"total_merges\"",
            "\"rule_trace\"",
            "\"compile_time_us\"",
            "\"execution_time_us\"",
        ] {
            assert!(json.contains(key), "zero-valued profile JSON dropped {key}: {json}");
        }
    }
}
