//! # asterix-core
//!
//! The end-to-end engine of the reproduction: a single-process simulated
//! shared-nothing cluster offering the whole lifecycle of a similarity
//! query that the paper describes — DDL (datasets and `keyword` /
//! `ngram(n)` / B+-tree indexes), hash-partitioned loading, AQL queries
//! with the `~=` operator and `set simfunction`/`simthreshold`, rule-based
//! optimization (index selections, index-nested-loop joins with
//! corner-case handling, surrogate joins, the AQL+-driven three-stage
//! similarity join), parallel execution, and per-operator statistics.
//!
//! ```
//! use asterix_core::{Instance, InstanceConfig};
//! use asterix_adm::{record, IndexKind, Value};
//!
//! let mut db = Instance::new(InstanceConfig::default());
//! db.create_dataset("ARevs", "id").unwrap();
//! db.insert("ARevs", record! {"id" => 1i64, "summary" => "great product"}).unwrap();
//! db.insert("ARevs", record! {"id" => 2i64, "summary" => "great product value"}).unwrap();
//! let result = db.query(r#"
//!     for $t in dataset ARevs
//!     where similarity-jaccard(word-tokens($t.summary),
//!                              word-tokens('great product')) >= 0.5
//!     return $t.id
//! "#).unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod admin;
pub mod builder;
pub mod config;
pub mod durability;
pub mod error;
pub mod http;
pub mod instance;
pub mod profile;
pub mod registry;
pub mod result;
pub mod scheduler;
pub mod telemetry;

pub use admin::{admin_response, AdminServer};
pub use http::{HttpLimits, HttpServer};
pub use builder::{ExprBuilder, PreparedQuery, QueryBuilder, RowRef};
pub use config::{DurabilityConfig, InstanceConfig, TelemetryConfig};
pub use durability::{DurabilityGauges, PartitionDurability, RecoveryStats, WalOp};
pub use error::CoreError;
pub use instance::{IndexBuildStats, Instance};
pub use profile::{
    CacheProfile, IndexSearchProfile, KernelProfile, LsmProfile, OpProfile, QueryProfile,
};
pub use registry::{QueryRegistry, QueryState, RunningQuery};
pub use result::{PlanInfo, QueryOptions, QueryResult};
pub use scheduler::{AdmissionPermit, AdmissionRecord, QueryScheduler, SchedulerSnapshot};
pub use telemetry::{
    chrome_trace_json, Histogram, HistogramSnapshot, InstanceGauges, MetricsSnapshot, QueryClass,
    QueryOutcome, SlowQuery, Telemetry,
};

pub use asterix_hyracks::SchedulerConfig;
