//! `asterix-admin` — a self-contained demo of the admin HTTP endpoint:
//! boots an in-process instance, loads a synthetic review dataset,
//! starts the introspection server, and keeps a background similarity
//! workload running so `/queries`, `/slow`, and `/trace/<id>` have
//! live content to show.
//!
//! ```text
//! cargo run --release -p asterix-core --bin asterix_admin -- 127.0.0.1:7900
//! curl -s http://127.0.0.1:7900/health | python3 -m json.tool
//! curl -s http://127.0.0.1:7900/queries
//! curl -s -X POST http://127.0.0.1:7900/queries/7/cancel
//! ```
//!
//! Arguments: `[addr]` (default `127.0.0.1:7900`; use port `0` for an
//! OS-assigned port — the bound address is printed on startup) and
//! `--duration <secs>` to exit after a fixed time (CI smoke tests);
//! without it the server runs until killed.

use asterix_adm::{record, IndexKind};
use asterix_core::{AdminServer, CoreError, Instance, InstanceConfig, TelemetryConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ADJECTIVES: [&str; 8] = [
    "great", "awful", "decent", "fantastic", "cheap", "sturdy", "fragile", "reliable",
];
const NOUNS: [&str; 8] = [
    "product", "charger", "cable", "speaker", "keyboard", "monitor", "backpack", "bottle",
];

fn demo_instance() -> Instance {
    let config = InstanceConfig {
        telemetry: TelemetryConfig {
            // Low threshold so the demo workload populates the slow log
            // (and therefore /slow and /trace/<id>) quickly.
            slow_query_threshold: Duration::from_millis(5),
            ..TelemetryConfig::default()
        },
        ..InstanceConfig::default()
    };
    let db = Instance::new(config);
    db.create_dataset("Reviews", "id").expect("create dataset");
    for i in 0..600i64 {
        let a = ADJECTIVES[(i % 8) as usize];
        let b = ADJECTIVES[((i / 8) % 8) as usize];
        let n = NOUNS[((i / 64) % 8) as usize];
        db.insert(
            "Reviews",
            record! {
                "id" => i,
                "reviewerName" => format!("reviewer{}", i % 37),
                "summary" => format!("{a} {b} {n} number {i}")
            },
        )
        .expect("insert");
    }
    db.create_index("Reviews", "smix", "summary", IndexKind::Keyword)
        .expect("create index");
    db
}

/// One round of the background workload: an indexed selection plus an
/// unindexed similarity self-join (slow enough to be visible in
/// `/queries` and to land in the slow log).
fn workload_round(db: &Instance) -> Result<(), CoreError> {
    db.query(
        r#"
        for $r in dataset Reviews
        where similarity-jaccard(word-tokens($r.summary),
                                 word-tokens('great fantastic product')) >= 0.5
        return $r.id
    "#,
    )?;
    db.query(
        r#"
        for $a in dataset Reviews
        for $b in dataset Reviews
        where similarity-jaccard(word-tokens($a.summary),
                                 word-tokens($b.summary)) >= 0.8
        return [$a.id, $b.id]
    "#,
    )?;
    Ok(())
}

fn main() {
    let mut addr = "127.0.0.1:7900".to_string();
    let mut duration: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--duration" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("usage: asterix_admin [addr] [--duration <secs>]");
                        std::process::exit(2);
                    });
                duration = Some(Duration::from_secs(secs));
            }
            other if !other.starts_with('-') => addr = other.to_string(),
            other => {
                eprintln!("unknown argument '{other}'; usage: asterix_admin [addr] [--duration <secs>]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("loading demo dataset ...");
    let db = Arc::new(demo_instance());
    let admin = AdminServer::start(Arc::clone(&db), &addr).unwrap_or_else(|e| {
        eprintln!("failed to bind {addr}: {e}");
        std::process::exit(1);
    });
    // Parsed by smoke tests — keep the format stable.
    println!("admin listening on {}", admin.url());

    let stop = Arc::new(AtomicBool::new(false));
    let workload = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match workload_round(&db) {
                    // Cancellation via POST /queries/<id>/cancel is part
                    // of the demo — keep the workload going.
                    Ok(()) | Err(CoreError::Cancelled) => {}
                    Err(e) => {
                        eprintln!("workload query failed: {e}");
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    match duration {
        Some(d) => std::thread::sleep(d),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    stop.store(true, Ordering::SeqCst);
    workload.join().expect("workload thread");
    drop(admin);
}
