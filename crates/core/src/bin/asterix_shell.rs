//! `asterix-shell` — a small interactive shell over the engine, in the
//! spirit of AsterixDB's web console: DDL, loading, and AQL similarity
//! queries against an in-process simulated cluster.
//!
//! ```text
//! cargo run --release -p asterix-core --bin asterix_shell
//! asterix> :create Reviews id
//! asterix> :loadjson Reviews /path/to/reviews.jsonl
//! asterix> :index Reviews smix summary keyword
//! asterix> for $r in dataset Reviews
//!          where similarity-jaccard(word-tokens($r.summary),
//!                                   word-tokens('great product')) >= 0.5
//!          return $r;
//! ```
//!
//! Statements end with `;`. Meta commands start with `:`; `:help` lists
//! them.

use asterix_adm::IndexKind;
use asterix_core::{Instance, InstanceConfig};
use std::io::{BufRead, Write};

const HELP: &str = r#"meta commands:
  :create <dataset> <pk-field>          create a dataset
  :index <dataset> <name> <field> <kind>  kind: keyword | ngram<N> | btree
  :drop <dataset> <index>               drop a secondary index
  :loadjson <dataset> <path>            load newline-delimited JSON
  :count <dataset>                      number of records
  :sizes <dataset>                      index sizes
  :explain <aql...>;                    show the optimized plan
  :metrics [prom]                       telemetry snapshot (JSON or Prometheus text)
  :events [n]                           last n LSM lifecycle events (default 10)
  :slow                                 captured slow queries
  :partitions                           show partition count
  :help                                 this text
  :quit                                 exit
anything else is AQL, terminated by ';'"#;

fn main() {
    let partitions = std::env::var("ASTERIX_PARTITIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    // `--data-dir <dir>` opens a durable instance: file-backed components,
    // write-ahead log, and crash recovery of whatever the directory holds.
    let mut args = std::env::args().skip(1);
    let data_dir = match args.next().as_deref() {
        Some("--data-dir") => match args.next() {
            Some(dir) => Some(dir),
            None => {
                eprintln!("usage: asterix_shell [--data-dir <dir>]");
                std::process::exit(2);
            }
        },
        Some(other) => {
            eprintln!("unknown argument '{other}'; usage: asterix_shell [--data-dir <dir>]");
            std::process::exit(2);
        }
        None => None,
    };
    let mut config = InstanceConfig::with_partitions(partitions);
    if let Some(dir) = &data_dir {
        config.durability = asterix_core::DurabilityConfig::at(dir);
    }
    let db = match Instance::open(config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: failed to open instance: {e}");
            std::process::exit(1);
        }
    };
    match (&data_dir, db.recovery_stats()) {
        (Some(dir), Some(stats)) => println!(
            "asterix-shell — durable {partitions}-partition cluster at {dir} \
             (recovered {} components, replayed {} WAL records in {:?}). \
             :help for commands.",
            stats.components_opened, stats.wal_records_replayed, stats.recovery_time
        ),
        _ => println!(
            "asterix-shell — simulated {partitions}-partition cluster. :help for commands."
        ),
    }

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("asterix> ");
        } else {
            print!("      -> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with(':') && !trimmed.starts_with(":explain") {
            if !meta_command(&db, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let statement = std::mem::take(&mut buffer);
        let statement = statement.trim();
        if let Some(rest) = statement.strip_prefix(":explain") {
            match db.explain(rest.trim_end_matches(';')) {
                Ok(info) => {
                    println!("{}", info.explain);
                    println!("rewrites: {:?}", info.rewrites);
                }
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        match db.query(statement) {
            Ok(result) => {
                for row in result.rows.iter().take(50) {
                    println!("{}", asterix_adm::json::to_string(row));
                }
                if result.rows.len() > 50 {
                    println!("... ({} rows total)", result.rows.len());
                }
                println!(
                    "-- {} row(s), compile {:?}, execute {:?}",
                    result.rows.len(),
                    result.compile_time,
                    result.execution_time
                );
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Returns false to quit.
fn meta_command(db: &Instance, line: &str) -> bool {
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.as_slice() {
        [":help"] => println!("{HELP}"),
        [":quit"] | [":exit"] => return false,
        [":partitions"] => println!("{}", db.num_partitions()),
        [":metrics"] => println!("{}", asterix_adm::json::to_string(&db.metrics_snapshot())),
        [":metrics", "prom"] => print!("{}", db.metrics_prometheus()),
        [":events"] | [":events", _] => match db.telemetry() {
            Some(t) => {
                let n = parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
                let events = t.event_log().snapshot();
                let skip = events.len().saturating_sub(n);
                for ev in &events[skip..] {
                    println!(
                        "#{:<6} +{:<10} {:<15} {:<32} {} bytes, {} component(s), gen {}{}",
                        ev.seq,
                        format!("{}us", ev.at_us),
                        ev.kind.name(),
                        ev.tree,
                        ev.bytes,
                        ev.components,
                        ev.generation,
                        ev.detail
                            .as_deref()
                            .map(|d| format!(" — {d}"))
                            .unwrap_or_default(),
                    );
                }
                println!(
                    "-- {} retained of {} recorded",
                    events.len(),
                    t.event_log().total_recorded()
                );
            }
            None => eprintln!("telemetry is disabled"),
        },
        [":slow"] => match db.telemetry() {
            Some(t) => {
                let entries = t.slow_queries();
                for sq in &entries {
                    println!(
                        "#{} [{}] {:?} compile {:?} -> {} row(s)\n  {}",
                        sq.seq,
                        sq.class.name(),
                        sq.execution_time,
                        sq.compile_time,
                        sq.rows,
                        sq.query
                    );
                }
                println!(
                    "-- {} retained of {} captured (threshold {:?})",
                    entries.len(),
                    t.slow_queries_captured(),
                    t.slow_query_threshold()
                );
            }
            None => eprintln!("telemetry is disabled"),
        },
        [":create", ds, pk] => match db.create_dataset(ds, pk) {
            Ok(()) => println!("created dataset {ds} (pk {pk})"),
            Err(e) => eprintln!("error: {e}"),
        },
        [":index", ds, name, field, kind] => {
            let kind = match *kind {
                "keyword" => IndexKind::Keyword,
                "btree" => IndexKind::BTree,
                k if k.starts_with("ngram") => {
                    let n = k.trim_start_matches("ngram").parse().unwrap_or(2);
                    IndexKind::NGram(n)
                }
                other => {
                    eprintln!("unknown index kind '{other}' (keyword | ngramN | btree)");
                    return true;
                }
            };
            match db.create_index(ds, name, field, kind) {
                Ok(stats) => println!(
                    "built {} over {} records in {:?} ({} bytes)",
                    stats.index, stats.records_indexed, stats.build_time, stats.size_bytes
                ),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        [":drop", ds, index] => match db.drop_index(ds, index) {
            Ok(()) => println!("dropped {ds}.{index}"),
            Err(e) => eprintln!("error: {e}"),
        },
        [":loadjson", ds, path] => match std::fs::read_to_string(path) {
            Ok(text) => match db.load_json_lines(ds, &text) {
                Ok(n) => println!("loaded {n} records into {ds}"),
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => eprintln!("cannot read {path}: {e}"),
        },
        [":count", ds] => match db.count_records(ds) {
            Ok(n) => println!("{n}"),
            Err(e) => eprintln!("error: {e}"),
        },
        [":sizes", ds] => match db.index_sizes(ds) {
            Ok(sizes) => {
                for (name, bytes) in sizes {
                    println!("{name:<24} {bytes} bytes");
                }
            }
            Err(e) => eprintln!("error: {e}"),
        },
        _ => eprintln!("unrecognized command; :help for help"),
    }
    true
}
