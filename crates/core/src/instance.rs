//! The cluster instance: DDL, loading, and the query lifecycle.

use crate::config::InstanceConfig;
use crate::durability::{DurabilityGauges, PartitionDurability, RecoveryStats, WalOp};
use crate::error::CoreError;
use crate::registry::{QueryRegistry, RegistryGuard, RunningQuery};
use crate::result::{PlanInfo, QueryOptions, QueryResult};
use crate::scheduler::{QueryScheduler, SchedulerSnapshot};
use crate::telemetry::{
    DatasetGauges, IndexGauge, InstanceGauges, MetricsSnapshot, QueryClass, QueryOutcome, Telemetry,
};
use asterix_adm::{DatasetDef, IndexDef, IndexKind, Value};
use asterix_algebricks::plan::{explain as explain_plan, operator_counts};
use asterix_algebricks::{generate_job, optimize, Catalog, SimpleCatalog, VarGen};
use asterix_aql::{parse_query, translate, Bindings};
use asterix_hyracks::{
    run_job_with, CancelToken, ClusterContext, ExecError, JobOptions, JobProgress, JobSpec,
    ResultSink,
};
use asterix_simfn::{FunctionRegistry, SimilarityMeasure};
use asterix_storage::{
    BufferCache, CacheStats, Disk, LsmEventKind, Manifest, PartitionStore, QueryCounters, Trace,
    WalConfig,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Statistics from building one secondary index (Table 5).
#[derive(Clone, Debug)]
pub struct IndexBuildStats {
    /// Name of the index that was built.
    pub index: String,
    /// Records indexed across all partitions.
    pub records_indexed: u64,
    /// Wall-clock build time (parallel across partitions).
    pub build_time: Duration,
    /// On-disk size of the finished index, summed over partitions.
    pub size_bytes: u64,
}

/// Per-partition durability handles plus the stats of the startup
/// recovery pass that produced this instance.
struct DurabilityState {
    partitions: Vec<PartitionDurability>,
    recovery: RecoveryStats,
    /// Span tree of the recovery pass (manifest restore, orphan sweep,
    /// WAL replay), exportable as a Chrome trace like any query's spans.
    recovery_spans: Vec<asterix_storage::SpanRecord>,
}

/// A compiled plan plus LRU bookkeeping: `stamp` is the clock value of
/// the most recent hit, used for least-recently-used eviction.
struct CachedPlan {
    job: Arc<JobSpec>,
    plan: PlanInfo,
    stamp: u64,
}

struct PlanCacheInner {
    map: HashMap<String, CachedPlan>,
    /// Monotonic access clock for LRU stamps.
    clock: u64,
    /// Bumped on every DDL; a compile that started under an older
    /// generation is never installed (it may reference dropped indexes).
    generation: u64,
}

/// Memoizes parse → optimize → jobgen keyed on (optimizer fingerprint,
/// query text). `set simfunction` / `set simthreshold` live inside the
/// query text, so they need no extra key component. Invalidated
/// wholesale on any DDL or UDF registration.
struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Plans are small (operator trees, not data); 128 entries comfortably
/// covers a benchmark's worth of distinct query texts.
const PLAN_CACHE_CAPACITY: usize = 128;

impl PlanCache {
    fn new() -> Self {
        PlanCache {
            inner: Mutex::new(PlanCacheInner {
                map: HashMap::new(),
                clock: 0,
                generation: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Current DDL generation; pass it back to [`PlanCache::install`].
    fn generation(&self) -> u64 {
        self.inner.lock().generation
    }

    /// Look up a compiled plan, refreshing its LRU stamp on a hit.
    fn get(&self, key: &str) -> Option<(Arc<JobSpec>, PlanInfo)> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.job.clone(), entry.plan.clone()))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Install a freshly compiled plan, unless a DDL ran since the
    /// compile started (the plan may bake in a stale catalog).
    fn install(&self, key: String, job: Arc<JobSpec>, plan: PlanInfo, generation: u64) {
        let mut inner = self.inner.lock();
        if inner.generation != generation {
            return;
        }
        if inner.map.len() >= PLAN_CACHE_CAPACITY && !inner.map.contains_key(&key) {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(key, CachedPlan { job, plan, stamp });
    }

    /// Drop every cached plan and bump the generation (DDL barrier).
    fn invalidate(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.generation += 1;
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A simulated AsterixDB cluster instance.
pub struct Instance {
    ctx: ClusterContext,
    catalog: RwLock<SimpleCatalog>,
    /// One disk + buffer cache per partition (node-local storage, §2.3).
    caches: Vec<Arc<BufferCache>>,
    config: InstanceConfig,
    /// The metrics registry + event log + slow-query log; `None` when
    /// `TelemetryConfig::enabled` is false.
    telemetry: Option<Arc<Telemetry>>,
    /// Shared worker pool + admission controller; `None` when
    /// `SchedulerConfig::workers == 0` (seed behaviour: per-query
    /// threads, no admission control, no memory budget).
    scheduler: Option<QueryScheduler>,
    /// WAL + manifest per partition; `None` on in-memory instances
    /// (`DurabilityConfig::data_dir == None`).
    durability: Option<DurabilityState>,
    /// Compiled-plan cache (parse → optimize → jobgen memoized per query
    /// text + optimizer fingerprint), invalidated on DDL.
    plan_cache: PlanCache,
    /// The running-query registry: assigns every query its monotonic
    /// `query_id` and tracks in-flight queries for live introspection.
    registry: QueryRegistry,
}

impl Instance {
    /// Build an in-memory instance from `config`, spawning the shared
    /// worker pool when the scheduler is enabled.
    ///
    /// Equivalent to [`Instance::open`] but infallible: an in-memory
    /// instance cannot fail to start, and a durable configuration that
    /// fails recovery panics. Use `open` when you need the error.
    pub fn new(config: InstanceConfig) -> Self {
        Self::open(config).expect("instance open failed")
    }

    /// Open an instance. For a durable configuration (a
    /// [`crate::config::DurabilityConfig`] with a data directory) this
    /// runs the full startup recovery protocol: re-link every
    /// manifest-referenced LSM component, sweep orphan component files
    /// left by crashed flushes/merges, truncate torn WAL tails, and
    /// replay surviving WAL records into the memory components. An
    /// acknowledged write from the previous incarnation is never lost.
    pub fn open(mut config: InstanceConfig) -> Result<Self, CoreError> {
        let telemetry = config
            .telemetry
            .enabled
            .then(|| Arc::new(Telemetry::new(&config.telemetry, config.num_partitions)));
        // Install the lifecycle event sink before the storage config is
        // cloned into any partition store, so every LSM tree reports into
        // the shared ring.
        if let Some(t) = &telemetry {
            config.storage.events = Some(t.event_log().clone());
        }
        let data_dir = config.durability.data_dir.clone();
        if data_dir.is_some() {
            // Obsolete component files must survive until the manifest
            // that stops referencing them is committed.
            config.storage.defer_reclaim = true;
        }
        let mut disks: Vec<Arc<Disk>> = Vec::with_capacity(config.num_partitions);
        for p in 0..config.num_partitions {
            let disk = match &data_dir {
                Some(root) => {
                    let dir = root.join(format!("p{p}"));
                    std::fs::create_dir_all(&dir)
                        .map_err(|e| CoreError::Io(format!("create {}: {e}", dir.display())))?;
                    Arc::new(Disk::file_backed(&dir)?)
                }
                None => Arc::new(Disk::new()),
            };
            disks.push(disk);
        }
        let caches: Vec<Arc<BufferCache>> = disks
            .iter()
            .map(|disk| BufferCache::shared(disk.clone(), config.storage.buffer_cache_pages))
            .collect();
        let scheduler = QueryScheduler::new(&config.scheduler);
        let mut instance = Instance {
            ctx: ClusterContext::new(config.num_partitions, FunctionRegistry::with_builtins()),
            catalog: RwLock::new(SimpleCatalog::new()),
            caches,
            config,
            telemetry,
            scheduler,
            durability: None,
            plan_cache: PlanCache::new(),
            registry: QueryRegistry::new(),
        };
        if let Some(root) = data_dir {
            instance.recover(&root, &disks)?;
        }
        Ok(instance)
    }

    /// Startup recovery: load each partition's manifest + WAL, rebuild
    /// every partition store, sweep orphans, and replay the WAL.
    fn recover(&mut self, root: &std::path::Path, disks: &[Arc<Disk>]) -> Result<(), CoreError> {
        let started = Instant::now();
        // Cold-start time gets its own span tree (mirroring per-query
        // traces): "recovery" with manifest-restore / orphan-sweep /
        // wal-replay children, exportable via
        // [`Instance::recovery_trace_chrome_json`].
        let rec_trace = Trace::new();
        let rec_span = rec_trace.span("recovery");
        let wal_config = WalConfig {
            commit_interval: self.config.durability.wal_commit_interval,
            batch_bytes: self.config.durability.wal_batch_bytes,
            segment_bytes: self.config.durability.wal_segment_bytes,
        };
        let mut stats = RecoveryStats::default();
        let mut partitions = Vec::with_capacity(self.config.num_partitions);
        let mut manifests = Vec::with_capacity(self.config.num_partitions);
        let mut wal_records = Vec::with_capacity(self.config.num_partitions);
        let restore_span = rec_trace.span("manifest-restore");
        for (p, disk) in disks.iter().enumerate() {
            let _p_span = rec_trace.span_with("partition-open", Some(restore_span.id()), Some(p));
            let dir = root.join(format!("p{p}"));
            let (pd, manifest, records) =
                PartitionDurability::open(&dir, wal_config.clone(), disk.clone())?;
            let rec = pd.wal().recovery();
            stats.wal_bytes_truncated += rec.bytes_truncated;
            stats.wal_segments_dropped += rec.segments_dropped;
            if manifest.is_some() {
                stats.partitions_recovered += 1;
            }
            if let Some(log) = &self.config.storage.events {
                let tag: Arc<str> = Arc::from(format!("recovery/p{p}").as_str());
                log.record(
                    &tag,
                    LsmEventKind::RecoveryStart,
                    pd.wal().segment_bytes(),
                    0,
                    0,
                    None,
                );
            }
            partitions.push(pd);
            manifests.push(manifest);
            wal_records.push(records);
        }

        // The catalog is the union of every partition's manifest (a crash
        // between per-partition manifest commits of a DDL statement can
        // leave some partitions ahead of others; no DML for the affected
        // dataset can have been acknowledged in the meantime).
        let mut defs: Vec<DatasetDef> = Vec::new();
        for manifest in manifests.iter().flatten() {
            for ds in &manifest.datasets {
                if defs.iter().any(|d| d.name == ds.name) {
                    continue;
                }
                let mut def = DatasetDef::new(&ds.name, &ds.primary_key);
                for mi in &ds.indexes {
                    def.add_index(mi.def.clone())?;
                }
                defs.push(def);
            }
        }

        // Rebuild the stores: every dataset gets a store in every
        // partition; partitions whose manifest lists it restore its disk
        // components (verifying page counts), others start empty.
        for (p, pset) in self.ctx.partitions.iter().enumerate() {
            let mut set = pset.write();
            for def in &defs {
                let mut store = PartitionStore::new(
                    def.clone(),
                    p,
                    self.caches[p].clone(),
                    self.config.storage.clone(),
                );
                if let Some(ds) = manifests[p]
                    .as_ref()
                    .and_then(|m| m.datasets.iter().find(|d| d.name == def.name))
                {
                    store.restore_from_manifest(ds)?;
                    stats.components_opened += ds.primary.len() as u64
                        + ds.indexes.iter().map(|i| i.components.len() as u64).sum::<u64>();
                }
                set.insert_store(store);
            }
        }
        drop(restore_span);

        // Orphan sweep — before replay, so components flushed *by* replay
        // are never mistaken for orphans. Files on disk that no manifest
        // references were written by flushes/merges that crashed before
        // their manifest commit; the WAL still holds their operations.
        let sweep_span = rec_trace.span("orphan-sweep");
        for (p, disk) in disks.iter().enumerate() {
            let referenced: std::collections::HashSet<_> = manifests[p]
                .as_ref()
                .map(|m| m.referenced_files().into_iter().collect())
                .unwrap_or_default();
            for file in disk.list_files() {
                if !referenced.contains(&file) {
                    disk.delete(file);
                    stats.orphan_files_removed += 1;
                }
            }
        }

        drop(sweep_span);

        // Replay surviving WAL records above each partition's flushed
        // LSN, in LSN order. Replay is idempotent: inserts overwrite,
        // deletes of absent keys are no-ops.
        let replay_span = rec_trace.span("wal-replay");
        for (p, records) in wal_records.iter().enumerate() {
            let _p_span = rec_trace.span_with("partition-replay", Some(replay_span.id()), Some(p));
            let flushed = partitions[p].flushed_lsn();
            let mut set = self.ctx.partitions[p].write();
            for record in records {
                if record.lsn <= flushed {
                    continue;
                }
                let op = WalOp::decode(&record.payload)?;
                match op {
                    WalOp::Insert { dataset, record } => {
                        let store = set.store_mut(&dataset).ok_or_else(|| {
                            CoreError::Io(format!(
                                "wal replay: dataset '{dataset}' not in any manifest"
                            ))
                        })?;
                        store.insert(record)?;
                    }
                    WalOp::Delete { dataset, pk } => {
                        let store = set.store_mut(&dataset).ok_or_else(|| {
                            CoreError::Io(format!(
                                "wal replay: dataset '{dataset}' not in any manifest"
                            ))
                        })?;
                        store.delete(&pk)?;
                    }
                }
                stats.wal_records_replayed += 1;
            }
        }
        drop(replay_span);
        for (p, pd) in partitions.iter().enumerate() {
            if let Some(log) = &self.config.storage.events {
                let tag: Arc<str> = Arc::from(format!("recovery/p{p}").as_str());
                let replayed = wal_records[p]
                    .iter()
                    .filter(|r| r.lsn > pd.flushed_lsn())
                    .count() as u64;
                log.record(&tag, LsmEventKind::RecoveryEnd, replayed, 0, 0, None);
            }
        }

        {
            let mut catalog = self.catalog.write();
            for def in defs {
                catalog.add(def);
            }
        }
        stats.recovery_time = started.elapsed();
        drop(rec_span);
        self.durability = Some(DurabilityState {
            partitions,
            recovery: stats,
            recovery_spans: rec_trace.spans(),
        });
        Ok(())
    }

    /// Stats of the startup recovery pass, for durable instances.
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.durability.as_ref().map(|d| &d.recovery)
    }

    /// Span tree of the startup recovery pass (manifest restore, orphan
    /// sweep, WAL replay), for durable instances. Same shape as a query's
    /// spans; render with [`crate::telemetry::chrome_trace_json`].
    pub fn recovery_spans(&self) -> Option<&[asterix_storage::SpanRecord]> {
        self.durability.as_ref().map(|d| d.recovery_spans.as_slice())
    }

    /// The recovery span tree as Chrome trace-event JSON (Perfetto-
    /// loadable), for durable instances. Uses pid 0 — query traces use
    /// their nonzero `query_id` as pid.
    pub fn recovery_trace_chrome_json(&self) -> Option<String> {
        self.recovery_spans()
            .map(|s| crate::telemetry::chrome_trace_json(0, s))
    }

    /// True when this instance persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// True when any partition's WAL is poisoned: a background write or
    /// fsync failed, so writes can no longer be made durable. The admin
    /// `/health` endpoint reports the instance as `degraded` when set.
    /// Always `false` on in-memory instances.
    pub fn wal_poisoned(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(|d| d.partitions.iter().any(|pd| pd.wal().is_poisoned()))
    }

    /// Consistent snapshot of every in-flight query — id, text, class,
    /// queued/running/cancelling state, elapsed time, and live
    /// per-operator progress sampled from the executor's relaxed
    /// atomics. Never pauses execution.
    pub fn running_queries(&self) -> Vec<RunningQuery> {
        self.registry.running()
    }

    /// Cancel an in-flight query by its `query_id`: trips the query's
    /// own cancel token, which stops it whether it is still waiting for
    /// admission or already executing (the query returns
    /// [`CoreError::Cancelled`]). Returns `false` when no query with
    /// that id is in flight.
    pub fn cancel(&self, query_id: u64) -> bool {
        self.registry.cancel(query_id)
    }

    /// The Chrome trace-event JSON of a slow-logged query, by id.
    /// `None` when telemetry is off or the id is not (or no longer) in
    /// the slow-query log.
    pub fn slow_query_trace_chrome_json(&self, query_id: u64) -> Option<String> {
        let t = self.telemetry.as_ref()?;
        t.slow_queries()
            .iter()
            .find(|s| s.query_id == query_id)
            .map(|s| crate::telemetry::chrome_trace_json(s.query_id, &s.spans))
    }

    /// Snapshot every partition's current LSM state into its manifest,
    /// advance the flushed LSN when all memory components are empty (the
    /// condition under which covered WAL segments can be reclaimed), and
    /// delete component files whose last manifest reference just
    /// disappeared. No-op on in-memory instances.
    fn commit_partition_manifest(&self, pidx: usize) -> Result<(), CoreError> {
        let Some(dur) = &self.durability else {
            return Ok(());
        };
        let pd = &dur.partitions[pidx];
        // The commit lock is held from the state sample through the
        // manifest rename and WAL truncation: concurrent committers
        // (flush racing DDL) must publish in sample order, or a staler
        // manifest could overwrite a newer one whose advanced
        // `flushed_lsn` already reclaimed WAL segments — losing the
        // acknowledged operations in between on the next recovery.
        let _commit = pd.commit_lock();
        // Everything sampled under the partition write lock: WAL appends
        // also happen under it, so `durable_lsn` cannot move past an
        // operation that is only in a memory component we just saw empty.
        let (datasets, flushed_lsn, obsolete) = {
            let mut set = self.ctx.partitions[pidx].write();
            let mut datasets: Vec<_> = set.stores().map(|s| s.manifest_dataset()).collect();
            datasets.sort_by(|a, b| a.name.cmp(&b.name));
            let all_empty = set.stores().all(|s| s.all_mem_empty());
            let flushed_lsn = if all_empty {
                pd.wal().durable_lsn()
            } else {
                pd.flushed_lsn()
            };
            let obsolete: Vec<_> = set.stores_mut().flat_map(|s| s.take_obsolete()).collect();
            (datasets, flushed_lsn, obsolete)
        };
        let manifest = Manifest {
            flushed_lsn,
            datasets,
        };
        // If this commit fails, the drained obsolete files leak until the
        // next startup's orphan sweep — never the reverse (a referenced
        // file is only deleted after the commit that drops it succeeds).
        let reclaimed = pd.commit_manifest(&manifest)?;
        if reclaimed > 0 {
            if let Some(log) = &self.config.storage.events {
                let tag: Arc<str> = Arc::from(format!("wal/p{pidx}").as_str());
                log.record(&tag, LsmEventKind::WalTruncate, reclaimed, 0, 0, None);
            }
        }
        for file in obsolete {
            pd.disk().delete(file);
        }
        Ok(())
    }

    /// Commit every partition's manifest (DDL durability point).
    fn commit_all_manifests(&self) -> Result<(), CoreError> {
        if self.durability.is_some() {
            for p in 0..self.config.num_partitions {
                self.commit_partition_manifest(p)?;
            }
        }
        Ok(())
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &InstanceConfig {
        &self.config
    }

    /// Number of data partitions in the simulated cluster.
    pub fn num_partitions(&self) -> usize {
        self.config.num_partitions
    }

    /// Register a user-defined function usable in any query (§3.1).
    pub fn register_udf<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    {
        self.ctx.registry.register(name, f);
        // Cached plans may have resolved (or failed to resolve) this name.
        self.plan_cache.invalidate();
    }

    /// `create dataset <name> primary key <pk>`.
    pub fn create_dataset(&self, name: &str, primary_key: &str) -> Result<(), CoreError> {
        let mut catalog = self.catalog.write();
        if catalog.dataset(name).is_some() {
            return Err(CoreError::Schema(format!("dataset '{name}' already exists")));
        }
        let def = DatasetDef::new(name, primary_key);
        for (pidx, pset) in self.ctx.partitions.iter().enumerate() {
            pset.write().insert_store(PartitionStore::new(
                def.clone(),
                pidx,
                self.caches[pidx].clone(),
                self.config.storage.clone(),
            ));
        }
        catalog.add(def);
        drop(catalog);
        self.plan_cache.invalidate();
        // DDL is durable immediately (per-partition manifest commit), so
        // the WAL only ever carries DML and replay never meets an unknown
        // dataset.
        self.commit_all_manifests()
    }

    /// `create index <index> on <dataset>(<field>) type <kind>` — builds
    /// the index on existing data in parallel and returns Table-5-style
    /// statistics.
    pub fn create_index(
        &self,
        dataset: &str,
        index: &str,
        field: &str,
        kind: IndexKind,
    ) -> Result<IndexBuildStats, CoreError> {
        let def = IndexDef {
            name: index.to_string(),
            field: field.to_string(),
            kind,
        };
        {
            let mut catalog = self.catalog.write();
            let ds = catalog
                .get_mut(dataset)
                .ok_or_else(|| CoreError::Schema(format!("unknown dataset '{dataset}'")))?;
            ds.add_index(def.clone())?;
        }
        self.plan_cache.invalidate();
        let started = Instant::now();
        let mut records = 0u64;
        // Parallel backfill: one thread per partition, as a bulk-load job
        // would run.
        let counts = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .ctx
                .partitions
                .iter()
                .map(|pset| {
                    let def = def.clone();
                    scope.spawn(move || {
                        let mut set = pset.write();
                        let store = set
                            .store_mut(dataset)
                            .ok_or_else(|| format!("dataset '{dataset}' missing in partition"))?;
                        store.create_index(&def).map_err(|e| e.to_string())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("index build thread"))
                .collect::<Vec<Result<u64, String>>>()
        });
        for c in counts {
            records += c.map_err(CoreError::Schema)?;
        }
        self.commit_all_manifests()?;
        Ok(IndexBuildStats {
            index: index.to_string(),
            records_indexed: records,
            build_time: started.elapsed(),
            size_bytes: self.index_size(dataset, index)?,
        })
    }

    /// `drop index <dataset>.<index>`.
    pub fn drop_index(&self, dataset: &str, index: &str) -> Result<(), CoreError> {
        {
            let mut catalog = self.catalog.write();
            let ds = catalog
                .get_mut(dataset)
                .ok_or_else(|| CoreError::Schema(format!("unknown dataset '{dataset}'")))?;
            let before = ds.indexes.len();
            ds.indexes.retain(|i| i.name != index);
            if ds.indexes.len() == before {
                return Err(CoreError::Schema(format!(
                    "no index '{index}' on dataset '{dataset}'"
                )));
            }
        }
        self.plan_cache.invalidate();
        for pset in &self.ctx.partitions {
            let mut set = pset.write();
            if let Some(store) = set.store_mut(dataset) {
                store.drop_index(index);
            }
        }
        // Commit the index removal; the dropped component files (queued by
        // `drop_index` under `defer_reclaim`) are deleted only after the
        // manifest stops referencing them.
        self.commit_all_manifests()
    }

    /// Insert one record, hash-routed to its partition by primary key.
    pub fn insert(&self, dataset: &str, record: Value) -> Result<(), CoreError> {
        let (key, partition) = {
            let catalog = self.catalog.read();
            let def = catalog
                .dataset(dataset)
                .ok_or_else(|| CoreError::Schema(format!("unknown dataset '{dataset}'")))?;
            let key = def.key_of(&record)?;
            let p = def.partition_of(&key, self.config.num_partitions);
            (key, p)
        };
        let _ = key;
        let mut set = self.ctx.partitions[partition].write();
        let store = set
            .store_mut(dataset)
            .ok_or_else(|| CoreError::Schema(format!("dataset '{dataset}' missing")))?;
        // WAL first: LSN assignment and the memory-component apply happen
        // atomically under the partition lock, but the fsync wait happens
        // *after* the lock is released so concurrent writers share one
        // group commit. `Ok` still means the write survives any crash.
        // `Err` is at-least-once territory (see the `durability` module
        // docs): a failed apply after the submit leaves a WAL record the
        // next restart replays, and a failed wait leaves the record
        // visible in memory until a restart discards it with its batch.
        let lsn = match &self.durability {
            Some(dur) => Some(dur.partitions[partition].submit(&WalOp::Insert {
                dataset: dataset.to_string(),
                record: record.clone(),
            })?),
            None => None,
        };
        store.insert(record)?;
        drop(set);
        if let Some(lsn) = lsn {
            self.durability.as_ref().expect("checked above").partitions[partition]
                .wait_durable(lsn)?;
        }
        Ok(())
    }

    /// Delete a record by primary key (tombstoned in the LSM components;
    /// secondary postings are removed too).
    pub fn delete(&self, dataset: &str, pk: &Value) -> Result<(), CoreError> {
        let partition = {
            let catalog = self.catalog.read();
            let def = catalog
                .dataset(dataset)
                .ok_or_else(|| CoreError::Schema(format!("unknown dataset '{dataset}'")))?;
            def.partition_of(pk, self.config.num_partitions)
        };
        let mut set = self.ctx.partitions[partition].write();
        let store = set
            .store_mut(dataset)
            .ok_or_else(|| CoreError::Schema(format!("dataset '{dataset}' missing")))?;
        // Same protocol as insert: submit + apply under the lock, wait
        // for the group commit after releasing it — including the same
        // at-least-once anomaly on failure (`durability` module docs).
        let lsn = match &self.durability {
            Some(dur) => Some(dur.partitions[partition].submit(&WalOp::Delete {
                dataset: dataset.to_string(),
                pk: pk.clone(),
            })?),
            None => None,
        };
        store.delete(pk)?;
        drop(set);
        if let Some(lsn) = lsn {
            self.durability.as_ref().expect("checked above").partitions[partition]
                .wait_durable(lsn)?;
        }
        Ok(())
    }

    /// Bulk load many records (routed per record), in parallel batches.
    pub fn load(
        &self,
        dataset: &str,
        records: impl IntoIterator<Item = Value>,
    ) -> Result<u64, CoreError> {
        let def = {
            let catalog = self.catalog.read();
            catalog
                .dataset(dataset)
                .ok_or_else(|| CoreError::Schema(format!("unknown dataset '{dataset}'")))?
                .clone()
        };
        // Partition the batch, then insert per partition in parallel.
        let mut buckets: Vec<Vec<Value>> = (0..self.config.num_partitions)
            .map(|_| Vec::new())
            .collect();
        let mut n = 0u64;
        for rec in records {
            let key = def.key_of(&rec)?;
            let p = def.partition_of(&key, self.config.num_partitions);
            buckets[p].push(rec);
            n += 1;
        }
        let errs: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .zip(&self.ctx.partitions)
                .enumerate()
                .map(|(pidx, (bucket, pset))| {
                    let dur = self.durability.as_ref().map(|d| &d.partitions[pidx]);
                    scope.spawn(move || -> Result<(), String> {
                        let mut set = pset.write();
                        let store = set
                            .store_mut(dataset)
                            .ok_or_else(|| format!("dataset '{dataset}' missing"))?;
                        // One group commit for the whole bucket, before
                        // any record is applied.
                        if let Some(pd) = dur {
                            let ops: Vec<WalOp> = bucket
                                .iter()
                                .map(|rec| WalOp::Insert {
                                    dataset: dataset.to_string(),
                                    record: rec.clone(),
                                })
                                .collect();
                            pd.log_many(&ops).map_err(|e| e.to_string())?;
                        }
                        for rec in bucket {
                            store.insert(rec).map_err(|e| e.to_string())?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("load thread").err())
                .collect()
        });
        if let Some(e) = errs.into_iter().next() {
            return Err(CoreError::Schema(e));
        }
        Ok(n)
    }

    /// Load newline-delimited JSON (the paper's raw dataset format).
    pub fn load_json_lines(&self, dataset: &str, text: &str) -> Result<u64, CoreError> {
        let records = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(asterix_adm::json::parse)
            .collect::<Result<Vec<_>, _>>()?;
        self.load(dataset, records)
    }

    /// Flush all memory components to disk.
    ///
    /// Transient I/O faults (the kind a [`asterix_storage::FaultInjector`]
    /// marks retryable) are retried with bounded exponential backoff;
    /// `flush_all` preserves the in-memory components on failure, so a
    /// retry loses nothing. Permanent faults — and transient ones that
    /// survive every attempt — surface as [`CoreError::Io`].
    pub fn flush(&self, dataset: &str) -> Result<(), CoreError> {
        const MAX_ATTEMPTS: u32 = 4;
        for (pidx, pset) in self.ctx.partitions.iter().enumerate() {
            let mut attempt = 0u32;
            loop {
                // Take the partition's write lock per attempt and release
                // it before the backoff sleep — holding it across the
                // sleep would stall every query (and concurrent flush)
                // touching this partition for the whole retry window.
                let result = {
                    let mut set = pset.write();
                    set.store_mut(dataset).map(|store| store.flush_all())
                };
                match result {
                    None | Some(Ok(())) => break,
                    Some(Err(e)) if e.transient && attempt + 1 < MAX_ATTEMPTS => {
                        attempt += 1;
                        if let Some(log) = &self.config.storage.events {
                            let tag: Arc<str> =
                                Arc::from(format!("{dataset}/p{pidx}/*").as_str());
                            log.record(
                                &tag,
                                LsmEventKind::FaultRetry,
                                0,
                                0,
                                0,
                                Some(format!("flush attempt {attempt}: {e}")),
                            );
                        }
                        std::thread::sleep(Duration::from_millis(1u64 << attempt));
                    }
                    Some(Err(e)) => return Err(e.into()),
                }
            }
        }
        // Durable instances: snapshot the new component lists into each
        // partition's manifest. When the flush emptied every memory
        // component of a partition, this also advances `flushed_lsn` and
        // reclaims the WAL segments it covers.
        self.commit_all_manifests()
    }

    /// Total size of one index (or `<primary>`) across partitions.
    pub fn index_size(&self, dataset: &str, index: &str) -> Result<u64, CoreError> {
        let mut total = 0u64;
        for pset in &self.ctx.partitions {
            let set = pset.read();
            let store = set
                .store(dataset)
                .ok_or_else(|| CoreError::Schema(format!("unknown dataset '{dataset}'")))?;
            for (name, bytes) in store.index_sizes() {
                if name == index {
                    total += bytes;
                }
            }
        }
        Ok(total)
    }

    /// All index sizes for a dataset, aggregated over partitions
    /// (Table 5).
    pub fn index_sizes(&self, dataset: &str) -> Result<Vec<(String, u64)>, CoreError> {
        let mut agg: Vec<(String, u64)> = Vec::new();
        for pset in &self.ctx.partitions {
            let set = pset.read();
            let store = set
                .store(dataset)
                .ok_or_else(|| CoreError::Schema(format!("unknown dataset '{dataset}'")))?;
            for (name, bytes) in store.index_sizes() {
                match agg.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, b)) => *b += bytes,
                    None => agg.push((name, bytes)),
                }
            }
        }
        Ok(agg)
    }

    /// Number of records in a dataset.
    pub fn count_records(&self, dataset: &str) -> Result<u64, CoreError> {
        let mut n = 0;
        for pset in &self.ctx.partitions {
            let set = pset.read();
            let store = set
                .store(dataset)
                .ok_or_else(|| CoreError::Schema(format!("unknown dataset '{dataset}'")))?;
            n += store.primary().len()?;
        }
        Ok(n)
    }

    /// Aggregate buffer-cache statistics across partitions.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.caches {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Instance-lifetime (flushes, merges) summed over every LSM tree of
    /// every partition store.
    pub fn lsm_totals(&self) -> (u64, u64) {
        let (mut flushes, mut merges) = (0u64, 0u64);
        for pset in &self.ctx.partitions {
            let set = pset.read();
            for store in set.stores() {
                let (f, m) = store.lsm_counters();
                flushes += f;
                merges += m;
            }
        }
        (flushes, merges)
    }

    /// The buffer cache of one partition. Fault-injection tests reach the
    /// partition's simulated disk through this (`cache.disk()`), e.g. to
    /// install an [`asterix_storage::FaultInjector`].
    pub fn partition_cache(&self, partition: usize) -> &Arc<BufferCache> {
        &self.caches[partition]
    }

    /// Zero every partition's buffer-cache counters (bench support).
    pub fn reset_cache_stats(&self) {
        for c in &self.caches {
            c.reset_stats();
        }
    }

    /// The metrics registry, when telemetry is enabled. Gives access to
    /// the slow-query log and the LSM lifecycle event ring.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// A typed snapshot of every instance-wide metric: per-class query
    /// histograms, per-operator execution times, partition busy time,
    /// cache ratios, LSM gauges, the event ring, and the slow-query log.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.telemetry {
            Some(t) => t.snapshot(self.instance_gauges()),
            None => MetricsSnapshot::disabled(),
        }
    }

    /// [`Instance::metrics`] rendered as an ADM/JSON record.
    pub fn metrics_snapshot(&self) -> Value {
        self.metrics().to_json()
    }

    /// [`Instance::metrics`] rendered as Prometheus text exposition.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics().to_prometheus()
    }

    /// Sample the live gauges (buffer cache, per-index LSM component
    /// counts and sizes aggregated over partitions).
    fn instance_gauges(&self) -> InstanceGauges {
        let (lsm_flushes, lsm_merges) = self.lsm_totals();
        let mut datasets: Vec<DatasetGauges> = Vec::new();
        for pset in &self.ctx.partitions {
            let set = pset.read();
            for store in set.stores() {
                let name = store.dataset.name.clone();
                let entry = match datasets.iter_mut().find(|d| d.dataset == name) {
                    Some(d) => d,
                    None => {
                        datasets.push(DatasetGauges {
                            dataset: name,
                            indexes: Vec::new(),
                        });
                        datasets.last_mut().expect("just pushed")
                    }
                };
                for (index, components, size_bytes) in store.index_components() {
                    match entry.indexes.iter_mut().find(|i| i.name == index) {
                        Some(i) => {
                            i.components += components as u64;
                            i.size_bytes += size_bytes;
                        }
                        None => entry.indexes.push(IndexGauge {
                            name: index,
                            components: components as u64,
                            size_bytes,
                        }),
                    }
                }
            }
        }
        datasets.sort_by(|a, b| a.dataset.cmp(&b.dataset));
        let durability = match &self.durability {
            Some(d) => {
                let mut g = DurabilityGauges {
                    enabled: true,
                    replayed_records: d.recovery.wal_records_replayed,
                    recovery_us: d.recovery.recovery_time.as_micros() as u64,
                    ..DurabilityGauges::default()
                };
                for pd in &d.partitions {
                    g.disk_fsyncs += pd.disk().fsyncs();
                    g.wal_appends += pd.wal().appends();
                    g.wal_bytes += pd.wal().bytes_appended();
                    g.wal_group_commits += pd.wal().group_commits();
                    g.wal_fsyncs += pd.wal().fsyncs();
                    g.wal_live_bytes += pd.wal().segment_bytes();
                }
                g
            }
            None => DurabilityGauges::default(),
        };
        InstanceGauges {
            buffer_cache: self.cache_stats(),
            lsm_flushes,
            lsm_merges,
            datasets,
            scheduler: match &self.scheduler {
                Some(s) => s.snapshot(),
                None => SchedulerSnapshot::default(),
            },
            durability,
            plan_cache_hits: self.plan_cache.hits(),
            plan_cache_misses: self.plan_cache.misses(),
        }
    }

    /// The query scheduler (worker pool + admission controller), when
    /// enabled. Tests and the bench harness inspect its gauges here.
    pub fn scheduler(&self) -> Option<&QueryScheduler> {
        self.scheduler.as_ref()
    }

    /// Run an AQL query with the instance's optimizer settings.
    pub fn query(&self, aql: &str) -> Result<QueryResult, CoreError> {
        self.query_with(aql, &QueryOptions::default())
    }

    /// Compile one query, recording a tracing span per pipeline stage
    /// when a trace is active.
    fn compile(
        &self,
        aql: &str,
        options: &QueryOptions,
        trace: Option<&Arc<Trace>>,
    ) -> Result<(JobSpec, PlanInfo), CoreError> {
        let query = {
            let _s = trace.map(|t| t.span("parse"));
            parse_query(aql)?
        };
        let vargen = VarGen::new();
        let translation = {
            let _s = trace.map(|t| t.span("translate"));
            translate(&query, &vargen, &Bindings::default())?
        };

        // `set simfunction` / `set simthreshold` override the default ~=
        // measure (§3.2).
        let mut opt_config = options
            .optimizer
            .clone()
            .unwrap_or_else(|| self.config.optimizer.clone());
        if let Some(f) = &translation.settings.simfunction {
            let threshold = translation.settings.simthreshold.as_deref();
            opt_config.simfunction = parse_measure(f, threshold)?;
        }

        let catalog = self.catalog.read().clone();
        let (optimized, rewrites) = {
            let _s = trace.map(|t| t.span("optimize"));
            optimize(
                &translation.plan,
                &catalog,
                &self.ctx.registry,
                &opt_config,
                &vargen,
            )
        };
        let job = {
            let _s = trace.map(|t| t.span("jobgen"));
            generate_job(&optimized, opt_config.enable_subplan_reuse)
                .map_err(CoreError::Translate)?
        };
        let plan = PlanInfo {
            logical_ops_before: operator_counts(&translation.plan),
            logical_ops_after: operator_counts(&optimized),
            rewrites,
            explain: explain_plan(&optimized),
            physical_ops: job.operator_counts(),
        };
        Ok((job, plan))
    }

    /// [`Instance::compile`] behind the plan cache: a hit skips parse,
    /// optimize, and job generation entirely. The cache key covers the
    /// query text plus the per-query optimizer override (the `set
    /// simfunction`/`set simthreshold` pragmas are part of the text).
    fn compile_cached(
        &self,
        aql: &str,
        options: &QueryOptions,
        trace: Option<&Arc<Trace>>,
    ) -> Result<(Arc<JobSpec>, PlanInfo), CoreError> {
        if options.disable_plan_cache {
            let (job, plan) = self.compile(aql, options, trace)?;
            return Ok((Arc::new(job), plan));
        }
        let key = format!("{:?}\u{0}{aql}", options.optimizer);
        if let Some(hit) = self.plan_cache.get(&key) {
            // Mark the hit in the trace: the compile-stage spans (parse,
            // translate, optimize, jobgen) are intentionally absent.
            let _s = trace.map(|t| t.span("plan-cache"));
            return Ok(hit);
        }
        // Snapshot the DDL generation *before* reading the catalog, so a
        // plan compiled against a catalog that changed mid-compile is
        // never installed.
        let generation = self.plan_cache.generation();
        let (job, plan) = self.compile(aql, options, trace)?;
        let job = Arc::new(job);
        self.plan_cache
            .install(key, job.clone(), plan.clone(), generation);
        Ok((job, plan))
    }

    /// Run an AQL query with per-query optimizer overrides.
    pub fn query_with(&self, aql: &str, options: &QueryOptions) -> Result<QueryResult, CoreError> {
        self.query_inner(aql, options, None)
    }

    /// Run an AQL query, streaming result rows to `on_rows` as the
    /// executor produces them instead of buffering the full result set.
    ///
    /// `on_rows` is called from the result-sink operator's thread, once
    /// per arriving frame, in production order; returning `Err` (e.g.
    /// the consumer disconnected) cancels the whole query, which then
    /// fails with that message as an operator error. The returned
    /// [`QueryResult`] has an empty `rows` vector;
    /// [`QueryResult::streamed_rows`] counts what was delivered. This is
    /// the foundation of the HTTP `POST /query` endpoint: large
    /// similarity-join results flow to the client without ever
    /// materializing server-side.
    pub fn query_streaming<F>(
        &self,
        aql: &str,
        options: &QueryOptions,
        on_rows: F,
    ) -> Result<QueryResult, CoreError>
    where
        F: Fn(Vec<Value>) -> Result<(), String> + Send + Sync + 'static,
    {
        let delivered = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&delivered);
        let sink = ResultSink::new(move |tuples: Vec<asterix_hyracks::Tuple>| {
            // Results are single-column (the translator projects the
            // return value) — same shape the buffered path unwraps.
            let rows: Vec<Value> = tuples
                .into_iter()
                .map(|mut t| {
                    debug_assert_eq!(t.len(), 1);
                    t.pop().unwrap_or(Value::Missing)
                })
                .collect();
            counter.fetch_add(rows.len() as u64, Ordering::Relaxed);
            on_rows(rows)
        });
        self.query_inner(aql, options, Some((sink, delivered)))
    }

    /// Shared body of [`Instance::query_with`] and
    /// [`Instance::query_streaming`]: `stream` carries the executor sink
    /// plus the delivered-row counter when the caller streams.
    fn query_inner(
        &self,
        aql: &str,
        options: &QueryOptions,
        stream: Option<(ResultSink, Arc<AtomicU64>)>,
    ) -> Result<QueryResult, CoreError> {
        // One trace per query when telemetry is on; the "query" root span
        // covers compile + execute, with per-stage children and (via
        // `JobOptions::trace`) per-operator-partition children under
        // "execute".
        let trace = self.telemetry.as_ref().map(|_| Trace::new());
        let query_span = trace.as_ref().map(|t| t.span("query"));

        let compile_started = Instant::now();
        let (job, plan) = match self.compile_cached(aql, options, trace.as_ref()) {
            Ok(compiled) => compiled,
            Err(e) => {
                if let Some(t) = &self.telemetry {
                    t.record_compile_error();
                }
                return Err(e);
            }
        };
        let compile_time = compile_started.elapsed();
        let class = options
            .admission_class
            .unwrap_or_else(|| QueryClass::classify(&plan));

        // The cancel token is created (and installed as the context's
        // active target) *before* admission, so its deadline spans queue
        // wait + execution and `ClusterContext::cancel_active` can stop
        // a query that is still waiting in the admission queue.
        let cancel = Arc::new(match options.timeout {
            Some(budget) => CancelToken::with_timeout(budget),
            None => CancelToken::new(),
        });
        self.ctx.install_cancel(cancel.clone());

        // Register in the running-query registry: assigns the monotonic
        // query_id and makes the query visible (and cancellable by id)
        // for its whole lifetime — queue wait included. The guard
        // deregisters on every exit path below.
        let query_id = self.registry.register(aql, class, cancel.clone());
        let _registry_guard = RegistryGuard::new(&self.registry, query_id);

        // Admission sits between compile and execute: queue wait is
        // recorded in the scheduler's own histogram and deliberately
        // excluded from the per-class execution-time histogram.
        let permit = match &self.scheduler {
            Some(s) => {
                let admit_span = trace.as_ref().map(|t| t.span("admission"));
                let admitted = s.admit(class, &cancel, query_id);
                drop(admit_span);
                match admitted {
                    Ok(p) => Some(p),
                    Err(e) => {
                        self.ctx.clear_cancel_if(&cancel);
                        if let Some(t) = &self.telemetry {
                            let outcome = match &e {
                                ExecError::AdmissionTimeout(_) => QueryOutcome::Timeout,
                                ExecError::Cancelled => QueryOutcome::Cancelled,
                                _ => QueryOutcome::Failed,
                            };
                            t.record_query(class, outcome, compile_time, Duration::ZERO, 0);
                        }
                        return Err(e.into());
                    }
                }
            }
            None => None,
        };
        self.registry.set_running(query_id);

        let exec_started = Instant::now();
        // Telemetry needs the per-query storage counters even when the
        // caller didn't ask for a profile (cache hit ratios, index funnel).
        let counters = (options.profile || self.telemetry.is_some()).then(QueryCounters::handle);
        let exec_span = trace.as_ref().map(|t| t.span("execute"));
        // Live per-operator progress, sampled by `running_queries()`
        // while the job executes.
        let progress = JobProgress::for_job(&job);
        self.registry.attach_progress(query_id, progress.clone());
        let job_options = JobOptions {
            timeout: options.timeout,
            counters: counters.clone(),
            disable_hotpath: options.disable_hotpath,
            disable_batching: options.disable_batching,
            disable_kernels: options.disable_kernels,
            trace: trace
                .clone()
                .zip(exec_span.as_ref().map(|s| s.id())),
            pool: self.scheduler.as_ref().map(|s| s.pool().clone()),
            cancel: Some(cancel),
            memory_budget: self.scheduler.as_ref().map(|s| s.memory_budget()),
            progress: Some(progress),
            result_sink: stream.as_ref().map(|(sink, _)| sink.clone()),
        };
        let run = run_job_with(&job, &self.ctx, &job_options);
        drop(exec_span);
        // Release the concurrency slot as soon as execution ends so the
        // next queued query starts while we post-process this one.
        drop(permit);
        let execution_time = exec_started.elapsed();
        let (tuples, stats) = match run {
            Ok(out) => out,
            Err(e) => {
                let err = CoreError::from(e);
                if let Some(t) = &self.telemetry {
                    let outcome = match &err {
                        CoreError::Timeout(_) => QueryOutcome::Timeout,
                        CoreError::Cancelled => QueryOutcome::Cancelled,
                        _ => QueryOutcome::Failed,
                    };
                    t.record_query(class, outcome, compile_time, execution_time, 0);
                }
                return Err(err);
            }
        };
        let storage_snapshot = counters.map(|c| c.snapshot());
        let profile = storage_snapshot.as_ref().map(|s| {
            crate::QueryProfile::build(
                query_id,
                &job,
                &stats,
                *s,
                self.lsm_totals(),
                plan.rewrites.clone(),
                compile_time,
                execution_time,
            )
        });
        // Results are single-column (the translator projects the return
        // value). A streaming query already delivered its rows to the
        // caller's sink; the executor's vector is empty by construction.
        let rows: Vec<Value> = tuples
            .into_iter()
            .map(|mut t| {
                debug_assert_eq!(t.len(), 1);
                t.pop().unwrap_or(Value::Missing)
            })
            .collect();
        let streamed_rows = stream
            .as_ref()
            .map_or(0, |(_, delivered)| delivered.load(Ordering::Relaxed));
        let row_count = rows.len() as u64 + streamed_rows;
        // Close the root span before a possible slow-query capture so the
        // captured span set includes the full tree.
        drop(query_span);
        if let Some(t) = &self.telemetry {
            t.record_query(
                class,
                QueryOutcome::Completed,
                compile_time,
                execution_time,
                row_count,
            );
            t.record_job(&stats);
            if let Some(s) = &storage_snapshot {
                t.record_storage(s);
            }
            let threshold = options
                .slow_query_threshold
                .unwrap_or_else(|| t.slow_query_threshold());
            if execution_time >= threshold {
                if let (Some(p), Some(tr)) = (&profile, &trace) {
                    t.record_slow(
                        query_id,
                        aql,
                        class,
                        compile_time,
                        execution_time,
                        row_count,
                        plan.explain.clone(),
                        p.clone(),
                        tr.spans(),
                    );
                }
            }
        }
        Ok(QueryResult {
            query_id,
            rows,
            streamed_rows,
            stats,
            plan,
            compile_time,
            execution_time,
            // Preserve the documented contract: a profile is returned only
            // when asked for, even though telemetry collects one anyway.
            profile: if options.profile { profile } else { None },
            spans: trace.as_ref().map(|t| t.spans()).unwrap_or_default(),
        })
    }

    /// Compile only: the optimized logical plan explanation (plus rewrite
    /// log), without executing.
    pub fn explain(&self, aql: &str) -> Result<PlanInfo, CoreError> {
        self.explain_with_options(aql, &QueryOptions::default())
    }

    /// Compile only, with per-query optimizer overrides.
    pub fn explain_with_options(
        &self,
        aql: &str,
        options: &QueryOptions,
    ) -> Result<PlanInfo, CoreError> {
        let query = parse_query(aql)?;
        let vargen = VarGen::new();
        let translation = translate(&query, &vargen, &Bindings::default())?;
        let mut opt_config = options
            .optimizer
            .clone()
            .unwrap_or_else(|| self.config.optimizer.clone());
        if let Some(f) = &translation.settings.simfunction {
            opt_config.simfunction =
                parse_measure(f, translation.settings.simthreshold.as_deref())?;
        }
        let catalog = self.catalog.read().clone();
        let (optimized, rewrites) = optimize(
            &translation.plan,
            &catalog,
            &self.ctx.registry,
            &opt_config,
            &vargen,
        );
        let job = generate_job(&optimized, opt_config.enable_subplan_reuse)
            .map_err(CoreError::Translate)?;
        Ok(PlanInfo {
            logical_ops_before: operator_counts(&translation.plan),
            logical_ops_after: operator_counts(&optimized),
            rewrites,
            explain: explain_plan(&optimized),
            physical_ops: job.operator_counts(),
        })
    }

    /// Direct access for tests and the experiment harness.
    pub fn cluster(&self) -> &ClusterContext {
        &self.ctx
    }

    /// A snapshot of the catalog (datasets and their indexes).
    pub fn catalog(&self) -> SimpleCatalog {
        self.catalog.read().clone()
    }
}

/// Parse `set simfunction` / `set simthreshold` values.
fn parse_measure(name: &str, threshold: Option<&str>) -> Result<SimilarityMeasure, CoreError> {
    let t = threshold.map(|s| s.trim_end_matches('f').to_string());
    match name.to_ascii_lowercase().as_str() {
        "jaccard" => {
            let delta = t
                .as_deref()
                .unwrap_or("0.5")
                .parse::<f64>()
                .map_err(|e| CoreError::Parse(format!("bad simthreshold: {e}")))?;
            Ok(SimilarityMeasure::Jaccard { delta })
        }
        "edit-distance" => {
            let k = t
                .as_deref()
                .unwrap_or("2")
                .parse::<f64>()
                .map_err(|e| CoreError::Parse(format!("bad simthreshold: {e}")))? as u32;
            Ok(SimilarityMeasure::EditDistance { k })
        }
        other => Err(CoreError::Parse(format!("unknown simfunction '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::record;

    fn small_instance() -> Instance {
        let db = Instance::new(InstanceConfig::tiny(2));
        db.create_dataset("ARevs", "id").unwrap();
        let rows = [
            (1i64, "james", "this movie touched my heart"),
            (2, "mary", "the best car charger i ever bought"),
            (3, "mario", "different than my usual but good"),
            (4, "jamie", "great product fantastic gift"),
            (5, "maria", "better ever than i expected"),
            (6, "bob", "great product fantastic gift idea"),
        ];
        for (id, name, summary) in rows {
            db.insert(
                "ARevs",
                record! {"id" => id, "reviewerName" => name, "summary" => summary},
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn scan_query_returns_all() {
        let db = small_instance();
        let r = db.query("for $t in dataset ARevs return $t.id").unwrap();
        assert_eq!(r.ids(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn jaccard_selection_no_index() {
        let db = small_instance();
        let r = db
            .query(
                r#"
            for $t in dataset ARevs
            where similarity-jaccard(word-tokens($t.summary),
                                     word-tokens('great product fantastic gift')) >= 0.5
            return $t.id
        "#,
            )
            .unwrap();
        assert_eq!(r.ids(), vec![4, 6]);
        assert!(!r.plan.used_rule("introduce-index-for-selection"));
    }

    #[test]
    fn jaccard_selection_with_index_same_answer() {
        let db = small_instance();
        db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        let r = db
            .query(
                r#"
            for $t in dataset ARevs
            where similarity-jaccard(word-tokens($t.summary),
                                     word-tokens('great product fantastic gift')) >= 0.5
            return $t.id
        "#,
            )
            .unwrap();
        assert_eq!(r.ids(), vec![4, 6]);
        assert!(r.plan.used_rule("introduce-index-for-selection"));
        assert!(r.index_candidates() >= 2);
    }

    #[test]
    fn edit_distance_selection_with_index() {
        let db = small_instance();
        db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
            .unwrap();
        let r = db
            .query(
                r#"
            for $t in dataset ARevs
            where edit-distance($t.reviewerName, 'marla') <= 1
            return $t.id
        "#,
            )
            .unwrap();
        assert_eq!(r.ids(), vec![5]); // maria
        assert!(r.plan.used_rule("introduce-index-for-selection"));
    }

    #[test]
    fn edit_distance_corner_case_falls_back_to_scan() {
        let db = small_instance();
        db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
            .unwrap();
        // "mary" has 3 distinct grams; k=2 → T = 3-4 < 0: corner case.
        let r = db
            .query(
                r#"
            for $t in dataset ARevs
            where edit-distance($t.reviewerName, 'mary') <= 2
            return $t.id
        "#,
            )
            .unwrap();
        assert!(!r.plan.used_rule("introduce-index-for-selection"));
        // mary(0), maria(2), mario(2) are within distance 2.
        assert_eq!(r.ids(), vec![2, 3, 5]);
    }

    #[test]
    fn tilde_operator_uses_set_statements() {
        let db = small_instance();
        let r = db
            .query(
                r#"
            set simfunction 'jaccard';
            set simthreshold '0.5';
            for $t in dataset ARevs
            where word-tokens($t.summary) ~= word-tokens('great product fantastic gift')
            return $t.id
        "#,
            )
            .unwrap();
        assert_eq!(r.ids(), vec![4, 6]);
    }

    #[test]
    fn exact_match_btree_baseline() {
        let db = small_instance();
        db.create_index("ARevs", "bt", "reviewerName", IndexKind::BTree)
            .unwrap();
        let r = db
            .query("for $t in dataset ARevs where $t.reviewerName = 'maria' return $t.id")
            .unwrap();
        assert_eq!(r.ids(), vec![5]);
        assert!(r.plan.used_rule("introduce-index-for-selection"));
    }

    #[test]
    fn count_query() {
        let db = small_instance();
        let r = db
            .query("count( for $t in dataset ARevs where $t.id <= 3 return $t.id );")
            .unwrap();
        assert_eq!(r.count(), Some(3));
    }

    #[test]
    fn jaccard_join_three_stage() {
        let db = small_instance();
        let r = db
            .query(
                r#"
            for $t1 in dataset ARevs
            for $t2 in dataset ARevs
            where similarity-jaccard(word-tokens($t1.summary),
                                     word-tokens($t2.summary)) >= 0.5
              and $t1.id < $t2.id
            return { 'a': $t1.id, 'b': $t2.id }
        "#,
            )
            .unwrap();
        assert!(r.plan.used_rule("three-stage-similarity-join"), "{:?}", r.plan.rewrites);
        // Only the (4, 6) pair is >= 0.5 similar.
        assert_eq!(r.rows.len(), 1);
        let pair = &r.rows[0];
        assert_eq!(pair.field("a"), &Value::Int64(4));
        assert_eq!(pair.field("b"), &Value::Int64(6));
    }

    #[test]
    fn jaccard_join_index_nested_loop() {
        let db = small_instance();
        db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        let r = db
            .query(
                r#"
            for $t1 in dataset ARevs
            for $t2 in dataset ARevs
            where similarity-jaccard(word-tokens($t1.summary),
                                     word-tokens($t2.summary)) >= 0.5
              and $t1.id < $t2.id
            return { 'a': $t1.id, 'b': $t2.id }
        "#,
            )
            .unwrap();
        assert!(
            r.plan.used_rule("introduce-index-nested-loop-join"),
            "{:?}",
            r.plan.rewrites
        );
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn edit_distance_join_with_corner_union() {
        let db = small_instance();
        db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
            .unwrap();
        let r = db
            .query(
                r#"
            for $t1 in dataset ARevs
            for $t2 in dataset ARevs
            where edit-distance($t1.reviewerName, $t2.reviewerName) <= 1
              and $t1.id < $t2.id
            return { 'a': $t1.id, 'b': $t2.id }
        "#,
            )
            .unwrap();
        assert!(r.plan.used_rule("introduce-index-nested-loop-join"));
        // Only mario~maria is within edit distance 1 (james~jamie and
        // mary~maria are both distance 2).
        assert_eq!(r.rows.len(), 1, "{:?}", r.rows);
        assert_eq!(r.rows[0].field("a"), &Value::Int64(3));
        assert_eq!(r.rows[0].field("b"), &Value::Int64(5));

        // With k = 2 the distance-2 pairs appear; some outer keys become
        // corner cases at runtime (T = grams - 4 <= 0 for 4-5 char names)
        // and flow through the union's nested-loop path.
        let r2 = db
            .query(
                r#"
            for $t1 in dataset ARevs
            for $t2 in dataset ARevs
            where edit-distance($t1.reviewerName, $t2.reviewerName) <= 2
              and $t1.id < $t2.id
            return { 'a': $t1.id, 'b': $t2.id }
        "#,
            )
            .unwrap();
        // Pairs within distance 2: (1,4) james~jamie, (2,3) mary~mario,
        // (2,5) mary~maria, (3,5) mario~maria.
        assert_eq!(r2.rows.len(), 4, "{:?}", r2.rows);
    }

    #[test]
    fn contains_selection_via_ngram_index() {
        let db = small_instance();
        db.create_index("ARevs", "nix", "reviewerName", IndexKind::NGram(2))
            .unwrap();
        let r = db
            .query("for $t in dataset ARevs where contains($t.reviewerName, 'ari') return $t.id")
            .unwrap();
        assert_eq!(r.ids(), vec![3, 5]); // mario, maria
        assert!(r.plan.used_rule("introduce-index-for-selection"), "{:?}", r.plan.rewrites);
        // Short patterns compile to a scan but still answer correctly.
        let short = db
            .query("for $t in dataset ARevs where contains($t.reviewerName, 'a') return $t.id")
            .unwrap();
        assert!(!short.plan.used_rule("introduce-index-for-selection"));
        assert_eq!(short.ids(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn drop_index_reverts_to_scan() {
        let db = small_instance();
        db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        let q = r#"
            for $t in dataset ARevs
            where similarity-jaccard(word-tokens($t.summary),
                                     word-tokens('great product fantastic gift')) >= 0.5
            return $t.id
        "#;
        let with = db.query(q).unwrap();
        assert!(with.plan.used_rule("introduce-index-for-selection"));
        db.drop_index("ARevs", "smix").unwrap();
        let without = db.query(q).unwrap();
        assert!(!without.plan.used_rule("introduce-index-for-selection"));
        assert_eq!(with.ids(), without.ids());
        assert!(db.drop_index("ARevs", "smix").is_err());
    }

    #[test]
    fn udf_in_query() {
        let mut db = Instance::new(InstanceConfig::tiny(2));
        db.register_udf("similarity-firstchar", |args| {
            let a = args[0].as_str().unwrap_or_default().chars().next();
            let b = args[1].as_str().unwrap_or_default().chars().next();
            Ok(Value::double(if a == b && a.is_some() { 1.0 } else { 0.0 }))
        });
        db.create_dataset("D", "id").unwrap();
        db.insert("D", record! {"id" => 1i64, "name" => "ada"}).unwrap();
        db.insert("D", record! {"id" => 2i64, "name" => "alan"}).unwrap();
        db.insert("D", record! {"id" => 3i64, "name" => "bob"}).unwrap();
        let r = db
            .query(
                r#"
            for $t in dataset D
            where similarity-firstchar($t.name, 'apple') >= 1.0
            return $t.id
        "#,
            )
            .unwrap();
        assert_eq!(r.ids(), vec![1, 2]);
    }

    #[test]
    fn errors_surface() {
        let db = small_instance();
        assert!(matches!(db.query("for $t in"), Err(CoreError::Parse(_))));
        assert!(matches!(
            db.query("for $t in dataset Nope return $t"),
            Err(CoreError::Execution(_))
        ));
        assert!(db.create_dataset("ARevs", "id").is_err());
        assert!(db.insert("ARevs", record! {"noid" => 1i64}).is_err());
    }

    #[test]
    fn index_sizes_and_counts() {
        let db = small_instance();
        db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        db.flush("ARevs").unwrap();
        assert_eq!(db.count_records("ARevs").unwrap(), 6);
        let sizes = db.index_sizes("ARevs").unwrap();
        assert!(sizes.iter().any(|(n, b)| n == "<primary>" && *b > 0));
        assert!(sizes.iter().any(|(n, b)| n == "smix" && *b > 0));
    }

    #[test]
    fn delete_removes_from_all_plans() {
        let db = small_instance();
        db.create_index("ARevs", "smix", "summary", IndexKind::Keyword)
            .unwrap();
        db.delete("ARevs", &Value::Int64(4)).unwrap();
        let q = r#"
            for $t in dataset ARevs
            where similarity-jaccard(word-tokens($t.summary),
                                     word-tokens('great product fantastic gift')) >= 0.5
            return $t.id
        "#;
        let with = db.query(q).unwrap();
        assert_eq!(with.ids(), vec![6], "deleted record must vanish from index plan");
        let scan = db
            .query_with(
                q,
                &crate::result::QueryOptions {
                    optimizer: Some(asterix_algebricks::OptimizerConfig {
                        enable_index_select: false,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(scan.ids(), vec![6]);
    }

    #[test]
    fn json_loading() {
        let db = Instance::new(InstanceConfig::tiny(2));
        db.create_dataset("J", "id").unwrap();
        let n = db
            .load_json_lines("J", "{\"id\": 1, \"t\": \"x\"}\n{\"id\": 2, \"t\": \"y\"}\n")
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.count_records("J").unwrap(), 2);
    }
}
