//! The running-query registry: live introspection of in-flight queries.
//!
//! Every query gets a monotonic `query_id` when it enters
//! [`crate::Instance::query_with`]; the registry tracks its text, class,
//! lifecycle state, start time, cancel token, and — once execution
//! starts — a shared [`JobProgress`] whose relaxed-atomic counters the
//! executor updates live. [`QueryRegistry::running`] samples all of it
//! without pausing execution, and [`QueryRegistry::cancel`] trips the
//! query's own cancel token (which covers both the admission queue wait
//! and execution, per PR 1's cooperative cancellation).

use crate::telemetry::QueryClass;
use asterix_hyracks::{CancelToken, JobProgress, OpProgressSnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lifecycle state of a registered query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryState {
    /// Waiting in the admission queue (or about to enter it).
    Queued,
    /// Admitted and executing.
    Running,
    /// [`QueryRegistry::cancel`] was called; the query is unwinding
    /// cooperatively and will leave the registry when it returns.
    Cancelling,
}

impl QueryState {
    /// Lowercase wire name (`"queued"` / `"running"` / `"cancelling"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            QueryState::Queued => "queued",
            QueryState::Running => "running",
            QueryState::Cancelling => "cancelling",
        }
    }
}

/// One row of [`QueryRegistry::running`]: a point-in-time view of an
/// in-flight query.
#[derive(Clone, Debug)]
pub struct RunningQuery {
    /// The query's monotonic id (assigned at admission, never reused).
    pub query_id: u64,
    /// The AQL text (or a builder-query placeholder).
    pub query: String,
    /// Workload class from plan classification.
    pub class: QueryClass,
    /// Lifecycle state at sample time.
    pub state: QueryState,
    /// Time since the query entered the registry (queue wait included).
    pub elapsed: Duration,
    /// Live per-operator progress; empty until execution starts.
    pub operators: Vec<OpProgressSnapshot>,
}

impl RunningQuery {
    /// Total tuples pushed downstream across all operators so far.
    pub fn total_tuples_out(&self) -> u64 {
        self.operators.iter().map(|o| o.tuples_out).sum()
    }
}

struct Entry {
    query: String,
    class: QueryClass,
    state: QueryState,
    started: Instant,
    cancel: Arc<CancelToken>,
    progress: Option<Arc<JobProgress>>,
}

/// The instance-wide registry of in-flight queries. Registration and
/// state transitions are a short mutex hold; the per-operator progress
/// inside is sampled lock-free (relaxed atomics owned by the executor).
#[derive(Default)]
pub struct QueryRegistry {
    next_id: AtomicU64,
    entries: Mutex<HashMap<u64, Entry>>,
}

impl QueryRegistry {
    /// A fresh registry; ids start at 1.
    pub fn new() -> QueryRegistry {
        QueryRegistry {
            next_id: AtomicU64::new(1),
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Register a query entering the admission path, returning its
    /// freshly assigned monotonic id.
    pub fn register(&self, query: &str, class: QueryClass, cancel: Arc<CancelToken>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().insert(
            id,
            Entry {
                query: query.to_string(),
                class,
                state: QueryState::Queued,
                started: Instant::now(),
                cancel,
                progress: None,
            },
        );
        id
    }

    /// Transition a query to [`QueryState::Running`] (post-admission).
    /// A concurrent cancel wins: `Cancelling` is never overwritten.
    pub fn set_running(&self, id: u64) {
        if let Some(e) = self.entries.lock().get_mut(&id) {
            if e.state == QueryState::Queued {
                e.state = QueryState::Running;
            }
        }
    }

    /// Attach the job's live progress counters once the job spec exists.
    pub fn attach_progress(&self, id: u64, progress: Arc<JobProgress>) {
        if let Some(e) = self.entries.lock().get_mut(&id) {
            e.progress = Some(progress);
        }
    }

    /// Cancel a query by id: flips its state to `Cancelling` and trips
    /// its cancel token, which stops it whether it is still waiting in
    /// the admission queue or already executing. Returns `false` when no
    /// such query is in flight (finished queries leave the registry).
    pub fn cancel(&self, id: u64) -> bool {
        let mut entries = self.entries.lock();
        match entries.get_mut(&id) {
            Some(e) => {
                e.state = QueryState::Cancelling;
                e.cancel.cancel();
                true
            }
            None => false,
        }
    }

    /// Remove a finished query (any outcome).
    pub fn finish(&self, id: u64) {
        self.entries.lock().remove(&id);
    }

    /// Snapshot every in-flight query, sorted by id. Sampling reads the
    /// executor's relaxed atomics; nothing is paused.
    pub fn running(&self) -> Vec<RunningQuery> {
        let entries = self.entries.lock();
        let mut out: Vec<RunningQuery> = entries
            .iter()
            .map(|(id, e)| RunningQuery {
                query_id: *id,
                query: e.query.clone(),
                class: e.class,
                state: e.state,
                elapsed: e.started.elapsed(),
                operators: e
                    .progress
                    .as_ref()
                    .map(|p| p.snapshot())
                    .unwrap_or_default(),
            })
            .collect();
        out.sort_by_key(|q| q.query_id);
        out
    }

    /// Number of in-flight queries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no query is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

/// Removes a query from the registry when the query path unwinds —
/// every exit of [`crate::Instance::query_with`] (success, admission
/// rejection, execution error, panic) deregisters exactly once.
pub(crate) struct RegistryGuard<'a> {
    registry: &'a QueryRegistry,
    id: u64,
}

impl<'a> RegistryGuard<'a> {
    pub(crate) fn new(registry: &'a QueryRegistry, id: u64) -> RegistryGuard<'a> {
        RegistryGuard { registry, id }
    }
}

impl Drop for RegistryGuard<'_> {
    fn drop(&mut self) {
        self.registry.finish(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token() -> Arc<CancelToken> {
        Arc::new(CancelToken::new())
    }

    #[test]
    fn ids_are_monotonic_and_start_at_one() {
        let reg = QueryRegistry::new();
        let a = reg.register("q1", QueryClass::Scan, token());
        let b = reg.register("q2", QueryClass::Scan, token());
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn lifecycle_states_and_finish() {
        let reg = QueryRegistry::new();
        let id = reg.register("q", QueryClass::IndexSelect, token());
        assert_eq!(reg.running()[0].state, QueryState::Queued);
        reg.set_running(id);
        assert_eq!(reg.running()[0].state, QueryState::Running);
        reg.finish(id);
        assert!(reg.is_empty());
    }

    #[test]
    fn cancel_trips_the_token_and_marks_cancelling() {
        let reg = QueryRegistry::new();
        let t = token();
        let id = reg.register("q", QueryClass::Scan, t.clone());
        assert!(reg.cancel(id));
        assert!(t.check().is_err());
        assert_eq!(reg.running()[0].state, QueryState::Cancelling);
        // Cancel after set_running must not be overwritten back.
        reg.set_running(id);
        assert_eq!(reg.running()[0].state, QueryState::Cancelling);
        assert!(!reg.cancel(999), "unknown id must report false");
    }

    #[test]
    fn guard_deregisters_on_drop() {
        let reg = QueryRegistry::new();
        let id = reg.register("q", QueryClass::Scan, token());
        {
            let _g = RegistryGuard::new(&reg, id);
        }
        assert!(reg.is_empty());
    }
}
