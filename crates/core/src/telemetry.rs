//! Instance-wide telemetry: the metrics registry, slow-query log, and
//! export surfaces (`metrics_snapshot` JSON + Prometheus text).
//!
//! Where [`crate::QueryProfile`] answers "what did *this* query do", this
//! module answers "what has the *instance* been doing": latency
//! distributions per query class, per-operator execution-time histograms,
//! per-partition busy time, accumulated cache hit ratios, LSM component
//! gauges, the lifecycle event ring
//! ([`asterix_storage::LsmEventLog`]), and a bounded log of the slowest
//! queries with their full plan, profile, and trace spans.
//!
//! Design constraints, in order:
//!
//! 1. **Lock-cheap.** Every per-query record is a handful of relaxed
//!    atomic adds; the only locks are a short mutex on the per-operator
//!    histogram map (one hit per operator per query) and on the
//!    slow-query deque (only for queries that cross the threshold).
//!    The hotpath bench asserts enabled-vs-disabled overhead < 5%.
//! 2. **Fixed memory.** Histograms are 32 log-scale buckets; the event
//!    ring and slow-query log are bounded deques. Nothing grows with
//!    uptime except the operator-name map (bounded by the physical
//!    operator vocabulary).
//! 3. **Diffable output.** Snapshots emit *every* key, zero or not, so
//!    downstream tooling can subtract consecutive snapshots without
//!    guarding against missing fields.
//!
//! Histogram bucket scheme: bucket 0 holds exactly 0 µs; bucket *b* ≥ 1
//! holds durations in `[2^(b-1), 2^b)` µs. Bucket 31 is the overflow
//! bucket (≥ ~17.9 minutes). Percentiles report the bucket's inclusive
//! upper edge (`2^b − 1`), clamped to the true observed maximum, so
//! construction guarantees p50 ≤ p95 ≤ p99 ≤ max.

use crate::config::TelemetryConfig;
use crate::profile::QueryProfile;
use crate::result::PlanInfo;
use asterix_adm::Value;
use asterix_hyracks::JobStats;
use asterix_storage::{CacheStats, LsmEvent, LsmEventLog, SpanRecord, StorageProfile};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of log-scale buckets per histogram.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The workload classes latency is tracked under. Derived from the plan:
/// a query that runs through an index-nested-loop (or three-stage) join
/// plan is an `IndexJoin`; one that probes a secondary index for a
/// selection is an `IndexSelect`; everything else (full scans, including
/// non-index three-stage joins' fallback and pure aggregations) is `Scan`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryClass {
    /// Full scans, aggregations, and non-index fallback plans.
    Scan,
    /// Secondary-index-accelerated selection.
    IndexSelect,
    /// Index-nested-loop or three-stage similarity join.
    IndexJoin,
}

impl QueryClass {
    /// Every class, in slot order.
    pub const ALL: [QueryClass; 3] =
        [QueryClass::Scan, QueryClass::IndexSelect, QueryClass::IndexJoin];

    /// Stable lowercase name used in metrics keys and labels.
    pub fn name(&self) -> &'static str {
        match self {
            QueryClass::Scan => "scan",
            QueryClass::IndexSelect => "index-select",
            QueryClass::IndexJoin => "index-join",
        }
    }

    pub(crate) fn slot(&self) -> usize {
        match self {
            QueryClass::Scan => 0,
            QueryClass::IndexSelect => 1,
            QueryClass::IndexJoin => 2,
        }
    }

    /// Parse a class from its stable [`QueryClass::name`] (the form the
    /// HTTP API accepts in query options). `None` for unknown names.
    pub fn from_name(name: &str) -> Option<QueryClass> {
        QueryClass::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Infer the class from the optimized plan's fired rewrite rules.
    pub fn classify(plan: &PlanInfo) -> QueryClass {
        if plan.used_rule("introduce-index-nested-loop-join") {
            QueryClass::IndexJoin
        } else if plan.used_rule("introduce-index-for-selection") {
            QueryClass::IndexSelect
        } else {
            QueryClass::Scan
        }
    }
}

/// How a recorded query ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Ran to completion and returned rows.
    Completed,
    /// Stopped with an error (operator failure, rejection, panic, ...).
    Failed,
    /// Stopped because its deadline expired — while executing
    /// (`ExecError::Timeout`) or still queued (`AdmissionTimeout`).
    Timeout,
    /// Cancelled from outside before completing — including while still
    /// waiting in the admission queue.
    Cancelled,
}

/// Lock-free fixed-bucket log-scale histogram of microsecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Record one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// An immutable copy of the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable view of one histogram.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `b` covers `[2^(b-1), 2^b)` µs).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples, in microseconds.
    pub sum: u64,
    /// Largest sample observed, in microseconds.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (0 < q ≤ 1) in microseconds: the inclusive upper
    /// edge of the bucket containing the rank-`ceil(q·count)` sample,
    /// clamped to the observed maximum. Zero when empty. Monotone in `q`
    /// by construction.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // The overflow bucket has no finite upper edge; report the
                // observed maximum instead.
                if b == HISTOGRAM_BUCKETS - 1 {
                    return self.max;
                }
                let upper = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(&self) -> Value {
        Value::record(vec![
            ("count".into(), Value::Int64(self.count as i64)),
            ("sum".into(), Value::Int64(self.sum as i64)),
            ("mean".into(), Value::double(self.mean_us())),
            ("max".into(), Value::Int64(self.max as i64)),
            ("p50".into(), Value::Int64(self.percentile_us(0.50) as i64)),
            ("p95".into(), Value::Int64(self.percentile_us(0.95) as i64)),
            ("p99".into(), Value::Int64(self.percentile_us(0.99) as i64)),
            (
                "buckets".into(),
                Value::OrderedList(self.buckets.iter().map(|b| Value::Int64(*b as i64)).collect()),
            ),
        ])
    }
}

/// Per-class counters + latency/compile histograms.
#[derive(Debug, Default)]
struct ClassMetrics {
    completed: AtomicU64,
    failed: AtomicU64,
    timeouts: AtomicU64,
    cancelled: AtomicU64,
    rows_returned: AtomicU64,
    latency: Histogram,
    compile: Histogram,
}

/// Query-attributed storage counters accumulated across every query the
/// instance has run (the instance-lifetime integral of
/// [`StorageProfile`]).
#[derive(Debug, Default)]
struct StorageTotals {
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    inverted_elements_read: AtomicU64,
    toccurrence_candidates: AtomicU64,
    primary_lookups: AtomicU64,
    lsm_components_searched: AtomicU64,
    postings_cache_hits: AtomicU64,
    postings_cache_misses: AtomicU64,
    bitparallel_ed_calls: AtomicU64,
    gallop_probes: AtomicU64,
    scancount_fallbacks: AtomicU64,
}

impl StorageTotals {
    fn accumulate(&self, p: &StorageProfile) {
        self.cache_hits.fetch_add(p.cache_hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(p.cache_misses, Ordering::Relaxed);
        self.cache_evictions.fetch_add(p.cache_evictions, Ordering::Relaxed);
        self.inverted_elements_read
            .fetch_add(p.inverted_elements_read, Ordering::Relaxed);
        self.toccurrence_candidates
            .fetch_add(p.toccurrence_candidates, Ordering::Relaxed);
        self.primary_lookups.fetch_add(p.primary_lookups, Ordering::Relaxed);
        self.lsm_components_searched
            .fetch_add(p.lsm_components_searched, Ordering::Relaxed);
        self.postings_cache_hits
            .fetch_add(p.postings_cache_hits, Ordering::Relaxed);
        self.postings_cache_misses
            .fetch_add(p.postings_cache_misses, Ordering::Relaxed);
        self.bitparallel_ed_calls
            .fetch_add(p.bitparallel_ed_calls, Ordering::Relaxed);
        self.gallop_probes.fetch_add(p.gallop_probes, Ordering::Relaxed);
        self.scancount_fallbacks
            .fetch_add(p.scancount_fallbacks, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StorageProfile {
        StorageProfile {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            inverted_elements_read: self.inverted_elements_read.load(Ordering::Relaxed),
            toccurrence_candidates: self.toccurrence_candidates.load(Ordering::Relaxed),
            primary_lookups: self.primary_lookups.load(Ordering::Relaxed),
            lsm_components_searched: self.lsm_components_searched.load(Ordering::Relaxed),
            postings_cache_hits: self.postings_cache_hits.load(Ordering::Relaxed),
            postings_cache_misses: self.postings_cache_misses.load(Ordering::Relaxed),
            bitparallel_ed_calls: self.bitparallel_ed_calls.load(Ordering::Relaxed),
            gallop_probes: self.gallop_probes.load(Ordering::Relaxed),
            scancount_fallbacks: self.scancount_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// One captured slow query: everything needed to understand it after the
/// fact — the text, class, timings, full plan, full profile, and the
/// span tree.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Monotone capture sequence number (never reset).
    pub seq: u64,
    /// The instance-wide query id — the same key used by the
    /// running-query registry, scheduler admission records, and
    /// [`crate::QueryResult::query_id`], so a slow-log entry correlates
    /// with every other observability surface.
    pub query_id: u64,
    /// The AQL text (or a builder-query placeholder).
    pub query: String,
    /// Workload class the query was recorded under.
    pub class: QueryClass,
    /// Parse + translate + optimize + job generation time.
    pub compile_time: Duration,
    /// Parallel execution wall time.
    pub execution_time: Duration,
    /// Result rows returned.
    pub rows: u64,
    /// Pretty-printed optimized logical plan.
    pub plan: String,
    /// Full per-operator + storage profile captured for this query.
    pub profile: QueryProfile,
    /// Phase spans (admission, execute, ...) captured for this query.
    pub spans: Vec<SpanRecord>,
}

#[derive(Debug, Default)]
struct SlowLog {
    entries: std::collections::VecDeque<SlowQuery>,
    captured: u64,
}

/// The instance-wide metrics registry. One per [`crate::Instance`] (when
/// telemetry is enabled), shared with the query path via `Arc`.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    slow_query_threshold: Duration,
    slow_query_log_capacity: usize,
    classes: [ClassMetrics; 3],
    compile_errors: AtomicU64,
    /// Execution-time histogram per physical operator name, fed from
    /// per-partition wall times after each query.
    op_exec: Mutex<HashMap<&'static str, Arc<Histogram>>>,
    /// Per-partition operator instance counts and busy time.
    partition_op_runs: Vec<AtomicU64>,
    partition_busy_us: Vec<AtomicU64>,
    storage: StorageTotals,
    events: Arc<LsmEventLog>,
    slow: Mutex<SlowLog>,
}

impl Telemetry {
    /// A fresh registry for an instance with `partitions` partitions.
    pub fn new(cfg: &TelemetryConfig, partitions: usize) -> Telemetry {
        Telemetry {
            started: Instant::now(),
            slow_query_threshold: cfg.slow_query_threshold,
            slow_query_log_capacity: cfg.slow_query_log_capacity.max(1),
            classes: Default::default(),
            compile_errors: AtomicU64::new(0),
            op_exec: Mutex::new(HashMap::new()),
            partition_op_runs: (0..partitions).map(|_| AtomicU64::new(0)).collect(),
            partition_busy_us: (0..partitions).map(|_| AtomicU64::new(0)).collect(),
            storage: StorageTotals::default(),
            events: Arc::new(LsmEventLog::new(cfg.event_log_capacity)),
            slow: Mutex::new(SlowLog::default()),
        }
    }

    /// The shared LSM lifecycle event ring (installed into
    /// `StorageConfig::events` so every tree reports here).
    pub fn event_log(&self) -> &Arc<LsmEventLog> {
        &self.events
    }

    /// The instance-wide slow-query capture threshold.
    pub fn slow_query_threshold(&self) -> Duration {
        self.slow_query_threshold
    }

    /// Record one finished (or failed) query's class, outcome, timings,
    /// and row count. Latency lands in the histogram for every outcome,
    /// so histogram totals equal the number of executed queries.
    pub fn record_query(
        &self,
        class: QueryClass,
        outcome: QueryOutcome,
        compile_time: Duration,
        execution_time: Duration,
        rows: u64,
    ) {
        let m = &self.classes[class.slot()];
        match outcome {
            QueryOutcome::Completed => m.completed.fetch_add(1, Ordering::Relaxed),
            QueryOutcome::Failed => m.failed.fetch_add(1, Ordering::Relaxed),
            QueryOutcome::Timeout => m.timeouts.fetch_add(1, Ordering::Relaxed),
            QueryOutcome::Cancelled => m.cancelled.fetch_add(1, Ordering::Relaxed),
        };
        m.rows_returned.fetch_add(rows, Ordering::Relaxed);
        m.latency.record(execution_time);
        m.compile.record(compile_time);
    }

    /// A query that failed before a plan existed (parse/translate/jobgen
    /// errors have no class).
    pub fn record_compile_error(&self) {
        self.compile_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one job's executor stats into the per-operator histograms and
    /// per-partition busy counters.
    pub fn record_job(&self, stats: &JobStats) {
        for op in stats.per_op.values() {
            let hist = {
                let mut map = self.op_exec.lock();
                map.entry(op.name).or_default().clone()
            };
            for (partition, elapsed) in &op.partition_times {
                hist.record(*elapsed);
                if let Some(slot) = self.partition_op_runs.get(*partition) {
                    slot.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(slot) = self.partition_busy_us.get(*partition) {
                    slot.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Fold one query's attributed storage counters into the totals.
    pub fn record_storage(&self, profile: &StorageProfile) {
        self.storage.accumulate(profile);
    }

    /// Capture a slow query (newest `slow_query_log_capacity` retained).
    #[allow(clippy::too_many_arguments)]
    pub fn record_slow(
        &self,
        query_id: u64,
        query: &str,
        class: QueryClass,
        compile_time: Duration,
        execution_time: Duration,
        rows: u64,
        plan: String,
        profile: QueryProfile,
        spans: Vec<SpanRecord>,
    ) {
        let mut log = self.slow.lock();
        let seq = log.captured;
        log.captured += 1;
        if log.entries.len() == self.slow_query_log_capacity {
            log.entries.pop_front();
        }
        log.entries.push_back(SlowQuery {
            seq,
            query_id,
            query: query.to_string(),
            class,
            compile_time,
            execution_time,
            rows,
            plan,
            profile,
            spans,
        });
    }

    /// The retained slow-query captures, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.lock().entries.iter().cloned().collect()
    }

    /// Total slow queries ever captured (including evicted entries).
    pub fn slow_queries_captured(&self) -> u64 {
        self.slow.lock().captured
    }

    /// Assemble an immutable snapshot; `gauges` carries the live
    /// instance state (buffer cache, LSM components) sampled by the
    /// caller.
    pub fn snapshot(&self, gauges: InstanceGauges) -> MetricsSnapshot {
        let classes = QueryClass::ALL
            .iter()
            .map(|class| {
                let m = &self.classes[class.slot()];
                ClassSnapshot {
                    class: *class,
                    completed: m.completed.load(Ordering::Relaxed),
                    failed: m.failed.load(Ordering::Relaxed),
                    timeouts: m.timeouts.load(Ordering::Relaxed),
                    cancelled: m.cancelled.load(Ordering::Relaxed),
                    rows_returned: m.rows_returned.load(Ordering::Relaxed),
                    latency: m.latency.snapshot(),
                    compile: m.compile.snapshot(),
                }
            })
            .collect();
        let mut operators: Vec<(String, HistogramSnapshot)> = self
            .op_exec
            .lock()
            .iter()
            .map(|(name, h)| (name.to_string(), h.snapshot()))
            .collect();
        operators.sort_by(|a, b| a.0.cmp(&b.0));
        let partitions = self
            .partition_op_runs
            .iter()
            .zip(&self.partition_busy_us)
            .map(|(runs, busy)| PartitionSnapshot {
                op_runs: runs.load(Ordering::Relaxed),
                busy_us: busy.load(Ordering::Relaxed),
            })
            .collect();
        let slow = self.slow.lock();
        MetricsSnapshot {
            enabled: true,
            uptime_us: self.started.elapsed().as_micros() as u64,
            classes,
            compile_errors: self.compile_errors.load(Ordering::Relaxed),
            operators,
            partitions,
            storage: self.storage.snapshot(),
            gauges,
            events_capacity: self.events.capacity() as u64,
            events_recorded: self.events.total_recorded(),
            events_dropped: self.events.dropped(),
            events: self.events.snapshot(),
            slow_query_threshold_us: self.slow_query_threshold.as_micros() as u64,
            slow_captured: slow.captured,
            slow_queries: slow.entries.iter().cloned().collect(),
        }
    }
}

/// Live instance gauges sampled at snapshot time (not accumulated in the
/// registry — they are properties of current state, not of history).
#[derive(Clone, Debug, Default)]
pub struct InstanceGauges {
    /// Global buffer-cache counters across all partitions.
    pub buffer_cache: CacheStats,
    /// Instance-lifetime flushes across every LSM tree.
    pub lsm_flushes: u64,
    /// Instance-lifetime merges across every LSM tree.
    pub lsm_merges: u64,
    /// Per-dataset LSM component/size gauges.
    pub datasets: Vec<DatasetGauges>,
    /// Scheduler + admission-controller state; all-zero with
    /// `enabled == false` on instances running without a scheduler.
    pub scheduler: crate::scheduler::SchedulerSnapshot,
    /// WAL/fsync/recovery counters; all-zero with `enabled == false` on
    /// in-memory instances.
    pub durability: crate::durability::DurabilityGauges,
    /// Compiled-plan cache hits since instance start.
    pub plan_cache_hits: u64,
    /// Compiled-plan cache misses since instance start.
    pub plan_cache_misses: u64,
}

/// LSM gauges of one dataset's indexes.
#[derive(Clone, Debug)]
pub struct DatasetGauges {
    /// Dataset name.
    pub dataset: String,
    /// One gauge per index (primary first).
    pub indexes: Vec<IndexGauge>,
}

/// Disk-component count and byte size of one index, aggregated over
/// partitions.
#[derive(Clone, Debug)]
pub struct IndexGauge {
    /// Index name (`"primary"` for the primary index).
    pub name: String,
    /// Disk components across all partitions.
    pub components: u64,
    /// Total byte size across all partitions.
    pub size_bytes: u64,
}

/// Per-class counters + histograms at snapshot time.
#[derive(Clone, Debug)]
pub struct ClassSnapshot {
    /// The workload class these counters describe.
    pub class: QueryClass,
    /// Queries of this class that completed successfully.
    pub completed: u64,
    /// Queries of this class that stopped with an error.
    pub failed: u64,
    /// Queries of this class whose deadline expired (executing or queued).
    pub timeouts: u64,
    /// Queries of this class cancelled from outside.
    pub cancelled: u64,
    /// Rows returned by completed queries of this class.
    pub rows_returned: u64,
    /// End-to-end execution-time distribution (every outcome).
    pub latency: HistogramSnapshot,
    /// Compile-time distribution.
    pub compile: HistogramSnapshot,
}

impl ClassSnapshot {
    /// All queries of this class regardless of outcome. Always equals
    /// `latency.count`.
    pub fn total(&self) -> u64 {
        self.completed + self.failed + self.timeouts + self.cancelled
    }
}

/// Work done by one partition across the instance lifetime.
#[derive(Clone, Debug)]
pub struct PartitionSnapshot {
    /// Operator instances executed on this partition.
    pub op_runs: u64,
    /// Total busy time of those instances, in microseconds.
    pub busy_us: u64,
}

/// Everything `Instance::metrics_snapshot` exports, as a typed value so
/// the JSON and Prometheus renderings can never disagree about content.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// False on instances created with telemetry disabled (all zeros).
    pub enabled: bool,
    /// Microseconds since the instance started.
    pub uptime_us: u64,
    /// Per-class counters and latency/compile histograms.
    pub classes: Vec<ClassSnapshot>,
    /// Queries rejected before execution (parse/translate/schema errors).
    pub compile_errors: u64,
    /// Execution-time histogram per physical operator name.
    pub operators: Vec<(String, HistogramSnapshot)>,
    /// Per-partition lifetime work gauges.
    pub partitions: Vec<PartitionSnapshot>,
    /// Accumulated query-attributed storage counters.
    pub storage: StorageProfile,
    /// Live instance gauges sampled at snapshot time.
    pub gauges: InstanceGauges,
    /// LSM event ring capacity.
    pub events_capacity: u64,
    /// LSM events recorded since startup (including dropped ones).
    pub events_recorded: u64,
    /// LSM events dropped because the ring was full.
    pub events_dropped: u64,
    /// The retained tail of the LSM event ring.
    pub events: Vec<LsmEvent>,
    /// The slow-query capture threshold, in microseconds.
    pub slow_query_threshold_us: u64,
    /// Slow queries captured since startup (including evicted ones).
    pub slow_captured: u64,
    /// The retained slow-query log, oldest first.
    pub slow_queries: Vec<SlowQuery>,
}

fn ratio(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn span_to_json(s: &SpanRecord) -> Value {
    Value::record(vec![
        ("id".into(), Value::Int64(s.id as i64)),
        (
            "parent".into(),
            s.parent.map_or(Value::Null, |p| Value::Int64(p as i64)),
        ),
        ("name".into(), Value::from(s.name)),
        (
            "partition".into(),
            s.partition.map_or(Value::Null, |p| Value::Int64(p as i64)),
        ),
        ("start_us".into(), Value::Int64(s.start_us as i64)),
        ("duration_us".into(), Value::Int64(s.duration_us as i64)),
    ])
}

/// Render a span tree as Chrome trace-event JSON (the format Perfetto
/// and `chrome://tracing` load). Each span becomes one complete event
/// (`"ph": "X"`): `ts`/`dur` come straight from the span's
/// microsecond clock, `pid` is the query's instance-wide id (so traces
/// of different queries stay separate when concatenated), and `tid`
/// groups spans by operator partition — phase spans (query, admission,
/// execute) sit on track 0, partition `p`'s operator spans on track
/// `p + 1`. Span ids and parent links ride along in `args` for tools
/// that want the exact tree.
pub fn chrome_trace_json(query_id: u64, spans: &[SpanRecord]) -> String {
    let events = spans
        .iter()
        .map(|s| {
            let mut args = vec![("span_id".into(), Value::Int64(s.id as i64))];
            if let Some(parent) = s.parent {
                args.push(("parent".into(), Value::Int64(parent as i64)));
            }
            if let Some(p) = s.partition {
                args.push(("partition".into(), Value::Int64(p as i64)));
            }
            Value::record(vec![
                ("name".into(), Value::from(s.name)),
                ("cat".into(), Value::from("query")),
                ("ph".into(), Value::from("X")),
                ("ts".into(), Value::Int64(s.start_us as i64)),
                ("dur".into(), Value::Int64(s.duration_us as i64)),
                ("pid".into(), Value::Int64(query_id as i64)),
                (
                    "tid".into(),
                    Value::Int64(s.partition.map_or(0, |p| p as i64 + 1)),
                ),
                ("args".into(), Value::record(args)),
            ])
        })
        .collect();
    asterix_adm::json::to_string(&Value::record(vec![
        ("traceEvents".into(), Value::OrderedList(events)),
        ("displayTimeUnit".into(), Value::from("ms")),
    ]))
}

fn event_to_json(e: &LsmEvent) -> Value {
    Value::record(vec![
        ("seq".into(), Value::Int64(e.seq as i64)),
        ("at_us".into(), Value::Int64(e.at_us as i64)),
        ("tree".into(), Value::from(&*e.tree)),
        ("kind".into(), Value::from(e.kind.name())),
        ("bytes".into(), Value::Int64(e.bytes as i64)),
        ("components".into(), Value::Int64(e.components as i64)),
        ("generation".into(), Value::Int64(e.generation as i64)),
        (
            "detail".into(),
            e.detail.as_deref().map_or(Value::Null, Value::from),
        ),
    ])
}

impl MetricsSnapshot {
    /// The snapshot of a telemetry-disabled instance.
    pub fn disabled() -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: false,
            uptime_us: 0,
            classes: Vec::new(),
            compile_errors: 0,
            operators: Vec::new(),
            partitions: Vec::new(),
            storage: StorageProfile::default(),
            gauges: InstanceGauges::default(),
            events_capacity: 0,
            events_recorded: 0,
            events_dropped: 0,
            events: Vec::new(),
            slow_query_threshold_us: 0,
            slow_captured: 0,
            slow_queries: Vec::new(),
        }
    }

    /// The full snapshot as an ADM record (serialize with
    /// [`asterix_adm::json::to_string`]). Every key is always present —
    /// zero values are emitted, never dropped — so consecutive snapshots
    /// are diffable field-by-field.
    pub fn to_json(&self) -> Value {
        if !self.enabled {
            return Value::record(vec![("telemetry_enabled".into(), Value::Boolean(false))]);
        }
        let classes = Value::record(
            self.classes
                .iter()
                .map(|c| {
                    (
                        c.class.name().to_string(),
                        Value::record(vec![
                            ("completed".into(), Value::Int64(c.completed as i64)),
                            ("failed".into(), Value::Int64(c.failed as i64)),
                            ("timeouts".into(), Value::Int64(c.timeouts as i64)),
                            ("cancelled".into(), Value::Int64(c.cancelled as i64)),
                            ("rows_returned".into(), Value::Int64(c.rows_returned as i64)),
                            ("latency_us".into(), c.latency.to_json()),
                            ("compile_us".into(), c.compile.to_json()),
                        ]),
                    )
                })
                .collect(),
        );
        let operators = Value::OrderedList(
            self.operators
                .iter()
                .map(|(name, h)| {
                    Value::record(vec![
                        ("name".into(), Value::from(name.as_str())),
                        ("exec_us".into(), h.to_json()),
                    ])
                })
                .collect(),
        );
        let partitions = Value::OrderedList(
            self.partitions
                .iter()
                .enumerate()
                .map(|(p, s)| {
                    Value::record(vec![
                        ("partition".into(), Value::Int64(p as i64)),
                        ("op_runs".into(), Value::Int64(s.op_runs as i64)),
                        ("busy_us".into(), Value::Int64(s.busy_us as i64)),
                    ])
                })
                .collect(),
        );
        let storage = Value::record(vec![
            (
                "buffer_cache".into(),
                Value::record(vec![
                    ("hits".into(), Value::Int64(self.gauges.buffer_cache.hits as i64)),
                    (
                        "misses".into(),
                        Value::Int64(self.gauges.buffer_cache.misses as i64),
                    ),
                    (
                        "evictions".into(),
                        Value::Int64(self.gauges.buffer_cache.evictions as i64),
                    ),
                    (
                        "hit_ratio".into(),
                        Value::double(ratio(
                            self.gauges.buffer_cache.hits,
                            self.gauges.buffer_cache.misses,
                        )),
                    ),
                ]),
            ),
            (
                "postings_cache".into(),
                Value::record(vec![
                    (
                        "hits".into(),
                        Value::Int64(self.storage.postings_cache_hits as i64),
                    ),
                    (
                        "misses".into(),
                        Value::Int64(self.storage.postings_cache_misses as i64),
                    ),
                    (
                        "hit_ratio".into(),
                        Value::double(ratio(
                            self.storage.postings_cache_hits,
                            self.storage.postings_cache_misses,
                        )),
                    ),
                ]),
            ),
            (
                "index_funnel".into(),
                Value::record(vec![
                    (
                        "inverted_elements_read".into(),
                        Value::Int64(self.storage.inverted_elements_read as i64),
                    ),
                    (
                        "toccurrence_candidates".into(),
                        Value::Int64(self.storage.toccurrence_candidates as i64),
                    ),
                    (
                        "primary_lookups".into(),
                        Value::Int64(self.storage.primary_lookups as i64),
                    ),
                    (
                        "lsm_components_searched".into(),
                        Value::Int64(self.storage.lsm_components_searched as i64),
                    ),
                ]),
            ),
            (
                "kernels".into(),
                Value::record(vec![
                    (
                        "bitparallel_ed_calls".into(),
                        Value::Int64(self.storage.bitparallel_ed_calls as i64),
                    ),
                    (
                        "gallop_probes".into(),
                        Value::Int64(self.storage.gallop_probes as i64),
                    ),
                    (
                        "scancount_fallbacks".into(),
                        Value::Int64(self.storage.scancount_fallbacks as i64),
                    ),
                ]),
            ),
        ]);
        let plan_cache = Value::record(vec![
            (
                "hits".into(),
                Value::Int64(self.gauges.plan_cache_hits as i64),
            ),
            (
                "misses".into(),
                Value::Int64(self.gauges.plan_cache_misses as i64),
            ),
            (
                "hit_ratio".into(),
                Value::double(ratio(
                    self.gauges.plan_cache_hits,
                    self.gauges.plan_cache_misses,
                )),
            ),
        ]);
        let datasets = Value::OrderedList(
            self.gauges
                .datasets
                .iter()
                .map(|d| {
                    Value::record(vec![
                        ("dataset".into(), Value::from(d.dataset.as_str())),
                        (
                            "indexes".into(),
                            Value::OrderedList(
                                d.indexes
                                    .iter()
                                    .map(|i| {
                                        Value::record(vec![
                                            ("name".into(), Value::from(i.name.as_str())),
                                            (
                                                "components".into(),
                                                Value::Int64(i.components as i64),
                                            ),
                                            (
                                                "size_bytes".into(),
                                                Value::Int64(i.size_bytes as i64),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let lsm = Value::record(vec![
            ("flushes".into(), Value::Int64(self.gauges.lsm_flushes as i64)),
            ("merges".into(), Value::Int64(self.gauges.lsm_merges as i64)),
            ("datasets".into(), datasets),
            (
                "events_capacity".into(),
                Value::Int64(self.events_capacity as i64),
            ),
            (
                "events_recorded".into(),
                Value::Int64(self.events_recorded as i64),
            ),
            (
                "events_dropped".into(),
                Value::Int64(self.events_dropped as i64),
            ),
            (
                "event_ring".into(),
                Value::OrderedList(self.events.iter().map(event_to_json).collect()),
            ),
        ]);
        let slow = Value::record(vec![
            (
                "threshold_us".into(),
                Value::Int64(self.slow_query_threshold_us as i64),
            ),
            ("captured".into(), Value::Int64(self.slow_captured as i64)),
            (
                "entries".into(),
                Value::OrderedList(
                    self.slow_queries
                        .iter()
                        .map(|s| {
                            Value::record(vec![
                                ("seq".into(), Value::Int64(s.seq as i64)),
                                ("query_id".into(), Value::Int64(s.query_id as i64)),
                                ("query".into(), Value::from(s.query.as_str())),
                                ("class".into(), Value::from(s.class.name())),
                                (
                                    "compile_us".into(),
                                    Value::Int64(s.compile_time.as_micros() as i64),
                                ),
                                (
                                    "execution_us".into(),
                                    Value::Int64(s.execution_time.as_micros() as i64),
                                ),
                                ("rows".into(), Value::Int64(s.rows as i64)),
                                ("plan".into(), Value::from(s.plan.as_str())),
                                ("profile".into(), s.profile.to_json()),
                                (
                                    "spans".into(),
                                    Value::OrderedList(s.spans.iter().map(span_to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let sched = &self.gauges.scheduler;
        let scheduler = Value::record(vec![
            ("enabled".into(), Value::Boolean(sched.enabled)),
            ("workers".into(), Value::Int64(sched.workers as i64)),
            (
                "busy_workers".into(),
                Value::Int64(sched.busy_workers as i64),
            ),
            (
                "pool_queued_tasks".into(),
                Value::Int64(sched.pool_queued_tasks as i64),
            ),
            ("utilization".into(), Value::double(sched.utilization())),
            (
                "max_concurrent_queries".into(),
                Value::Int64(sched.max_concurrent_queries as i64),
            ),
            ("queue_depth".into(), Value::Int64(sched.queue_depth as i64)),
            (
                "memory_budget_bytes".into(),
                Value::Int64(sched.memory_budget_bytes as i64),
            ),
            ("inflight".into(), Value::Int64(sched.inflight as i64)),
            ("queued".into(), Value::Int64(sched.queued as i64)),
            ("admitted".into(), Value::Int64(sched.admitted as i64)),
            (
                "queued_total".into(),
                Value::Int64(sched.queued_total as i64),
            ),
            (
                "rejected_queue_full".into(),
                Value::Int64(sched.rejected_queue_full as i64),
            ),
            (
                "rejected_timeout".into(),
                Value::Int64(sched.rejected_timeout as i64),
            ),
            (
                "cancelled_while_queued".into(),
                Value::Int64(sched.cancelled_while_queued as i64),
            ),
            ("queue_wait_us".into(), sched.queue_wait.to_json()),
            (
                "recent_admissions".into(),
                Value::OrderedList(
                    sched
                        .recent_admissions
                        .iter()
                        .map(|a| {
                            Value::record(vec![
                                ("query_id".into(), Value::Int64(a.query_id as i64)),
                                ("class".into(), Value::from(a.class.name())),
                                (
                                    "queue_wait_us".into(),
                                    Value::Int64(a.queue_wait_us as i64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let dur = &self.gauges.durability;
        let durability = Value::record(vec![
            ("enabled".into(), Value::Boolean(dur.enabled)),
            (
                "disk_fsyncs".into(),
                Value::Int64(dur.disk_fsyncs as i64),
            ),
            ("wal_appends".into(), Value::Int64(dur.wal_appends as i64)),
            ("wal_bytes".into(), Value::Int64(dur.wal_bytes as i64)),
            (
                "wal_group_commits".into(),
                Value::Int64(dur.wal_group_commits as i64),
            ),
            ("wal_fsyncs".into(), Value::Int64(dur.wal_fsyncs as i64)),
            (
                "wal_live_bytes".into(),
                Value::Int64(dur.wal_live_bytes as i64),
            ),
            (
                "replayed_records".into(),
                Value::Int64(dur.replayed_records as i64),
            ),
            ("recovery_us".into(), Value::Int64(dur.recovery_us as i64)),
        ]);
        Value::record(vec![
            ("telemetry_enabled".into(), Value::Boolean(true)),
            ("uptime_us".into(), Value::Int64(self.uptime_us as i64)),
            ("queries_by_class".into(), classes),
            (
                "compile_errors".into(),
                Value::Int64(self.compile_errors as i64),
            ),
            ("operators".into(), operators),
            ("partitions".into(), partitions),
            ("scheduler".into(), scheduler),
            ("storage".into(), storage),
            ("plan_cache".into(), plan_cache),
            ("lsm".into(), lsm),
            ("durability".into(), durability),
            ("slow_queries".into(), slow),
        ])
    }

    /// Prometheus text exposition (counters and summary quantiles; one
    /// metric family per line group). Class, operator, dataset, and index
    /// names become labels (escaped per the exposition format). Every
    /// family carries a `# HELP` line immediately before its `# TYPE`.
    pub fn to_prometheus(&self) -> String {
        let mut w = PromWriter::default();
        w.scalar(
            "asterix_telemetry_enabled",
            "gauge",
            "Whether the telemetry registry is active (0 = all other series absent).",
            if self.enabled { 1 } else { 0 },
        );
        if !self.enabled {
            return w.out;
        }
        w.scalar(
            "asterix_uptime_us",
            "counter",
            "Microseconds since the instance started.",
            self.uptime_us,
        );
        w.family(
            "asterix_queries_total",
            "counter",
            "Queries by workload class and outcome.",
        );
        for c in &self.classes {
            let name = c.class.name();
            for (outcome, v) in [
                ("completed", c.completed),
                ("failed", c.failed),
                ("timeout", c.timeouts),
                ("cancelled", c.cancelled),
            ] {
                w.sample(format!(
                    "asterix_queries_total{{class=\"{}\",outcome=\"{outcome}\"}} {v}",
                    prom_escape_label(name)
                ));
            }
        }
        w.scalar(
            "asterix_compile_errors_total",
            "counter",
            "Queries rejected before execution (parse/translate/schema errors).",
            self.compile_errors,
        );
        w.family(
            "asterix_query_rows_returned_total",
            "counter",
            "Rows returned by completed queries, by workload class.",
        );
        for c in &self.classes {
            w.sample(format!(
                "asterix_query_rows_returned_total{{class=\"{}\"}} {}",
                prom_escape_label(c.class.name()),
                c.rows_returned
            ));
        }
        w.family(
            "asterix_query_latency_us",
            "summary",
            "End-to-end query execution time by workload class, in microseconds.",
        );
        for c in &self.classes {
            let name = prom_escape_label(c.class.name());
            for q in [0.5, 0.95, 0.99] {
                w.sample(format!(
                    "asterix_query_latency_us{{class=\"{name}\",quantile=\"{q}\"}} {}",
                    c.latency.percentile_us(q)
                ));
            }
            w.sample(format!(
                "asterix_query_latency_us_sum{{class=\"{name}\"}} {}",
                c.latency.sum
            ));
            w.sample(format!(
                "asterix_query_latency_us_count{{class=\"{name}\"}} {}",
                c.latency.count
            ));
        }
        w.family(
            "asterix_operator_exec_us",
            "summary",
            "Per-partition operator execution time by physical operator, in microseconds.",
        );
        for (op, h) in &self.operators {
            let op = prom_escape_label(op);
            w.sample(format!("asterix_operator_exec_us_sum{{op=\"{op}\"}} {}", h.sum));
            w.sample(format!(
                "asterix_operator_exec_us_count{{op=\"{op}\"}} {}",
                h.count
            ));
        }
        w.family(
            "asterix_partition_busy_us",
            "counter",
            "Total operator busy time per partition, in microseconds.",
        );
        for (p, s) in self.partitions.iter().enumerate() {
            w.sample(format!(
                "asterix_partition_busy_us{{partition=\"{p}\"}} {}",
                s.busy_us
            ));
        }
        w.scalar(
            "asterix_buffer_cache_hits_total",
            "counter",
            "Buffer-cache page hits across all partitions.",
            self.gauges.buffer_cache.hits,
        );
        w.scalar(
            "asterix_buffer_cache_misses_total",
            "counter",
            "Buffer-cache page misses across all partitions.",
            self.gauges.buffer_cache.misses,
        );
        w.scalar(
            "asterix_buffer_cache_hit_ratio",
            "gauge",
            "Buffer-cache hit ratio in [0, 1].",
            ratio(self.gauges.buffer_cache.hits, self.gauges.buffer_cache.misses),
        );
        w.scalar(
            "asterix_postings_cache_hits_total",
            "counter",
            "Inverted-index postings cache hits.",
            self.storage.postings_cache_hits,
        );
        w.scalar(
            "asterix_postings_cache_misses_total",
            "counter",
            "Inverted-index postings cache misses.",
            self.storage.postings_cache_misses,
        );
        w.scalar(
            "asterix_bitparallel_ed_calls_total",
            "counter",
            "Myers bit-parallel edit-distance kernel invocations.",
            self.storage.bitparallel_ed_calls,
        );
        w.scalar(
            "asterix_gallop_probes_total",
            "counter",
            "Galloping-search probes in T-occurrence posting intersection.",
            self.storage.gallop_probes,
        );
        w.scalar(
            "asterix_scancount_fallbacks_total",
            "counter",
            "T-occurrence merges that fell back to scan-count.",
            self.storage.scancount_fallbacks,
        );
        w.scalar(
            "asterix_plan_cache_hits_total",
            "counter",
            "Compiled-plan cache hits.",
            self.gauges.plan_cache_hits,
        );
        w.scalar(
            "asterix_plan_cache_misses_total",
            "counter",
            "Compiled-plan cache misses.",
            self.gauges.plan_cache_misses,
        );
        w.scalar(
            "asterix_lsm_flushes_total",
            "counter",
            "LSM memory-component flushes across every tree.",
            self.gauges.lsm_flushes,
        );
        w.scalar(
            "asterix_lsm_merges_total",
            "counter",
            "LSM disk-component merges across every tree.",
            self.gauges.lsm_merges,
        );
        w.family(
            "asterix_lsm_components",
            "gauge",
            "Disk components per index, summed over partitions.",
        );
        for d in &self.gauges.datasets {
            for i in &d.indexes {
                w.sample(format!(
                    "asterix_lsm_components{{dataset=\"{}\",index=\"{}\"}} {}",
                    prom_escape_label(&d.dataset),
                    prom_escape_label(&i.name),
                    i.components
                ));
            }
        }
        w.family(
            "asterix_index_size_bytes",
            "gauge",
            "On-disk byte size per index, summed over partitions.",
        );
        for d in &self.gauges.datasets {
            for i in &d.indexes {
                w.sample(format!(
                    "asterix_index_size_bytes{{dataset=\"{}\",index=\"{}\"}} {}",
                    prom_escape_label(&d.dataset),
                    prom_escape_label(&i.name),
                    i.size_bytes
                ));
            }
        }
        w.scalar(
            "asterix_lsm_events_total",
            "counter",
            "LSM lifecycle events recorded since startup (including dropped).",
            self.events_recorded,
        );
        w.scalar(
            "asterix_slow_queries_total",
            "counter",
            "Slow queries captured since startup (including evicted).",
            self.slow_captured,
        );
        w.scalar(
            "asterix_slow_query_threshold_us",
            "gauge",
            "Execution-time threshold for slow-query capture, in microseconds.",
            self.slow_query_threshold_us,
        );
        let dur = &self.gauges.durability;
        w.scalar(
            "asterix_durability_enabled",
            "gauge",
            "Whether the instance persists to a data directory.",
            if dur.enabled { 1 } else { 0 },
        );
        w.scalar(
            "asterix_disk_fsyncs_total",
            "counter",
            "Component-file fsyncs.",
            dur.disk_fsyncs,
        );
        w.scalar(
            "asterix_wal_appends_total",
            "counter",
            "Records appended to the write-ahead logs.",
            dur.wal_appends,
        );
        w.scalar(
            "asterix_wal_bytes_total",
            "counter",
            "Bytes appended to the write-ahead logs.",
            dur.wal_bytes,
        );
        w.scalar(
            "asterix_wal_group_commits_total",
            "counter",
            "WAL group-commit batches flushed.",
            dur.wal_group_commits,
        );
        w.scalar(
            "asterix_wal_fsyncs_total",
            "counter",
            "WAL segment fsyncs.",
            dur.wal_fsyncs,
        );
        w.scalar(
            "asterix_wal_live_bytes",
            "gauge",
            "Bytes currently held in live WAL segments.",
            dur.wal_live_bytes,
        );
        w.scalar(
            "asterix_recovery_replayed_records",
            "gauge",
            "WAL records replayed by the last startup recovery.",
            dur.replayed_records,
        );
        w.scalar(
            "asterix_recovery_us",
            "gauge",
            "Wall-clock time of the last startup recovery, in microseconds.",
            dur.recovery_us,
        );
        let sched = &self.gauges.scheduler;
        w.scalar(
            "asterix_scheduler_enabled",
            "gauge",
            "Whether an admission controller + worker pool is active.",
            if sched.enabled { 1 } else { 0 },
        );
        w.scalar(
            "asterix_scheduler_workers",
            "gauge",
            "Configured worker-thread count.",
            sched.workers,
        );
        w.scalar(
            "asterix_scheduler_busy_workers",
            "gauge",
            "Workers running a task right now.",
            sched.busy_workers,
        );
        w.scalar(
            "asterix_scheduler_utilization",
            "gauge",
            "Fraction of workers busy, in [0, 1].",
            sched.utilization(),
        );
        w.scalar(
            "asterix_scheduler_inflight_queries",
            "gauge",
            "Queries currently executing under an admission permit.",
            sched.inflight,
        );
        w.scalar(
            "asterix_scheduler_queued_queries",
            "gauge",
            "Queries currently waiting for admission.",
            sched.queued,
        );
        w.scalar(
            "asterix_scheduler_admitted_total",
            "counter",
            "Queries ever admitted.",
            sched.admitted,
        );
        w.scalar(
            "asterix_scheduler_queued_total",
            "counter",
            "Queries that waited in the admission queue before their outcome.",
            sched.queued_total,
        );
        w.family(
            "asterix_scheduler_rejected_total",
            "counter",
            "Admission rejections by reason.",
        );
        w.sample(format!(
            "asterix_scheduler_rejected_total{{reason=\"queue-full\"}} {}",
            sched.rejected_queue_full
        ));
        w.sample(format!(
            "asterix_scheduler_rejected_total{{reason=\"timeout\"}} {}",
            sched.rejected_timeout
        ));
        w.scalar(
            "asterix_scheduler_cancelled_while_queued_total",
            "counter",
            "Queued queries cancelled before admission.",
            sched.cancelled_while_queued,
        );
        w.family(
            "asterix_scheduler_queue_wait_us",
            "summary",
            "Admission queue wait time, in microseconds (immediate admits record 0).",
        );
        for q in [0.5, 0.95, 0.99] {
            w.sample(format!(
                "asterix_scheduler_queue_wait_us{{quantile=\"{q}\"}} {}",
                sched.queue_wait.percentile_us(q)
            ));
        }
        w.sample(format!(
            "asterix_scheduler_queue_wait_us_sum {}",
            sched.queue_wait.sum
        ));
        w.sample(format!(
            "asterix_scheduler_queue_wait_us_count {}",
            sched.queue_wait.count
        ));
        w.out
    }
}

/// Escape a Prometheus label value per the text exposition format:
/// backslash, double quote, and newline must be backslash-escaped.
pub(crate) fn prom_escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Accumulates Prometheus text exposition: `family` emits the
/// `# HELP`/`# TYPE` pair (HELP always immediately before TYPE, as
/// conformant scrapers expect), `sample` one series line, and `scalar`
/// a one-sample family in one call.
#[derive(Default)]
struct PromWriter {
    out: String,
}

impl PromWriter {
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    fn sample(&mut self, line: String) {
        self.out.push_str(&line);
        self.out.push('\n');
    }

    fn scalar(&mut self, name: &str, kind: &str, help: &str, value: impl std::fmt::Display) {
        self.family(name, kind, help);
        self.sample(format!("{name} {value}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered_and_bounded() {
        let h = Histogram::default();
        for us in [0u64, 1, 3, 7, 100, 1000, 1000, 1500, 80_000, 2_000_000] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        let (p50, p95, p99) = (
            s.percentile_us(0.50),
            s.percentile_us(0.95),
            s.percentile_us(0.99),
        );
        assert!(p50 <= p95, "{p50} > {p95}");
        assert!(p95 <= p99, "{p95} > {p99}");
        assert!(p99 <= s.max);
        assert_eq!(s.max, 2_000_000);
        // The median of that set is ~550us, which lands in [512, 1024).
        assert!((100..=1023).contains(&p50), "{p50}");
    }

    #[test]
    fn histogram_empty_and_single() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.percentile_us(0.5), 0);
        assert_eq!(s.percentile_us(0.99), 0);
        let h = Histogram::default();
        h.record_us(42);
        let s = h.snapshot();
        // One sample: every quantile reports its bucket edge clamped to
        // the observed max — i.e. exactly 42.
        assert_eq!(s.percentile_us(0.5), 42);
        assert_eq!(s.percentile_us(0.99), 42);
    }

    #[test]
    fn histogram_overflow_bucket_clamps() {
        let h = Histogram::default();
        h.record_us(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.percentile_us(0.5), u64::MAX);
    }

    #[test]
    fn classify_by_rewrites() {
        let mut plan = PlanInfo::default();
        assert_eq!(QueryClass::classify(&plan), QueryClass::Scan);
        plan.rewrites = vec![("introduce-index-for-selection", 1)];
        assert_eq!(QueryClass::classify(&plan), QueryClass::IndexSelect);
        plan.rewrites = vec![
            ("introduce-index-for-selection", 1),
            ("introduce-index-nested-loop-join", 1),
        ];
        assert_eq!(QueryClass::classify(&plan), QueryClass::IndexJoin);
    }

    #[test]
    fn snapshot_emits_every_key_when_zero() {
        let t = Telemetry::new(&TelemetryConfig::default(), 2);
        let json =
            asterix_adm::json::to_string(&t.snapshot(InstanceGauges::default()).to_json());
        for key in [
            "telemetry_enabled",
            "uptime_us",
            "queries_by_class",
            "\"scan\"",
            "\"index-select\"",
            "\"index-join\"",
            "completed",
            "failed",
            "timeouts",
            "cancelled",
            "latency_us",
            "compile_us",
            "\"p50\"",
            "\"p95\"",
            "\"p99\"",
            "buckets",
            "compile_errors",
            "operators",
            "partitions",
            "scheduler",
            "workers",
            "busy_workers",
            "utilization",
            "max_concurrent_queries",
            "queue_depth",
            "memory_budget_bytes",
            "inflight",
            "admitted",
            "queued_total",
            "rejected_queue_full",
            "rejected_timeout",
            "cancelled_while_queued",
            "queue_wait_us",
            "buffer_cache",
            "postings_cache",
            "hit_ratio",
            "index_funnel",
            "inverted_elements_read",
            "kernels",
            "bitparallel_ed_calls",
            "gallop_probes",
            "scancount_fallbacks",
            "plan_cache",
            "events_recorded",
            "event_ring",
            "durability",
            "disk_fsyncs",
            "wal_appends",
            "wal_group_commits",
            "wal_live_bytes",
            "replayed_records",
            "recovery_us",
            "slow_queries",
            "threshold_us",
        ] {
            assert!(json.contains(key), "snapshot JSON missing key {key}: {json}");
        }
    }

    #[test]
    fn prometheus_rendering_has_class_series() {
        let t = Telemetry::new(&TelemetryConfig::default(), 1);
        t.record_query(
            QueryClass::IndexSelect,
            QueryOutcome::Completed,
            Duration::from_micros(200),
            Duration::from_micros(900),
            4,
        );
        let text = t.snapshot(InstanceGauges::default()).to_prometheus();
        assert!(text.contains("asterix_telemetry_enabled 1"));
        assert!(text
            .contains("asterix_queries_total{class=\"index-select\",outcome=\"completed\"} 1"));
        assert!(text.contains("asterix_query_latency_us{class=\"index-select\",quantile=\"0.5\"}"));
        assert!(text.contains("asterix_query_latency_us_count{class=\"index-select\"} 1"));
        // Zero-valued series are still present.
        assert!(text.contains("asterix_queries_total{class=\"scan\",outcome=\"completed\"} 0"));
    }

    /// A populated exposition to run the conformance checks against:
    /// nonzero class counters, operator histograms, partitions, and a
    /// dataset gauge so every family emits at least one sample.
    fn populated_prometheus() -> String {
        let t = Telemetry::new(&TelemetryConfig::default(), 2);
        t.record_query(
            QueryClass::Scan,
            QueryOutcome::Completed,
            Duration::from_micros(100),
            Duration::from_micros(500),
            3,
        );
        let gauges = InstanceGauges {
            datasets: vec![DatasetGauges {
                dataset: "ARevs".into(),
                indexes: vec![IndexGauge {
                    name: "primary".into(),
                    components: 2,
                    size_bytes: 4096,
                }],
            }],
            ..InstanceGauges::default()
        };
        t.snapshot(gauges).to_prometheus()
    }

    #[test]
    fn prometheus_every_type_has_help_and_no_duplicate_families() {
        let text = populated_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let mut families = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                let kind = rest.split_whitespace().nth(1).unwrap();
                assert!(
                    ["counter", "gauge", "summary"].contains(&kind),
                    "unknown family kind in {line:?}"
                );
                // HELP immediately precedes its TYPE.
                let help = lines
                    .get(i.wrapping_sub(1))
                    .and_then(|l| l.strip_prefix("# HELP "))
                    .unwrap_or_else(|| panic!("no # HELP before {line:?}"));
                assert_eq!(
                    help.split_whitespace().next(),
                    Some(name),
                    "# HELP names a different family than {line:?}"
                );
                families.push(name);
            }
        }
        assert!(!families.is_empty());
        let mut deduped = families.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(
            deduped.len(),
            families.len(),
            "duplicate metric family declared: {families:?}"
        );
    }

    #[test]
    fn prometheus_every_sample_belongs_to_a_declared_family() {
        let text = populated_prometheus();
        let families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|r| r.split_whitespace().next())
            .collect();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line
                .split(['{', ' '])
                .next()
                .expect("sample line has a metric name");
            let base = name
                .strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                families.contains(&name) || families.contains(&base),
                "sample {line:?} has no # TYPE declaration"
            );
            // Sample lines end in a numeric value.
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "sample {line:?} has non-numeric value {value:?}"
            );
        }
    }

    #[test]
    fn prometheus_escapes_label_values() {
        assert_eq!(prom_escape_label("plain"), "plain");
        assert_eq!(prom_escape_label("a\"b"), "a\\\"b");
        assert_eq!(prom_escape_label("a\\b"), "a\\\\b");
        assert_eq!(prom_escape_label("a\nb"), "a\\nb");

        // A hostile dataset name survives as one well-formed line.
        let t = Telemetry::new(&TelemetryConfig::default(), 1);
        let gauges = InstanceGauges {
            datasets: vec![DatasetGauges {
                dataset: "we\"ird\\ds\n".into(),
                indexes: vec![IndexGauge {
                    name: "primary".into(),
                    components: 1,
                    size_bytes: 10,
                }],
            }],
            ..InstanceGauges::default()
        };
        let text = t.snapshot(gauges).to_prometheus();
        assert!(text.contains("dataset=\"we\\\"ird\\\\ds\\n\""), "{text}");
        // No raw newline leaked into the middle of a sample line.
        for line in text.lines() {
            assert!(!line.starts_with('#') || line.starts_with("# "));
        }
    }

    #[test]
    fn prometheus_covers_every_snapshot_section() {
        let text = populated_prometheus();
        // Each top-level key of `metrics_snapshot()` has at least one
        // corresponding family in the Prometheus rendering.
        for (json_key, family) in [
            ("telemetry_enabled", "asterix_telemetry_enabled"),
            ("uptime_us", "asterix_uptime_us"),
            ("queries_by_class", "asterix_queries_total"),
            ("compile_errors", "asterix_compile_errors_total"),
            ("operators", "asterix_operator_exec_us"),
            ("partitions", "asterix_partition_busy_us"),
            ("scheduler", "asterix_scheduler_enabled"),
            ("storage", "asterix_postings_cache_hits_total"),
            ("plan_cache", "asterix_plan_cache_hits_total"),
            ("lsm", "asterix_lsm_flushes_total"),
            ("durability", "asterix_durability_enabled"),
            ("slow_queries", "asterix_slow_queries_total"),
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "snapshot key {json_key} has no Prometheus family {family}"
            );
        }
        assert!(text.contains("# TYPE asterix_slow_query_threshold_us gauge"));
    }

    #[test]
    fn slow_log_is_bounded_and_keeps_newest() {
        let cfg = TelemetryConfig {
            slow_query_log_capacity: 2,
            ..TelemetryConfig::default()
        };
        let t = Telemetry::new(&cfg, 1);
        let profile = QueryProfile {
            query_id: 0,
            operators: Vec::new(),
            cache: Default::default(),
            index_search: Default::default(),
            kernels: Default::default(),
            lsm: Default::default(),
            rule_trace: Vec::new(),
            compile_time: Duration::ZERO,
            execution_time: Duration::ZERO,
        };
        for i in 0..5 {
            t.record_slow(
                i,
                &format!("q{i}"),
                QueryClass::Scan,
                Duration::ZERO,
                Duration::from_millis(i),
                0,
                String::new(),
                profile.clone(),
                Vec::new(),
            );
        }
        let entries = t.slow_queries();
        assert_eq!(entries.len(), 2);
        assert_eq!(t.slow_queries_captured(), 5);
        assert_eq!(entries[0].query, "q3");
        assert_eq!(entries[1].query, "q4");
        assert_eq!(entries[1].seq, 4);
        assert_eq!(entries[1].query_id, 4, "query_id must ride along");
    }
}
