//! Query results and per-query plan/runtime information.

use asterix_adm::Value;
use asterix_hyracks::JobStats;
use asterix_storage::SpanRecord;
use std::time::Duration;

/// Per-query optimizer overrides (the experiment harness flips these to
/// force specific plans, matching the paper's with/without-index runs).
#[derive(Clone, Debug, Default)]
pub struct QueryOptions {
    /// Override the instance's optimizer configuration for this query.
    pub optimizer: Option<asterix_algebricks::OptimizerConfig>,
    /// Wall-clock budget for execution; exceeding it cancels every
    /// operator partition cooperatively and the query returns
    /// [`crate::CoreError::Timeout`].
    pub timeout: Option<Duration>,
    /// Collect a [`crate::QueryProfile`] for this query: per-operator
    /// runtime stats plus storage counters (cache, index search, LSM)
    /// attributed to this query alone, even under concurrency.
    pub profile: bool,
    /// Run the executor with its hot-path optimizations (batched
    /// primary-index lookups, probe-token memoization) disabled. Results
    /// are identical either way; benchmarks flip this to measure the
    /// optimizations against a true baseline.
    pub disable_hotpath: bool,
    /// Run the executor row-at-a-time: operators exchange `Frame::Rows`
    /// only and the vectorized verify kernels are never compiled, exactly
    /// reproducing the pre-batching execution path. Results are identical
    /// either way; benchmarks flip this to measure batch execution
    /// against the row baseline.
    pub disable_batching: bool,
    /// Keep batch execution but pin the scalar similarity kernels: banded
    /// DP instead of Myers bit-parallel edit distance, rank/count
    /// T-occurrence merging instead of the full-intersection gallop.
    /// Results are identical either way; benchmarks flip this to measure
    /// the kernels against the batched-but-scalar baseline.
    pub disable_kernels: bool,
    /// Skip the instance's compiled-plan cache for this query: always
    /// parse → optimize → generate the job afresh, and do not install the
    /// result. Results are identical either way.
    pub disable_plan_cache: bool,
    /// Override the instance's slow-query threshold for this query: if
    /// its execution time meets or exceeds this, the telemetry layer
    /// captures the full plan + profile + spans into the slow-query log.
    /// `None` uses `TelemetryConfig::slow_query_threshold`.
    pub slow_query_threshold: Option<Duration>,
    /// Admit (and record) this query under the given class instead of
    /// the class inferred from its optimized plan. The HTTP endpoint
    /// exposes this so clients can pin which of the scheduler's
    /// per-class fair queues a query waits in.
    pub admission_class: Option<crate::QueryClass>,
}

/// Compile-time information about the chosen plan.
#[derive(Clone, Debug, Default)]
pub struct PlanInfo {
    /// Operator counts of the logical plan before optimization (Fig 15's
    /// left column).
    pub logical_ops_before: Vec<(&'static str, usize)>,
    /// ... and after optimization (Fig 15's right column).
    pub logical_ops_after: Vec<(&'static str, usize)>,
    /// Which rewrite rules fired, with counts.
    pub rewrites: Vec<(&'static str, usize)>,
    /// Pretty-printed optimized logical plan.
    pub explain: String,
    /// Physical operator counts in the generated job.
    pub physical_ops: Vec<(&'static str, usize)>,
}

impl PlanInfo {
    /// Total operator count of the optimized logical plan.
    pub fn total_logical_ops_after(&self) -> usize {
        self.logical_ops_after.iter().map(|(_, n)| n).sum()
    }

    /// Whether the named rewrite rule fired at least once.
    pub fn used_rule(&self, name: &str) -> bool {
        self.rewrites.iter().any(|(r, _)| *r == name)
    }
}

/// The result of one query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The instance-wide monotonic id this query ran under. The same id
    /// keys the running-query registry, the slow-query log, the
    /// scheduler's admission records, and trace exports.
    pub query_id: u64,
    /// Result values (one per row — the `return` expression's value).
    /// Empty for a streaming query ([`crate::Instance::query_streaming`]):
    /// the rows went to the caller's sink as they were produced and
    /// [`QueryResult::streamed_rows`] carries the count.
    pub rows: Vec<Value>,
    /// Rows delivered to the streaming sink. `0` for buffered queries
    /// (their count is `rows.len()`).
    pub streamed_rows: u64,
    /// Per-operator runtime statistics from the executor.
    pub stats: JobStats,
    /// Compile-time information about the chosen plan.
    pub plan: PlanInfo,
    /// Parse + translate + optimize + job generation time.
    pub compile_time: Duration,
    /// Parallel execution wall time.
    pub execution_time: Duration,
    /// Present when the query ran with [`QueryOptions::profile`] set.
    pub profile: Option<crate::QueryProfile>,
    /// The query's span tree (query → admission / execute → one span
    /// per operator partition). Empty when telemetry is disabled.
    pub spans: Vec<SpanRecord>,
}

impl QueryResult {
    /// Render this query's span tree as Chrome trace-event JSON — load
    /// the string in Perfetto (ui.perfetto.dev) or `chrome://tracing`
    /// for a flame-style timeline. The query's `query_id` becomes the
    /// trace `pid`; operator spans land on one track per partition.
    /// Empty `spans` (telemetry off) render as a valid empty trace.
    pub fn trace_chrome_json(&self) -> String {
        crate::telemetry::chrome_trace_json(self.query_id, &self.spans)
    }

    /// Candidate tuples produced by index searches (Table 6's column C).
    pub fn index_candidates(&self) -> u64 {
        self.stats.total_output_of("secondary-index-search")
    }

    /// Rows as i64s, sorted — convenient in tests against id results.
    pub fn ids(&self) -> Vec<i64> {
        let mut ids: Vec<i64> = self.rows.iter().filter_map(Value::as_i64).collect();
        ids.sort_unstable();
        ids
    }

    /// For a `count(...)` query: the single count value.
    pub fn count(&self) -> Option<i64> {
        match self.rows.as_slice() {
            [v] => v.as_i64(),
            [] => Some(0),
            _ => None,
        }
    }
}
