//! Instance configuration — the reproduction of Table 2.

use asterix_algebricks::OptimizerConfig;
use asterix_hyracks::SchedulerConfig;
use asterix_storage::StorageConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Telemetry knobs. Telemetry is **on by default** — the registry is a
/// handful of atomics per query, the event ring is bounded, and the
/// hotpath bench asserts the end-to-end overhead stays under 5% — but
/// [`TelemetryConfig::off`] turns every collection point into a no-op for
/// instances that want the absolute minimum per-query cost.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Master switch: `false` ⇒ no registry, no spans, no event log, no
    /// slow-query capture; `Instance::metrics_snapshot` reports disabled.
    pub enabled: bool,
    /// Queries whose execution time meets or exceeds this are captured
    /// (full plan + profile + spans) into the slow-query log.
    /// Overridable per query via `QueryOptions::slow_query_threshold`.
    pub slow_query_threshold: Duration,
    /// Capacity of the LSM lifecycle event ring buffer.
    pub event_log_capacity: usize,
    /// How many slow-query captures are retained (newest win).
    pub slow_query_log_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            slow_query_threshold: Duration::from_millis(250),
            event_log_capacity: 1024,
            slow_query_log_capacity: 16,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry fully disabled.
    pub fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Durable-storage knobs: where the data lives and how the write-ahead
/// log batches its group commits.
///
/// With `data_dir == None` (the default) the instance is purely
/// in-memory — the seed behaviour, and what every benchmark that measures
/// query latency wants. Setting a data directory turns on the full
/// durability stack: file-backed component pages with CRC32 checksums,
/// a per-partition WAL with group commit, manifests committed by atomic
/// rename, and crash recovery in [`crate::Instance::open`].
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Root directory for all persistent state (one `p<i>/` subdirectory
    /// per partition, each holding component files, a `wal/` directory,
    /// and a `MANIFEST`). `None` ⇒ in-memory, nothing touches disk.
    pub data_dir: Option<PathBuf>,
    /// How long the WAL group-commit flusher waits to batch appenders
    /// before forcing an fsync (latency bound of an acknowledged write).
    pub wal_commit_interval: Duration,
    /// Flush a WAL batch early once this many bytes are pending.
    pub wal_batch_bytes: usize,
    /// Roll the active WAL segment file once it exceeds this size.
    pub wal_segment_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            data_dir: None,
            wal_commit_interval: Duration::from_millis(2),
            wal_batch_bytes: 256 * 1024,
            wal_segment_bytes: 4 * 1024 * 1024,
        }
    }
}

impl DurabilityConfig {
    /// Durability on, rooted at `dir`, with default WAL batching.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: Some(dir.into()),
            ..Self::default()
        }
    }
}

/// Configuration of a simulated cluster instance.
///
/// The paper's cluster (Table 2): 8 nodes × 2 partitions = 16 partitions,
/// 128 KB pages, 2 GB buffer cache, 1.5 GB memory components. The
/// defaults here are laptop-scale but keep the same page size; every knob
/// is adjustable for the scale-out/speed-up experiments (Fig 27).
#[derive(Clone, Debug)]
pub struct InstanceConfig {
    /// Number of data + execution partitions (the paper's 16).
    pub num_partitions: usize,
    /// Storage-layer knobs (page size, caches, LSM budgets).
    pub storage: StorageConfig,
    /// Default optimizer settings (overridable per query).
    pub optimizer: OptimizerConfig,
    /// Telemetry knobs (on by default).
    pub telemetry: TelemetryConfig,
    /// Query-scheduler knobs: shared worker pool, admission control, and
    /// the per-query memory budget. On by default; set
    /// [`SchedulerConfig::disabled`] for the seed per-query-thread
    /// executor with no admission control.
    pub scheduler: SchedulerConfig,
    /// Durable-storage knobs (off by default: in-memory page store, no
    /// WAL, no recovery).
    pub durability: DurabilityConfig,
}

impl Default for InstanceConfig {
    fn default() -> Self {
        InstanceConfig {
            num_partitions: 4,
            storage: StorageConfig::default(),
            optimizer: OptimizerConfig::default(),
            telemetry: TelemetryConfig::default(),
            scheduler: SchedulerConfig::default(),
            durability: DurabilityConfig::default(),
        }
    }
}

impl InstanceConfig {
    /// Default configuration with `n` partitions.
    pub fn with_partitions(n: usize) -> Self {
        InstanceConfig {
            num_partitions: n,
            ..Self::default()
        }
    }

    /// Tiny storage budgets to exercise flush/merge paths in tests.
    pub fn tiny(n: usize) -> Self {
        InstanceConfig {
            num_partitions: n,
            storage: StorageConfig::tiny(),
            ..Self::default()
        }
    }

    /// The Table 2 rows as printable `(parameter, value)` pairs.
    pub fn table2(&self) -> Vec<(String, String)> {
        vec![
            (
                "Simulated partitions (paper: 8 nodes x 2)".into(),
                self.num_partitions.to_string(),
            ),
            (
                "Data page size".into(),
                format!("{} KB", self.storage.page_size / 1024),
            ),
            (
                "Disk buffer cache size".into(),
                format!(
                    "{} KB ({} pages)",
                    self.storage.buffer_cache_pages * self.storage.page_size / 1024,
                    self.storage.buffer_cache_pages
                ),
            ),
            (
                "Budget for in-memory components".into(),
                format!("{} KB", self.storage.mem_component_budget / 1024),
            ),
            (
                "Max disk components before merge".into(),
                self.storage.max_components.to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_page_size() {
        let c = InstanceConfig::default();
        assert_eq!(c.storage.page_size, 128 * 1024);
        assert!(c.num_partitions > 0);
    }

    #[test]
    fn table2_is_printable() {
        let rows = InstanceConfig::default().table2();
        assert!(rows.iter().any(|(k, _)| k.contains("page size")));
        assert_eq!(rows.len(), 5);
    }
}
