//! The similarity-function registry and the [`SimilarityMeasure`]
//! descriptor.
//!
//! §3.1: AsterixDB ships built-in measures (edit distance, Jaccard) and
//! lets users register their own similarity UDFs (`create function
//! similarity-cosine(x, y) { ... }`). The registry maps function names to
//! implementations over ADM [`Value`]s; the expression evaluator of the
//! runtime resolves calls through it, so a UDF is usable anywhere a
//! built-in is — including inside `~=` via `set simfunction`.

use asterix_adm::{Value, ValueKind};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::edit_distance::{edit_distance, edit_distance_check, list_edit_distance, list_edit_distance_check};
use crate::jaccard::{cosine, dice, jaccard, jaccard_check};
use crate::prefix::{prefix_len_jaccard, subset_collection};
use crate::tokenize::{gram_tokens, word_tokens};

/// A scalar function over ADM values. Errors are runtime type errors.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value, String> + Send + Sync>;

/// A similarity predicate with its threshold — what `~=` desugars to after
/// reading `set simfunction` / `set simthreshold` (§3.2).
#[derive(Clone, Debug, PartialEq)]
pub enum SimilarityMeasure {
    /// `similarity-jaccard(x, y) >= delta`
    Jaccard { delta: f64 },
    /// `edit-distance(x, y) <= k`
    EditDistance { k: u32 },
}

impl SimilarityMeasure {
    pub fn function_name(&self) -> &'static str {
        match self {
            SimilarityMeasure::Jaccard { .. } => "similarity-jaccard",
            SimilarityMeasure::EditDistance { .. } => "edit-distance",
        }
    }

    /// Verify the predicate on two values (the SELECT operator that removes
    /// false positives runs exactly this).
    pub fn verify(&self, a: &Value, b: &Value) -> bool {
        match self {
            SimilarityMeasure::Jaccard { delta } => match (a.as_list(), b.as_list()) {
                (Some(x), Some(y)) => jaccard_check(x, y, *delta).is_some(),
                _ => false,
            },
            SimilarityMeasure::EditDistance { k } => match (a, b) {
                (Value::String(x), Value::String(y)) => edit_distance_check(x, y, *k).is_some(),
                (Value::OrderedList(x), Value::OrderedList(y)) => {
                    list_edit_distance_check(x, y, *k).is_some()
                }
                _ => false,
            },
        }
    }
}

impl fmt::Display for SimilarityMeasure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimilarityMeasure::Jaccard { delta } => write!(f, "jaccard >= {delta}"),
            SimilarityMeasure::EditDistance { k } => write!(f, "edit-distance <= {k}"),
        }
    }
}

/// Function registry: the built-ins of §3 plus user-defined functions.
#[derive(Clone)]
pub struct FunctionRegistry {
    fns: HashMap<String, ScalarFn>,
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(|s| s.as_str()).collect();
        names.sort();
        f.debug_struct("FunctionRegistry").field("functions", &names).finish()
    }
}

impl FunctionRegistry {
    /// Registry pre-populated with every built-in function used by the
    /// paper's queries and plans.
    pub fn with_builtins() -> Self {
        let mut r = FunctionRegistry { fns: HashMap::new() };
        r.register("edit-distance", |args| {
            expect_arity(args, 2, "edit-distance")?;
            match (&args[0], &args[1]) {
                (Value::String(a), Value::String(b)) => {
                    Ok(Value::Int64(edit_distance(a, b) as i64))
                }
                (Value::OrderedList(a), Value::OrderedList(b)) => {
                    Ok(Value::Int64(list_edit_distance(a, b) as i64))
                }
                (a, b) if a.is_unknown() || b.is_unknown() => Ok(Value::Null),
                (a, b) => Err(type_err("edit-distance", &[a, b])),
            }
        });
        r.register("edit-distance-check", |args| {
            expect_arity(args, 3, "edit-distance-check")?;
            let k = u32_arg(&args[2], "edit-distance-check")?;
            let ok = match (&args[0], &args[1]) {
                (Value::String(a), Value::String(b)) => edit_distance_check(a, b, k).is_some(),
                (Value::OrderedList(a), Value::OrderedList(b)) => {
                    list_edit_distance_check(a, b, k).is_some()
                }
                (a, b) if a.is_unknown() || b.is_unknown() => false,
                (a, b) => return Err(type_err("edit-distance-check", &[a, b])),
            };
            Ok(Value::Boolean(ok))
        });
        r.register("similarity-jaccard", |args| {
            if args.len() == 3 {
                // Early-terminating variant with an inline threshold, as in
                // Fig 11 line 45: similarity-jaccard($l, $r, .5f).
                let delta = float_arg(&args[2], "similarity-jaccard")?;
                return match (args[0].as_list(), args[1].as_list()) {
                    (Some(a), Some(b)) => Ok(Value::double(
                        jaccard_check(a, b, delta).unwrap_or(0.0),
                    )),
                    _ => Ok(Value::double(0.0)),
                };
            }
            expect_arity(args, 2, "similarity-jaccard")?;
            match (args[0].as_list(), args[1].as_list()) {
                (Some(a), Some(b)) => Ok(Value::double(jaccard(a, b))),
                _ if args[0].is_unknown() || args[1].is_unknown() => Ok(Value::Null),
                _ => Err(type_err("similarity-jaccard", &[&args[0], &args[1]])),
            }
        });
        r.register("similarity-dice", |args| {
            expect_arity(args, 2, "similarity-dice")?;
            match (args[0].as_list(), args[1].as_list()) {
                (Some(a), Some(b)) => Ok(Value::double(dice(a, b))),
                _ => Err(type_err("similarity-dice", &[&args[0], &args[1]])),
            }
        });
        r.register("similarity-cosine", |args| {
            expect_arity(args, 2, "similarity-cosine")?;
            match (args[0].as_list(), args[1].as_list()) {
                (Some(a), Some(b)) => Ok(Value::double(cosine(a, b))),
                _ => Err(type_err("similarity-cosine", &[&args[0], &args[1]])),
            }
        });
        r.register("word-tokens", |args| {
            expect_arity(args, 1, "word-tokens")?;
            match &args[0] {
                Value::String(s) => Ok(Value::OrderedList(
                    word_tokens(s).into_iter().map(Value::String).collect(),
                )),
                Value::OrderedList(_) => Ok(args[0].clone()),
                v if v.is_unknown() => Ok(Value::OrderedList(vec![])),
                v => Err(type_err("word-tokens", &[v])),
            }
        });
        r.register("gram-tokens", |args| {
            expect_arity(args, 2, "gram-tokens")?;
            let n = usize_arg(&args[1], "gram-tokens")?;
            match &args[0] {
                Value::String(s) => Ok(Value::OrderedList(
                    gram_tokens(s, n.max(1)).into_iter().map(Value::String).collect(),
                )),
                v if v.is_unknown() => Ok(Value::OrderedList(vec![])),
                v => Err(type_err("gram-tokens", &[v])),
            }
        });
        r.register("prefix-len-jaccard", |args| {
            expect_arity(args, 2, "prefix-len-jaccard")?;
            let len = usize_arg(&args[0], "prefix-len-jaccard")?;
            let delta = float_arg(&args[1], "prefix-len-jaccard")?;
            Ok(Value::Int64(prefix_len_jaccard(len, delta) as i64))
        });
        r.register("subset-collection", |args| {
            expect_arity(args, 3, "subset-collection")?;
            let start = int_arg(&args[1], "subset-collection")?.max(0) as usize;
            let count = int_arg(&args[2], "subset-collection")?.max(0) as usize;
            match args[0].as_list() {
                Some(items) => Ok(Value::OrderedList(subset_collection(items, start, count))),
                None => Err(type_err("subset-collection", &[&args[0]])),
            }
        });
        r.register("len", |args| {
            expect_arity(args, 1, "len")?;
            match args[0].len() {
                Some(n) => Ok(Value::Int64(n as i64)),
                None if args[0].is_unknown() => Ok(Value::Null),
                None => Err(type_err("len", &[&args[0]])),
            }
        });
        r.register("edit-distance-can-use-index", |args| {
            // True iff an ngram(n) index search for this key with threshold
            // k has a positive T-occurrence bound (non-corner-case, §5.1.1).
            // Mirrors the runtime index search: T over distinct grams.
            expect_arity(args, 3, "edit-distance-can-use-index")?;
            let k = int_arg(&args[1], "edit-distance-can-use-index")?.max(0) as u32;
            let n = int_arg(&args[2], "edit-distance-can-use-index")?.max(1) as usize;
            let ok = match &args[0] {
                Value::String(s) => {
                    let grams = crate::tokenize::gram_tokens_distinct(s, n);
                    crate::toccurrence::edit_distance_t_bound(grams.len(), k, n) > 0
                }
                _ => false,
            };
            Ok(Value::Boolean(ok))
        });
        r.register("jaccard-can-use-index", |args| {
            // True iff an inverted-index search for this key has at least
            // one token to probe (non-corner case). J(∅, ∅) = 1, so
            // empty-token keys must take the scan/NL path or they would
            // silently miss empty-token records. `n` is the index gram
            // length, 0 for a keyword index — mirrors the index-side
            // tokenization exactly.
            expect_arity(args, 2, "jaccard-can-use-index")?;
            let n = int_arg(&args[1], "jaccard-can-use-index")?.max(0) as usize;
            let has_tokens = match &args[0] {
                Value::String(s) => {
                    if n == 0 {
                        !crate::tokenize::word_tokens(s).is_empty()
                    } else {
                        !crate::tokenize::gram_tokens(s, n).is_empty()
                    }
                }
                // A keyword index on a list field uses the list elements.
                Value::OrderedList(items) | Value::UnorderedList(items) => {
                    n == 0 && !items.is_empty()
                }
                _ => false,
            };
            Ok(Value::Boolean(has_tokens))
        });
        r.register("hamming-distance", |args| {
            expect_arity(args, 2, "hamming-distance")?;
            match (&args[0], &args[1]) {
                (Value::String(a), Value::String(b)) => {
                    Ok(match crate::string_extra::hamming_distance(a, b) {
                        Some(d) => Value::Int64(d as i64),
                        None => Value::Null, // undefined for unequal lengths
                    })
                }
                (a, b) if a.is_unknown() || b.is_unknown() => Ok(Value::Null),
                (a, b) => Err(type_err("hamming-distance", &[a, b])),
            }
        });
        r.register("similarity-jaro-winkler", |args| {
            expect_arity(args, 2, "similarity-jaro-winkler")?;
            match (&args[0], &args[1]) {
                (Value::String(a), Value::String(b)) => {
                    Ok(Value::double(crate::string_extra::jaro_winkler(a, b)))
                }
                (a, b) if a.is_unknown() || b.is_unknown() => Ok(Value::Null),
                (a, b) => Err(type_err("similarity-jaro-winkler", &[a, b])),
            }
        });
        r.register("similarity-overlap", |args| {
            expect_arity(args, 2, "similarity-overlap")?;
            match (args[0].as_list(), args[1].as_list()) {
                (Some(a), Some(b)) => {
                    Ok(Value::double(crate::string_extra::overlap_coefficient(a, b)))
                }
                _ => Err(type_err("similarity-overlap", &[&args[0], &args[1]])),
            }
        });
        r.register("get-item", |args| {
            expect_arity(args, 2, "get-item")?;
            let i = int_arg(&args[1], "get-item")?;
            match args[0].as_list() {
                Some(items) if i >= 0 => {
                    Ok(items.get(i as usize).cloned().unwrap_or(Value::Missing))
                }
                _ => Ok(Value::Missing),
            }
        });
        r.register("contains", |args| {
            expect_arity(args, 2, "contains")?;
            match (&args[0], &args[1]) {
                (Value::String(a), Value::String(b)) => Ok(Value::Boolean(a.contains(b.as_str()))),
                (a, b) => Err(type_err("contains", &[a, b])),
            }
        });
        r
    }

    /// Register a function (built-in or UDF). Overwrites any previous
    /// binding with the same name.
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    {
        self.fns.insert(name.to_string(), Arc::new(f));
    }

    pub fn get(&self, name: &str) -> Option<&ScalarFn> {
        self.fns.get(name)
    }

    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, String> {
        match self.fns.get(name) {
            Some(f) => f(args),
            None => Err(format!("unknown function '{name}'")),
        }
    }

    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

fn expect_arity(args: &[Value], n: usize, name: &str) -> Result<(), String> {
    if args.len() != n {
        Err(format!("{name} expects {n} arguments, got {}", args.len()))
    } else {
        Ok(())
    }
}

fn int_arg(v: &Value, name: &str) -> Result<i64, String> {
    v.as_i64()
        .or_else(|| v.as_f64().map(|x| x as i64))
        .ok_or_else(|| format!("{name}: expected integer, got {}", v.kind().name()))
}

/// Checked `u32` coercion: rejects negative and oversized thresholds
/// instead of silently wrapping (`-1 as u32` used to become 4294967295,
/// turning `edit-distance-check(a, b, -1)` into "accept everything").
fn u32_arg(v: &Value, name: &str) -> Result<u32, String> {
    let i = int_arg(v, name)?;
    u32::try_from(i).map_err(|_| format!("{name}: integer out of range: {i}"))
}

/// Checked non-negative coercion for lengths/counts; negative inputs are a
/// type error, not a wrap to a huge `usize`.
fn usize_arg(v: &Value, name: &str) -> Result<usize, String> {
    let i = int_arg(v, name)?;
    usize::try_from(i).map_err(|_| format!("{name}: expected non-negative integer, got {i}"))
}

fn float_arg(v: &Value, name: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("{name}: expected number, got {}", v.kind().name()))
}

fn type_err(name: &str, args: &[&Value]) -> String {
    let kinds: Vec<&str> = args.iter().map(|v| v.kind().name()).collect();
    format!("{name}: unsupported argument types {kinds:?}")
}

/// Helper: does `kind` describe a value a similarity measure can apply to?
pub fn measure_applicable(measure: &SimilarityMeasure, kind: ValueKind) -> bool {
    match measure {
        SimilarityMeasure::Jaccard { .. } => {
            matches!(kind, ValueKind::OrderedList | ValueKind::UnorderedList)
        }
        SimilarityMeasure::EditDistance { .. } => {
            matches!(kind, ValueKind::String | ValueKind::OrderedList)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(words: &[&str]) -> Value {
        Value::OrderedList(words.iter().map(|w| Value::from(*w)).collect())
    }

    #[test]
    fn builtin_edit_distance() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.call("edit-distance", &[Value::from("james"), Value::from("jamie")]),
            Ok(Value::Int64(2))
        );
    }

    #[test]
    fn builtin_jaccard_paper_example() {
        let r = FunctionRegistry::with_builtins();
        let a = list_of(&["Good", "Product", "Value"]);
        let b = list_of(&["Nice", "Product"]);
        assert_eq!(
            r.call("similarity-jaccard", &[a, b]),
            Ok(Value::double(0.25))
        );
    }

    #[test]
    fn builtin_word_tokens_then_jaccard() {
        let r = FunctionRegistry::with_builtins();
        let t1 = r.call("word-tokens", &[Value::from("Great Product")]).unwrap();
        let t2 = r.call("word-tokens", &[Value::from("great product!")]).unwrap();
        assert_eq!(r.call("similarity-jaccard", &[t1, t2]), Ok(Value::double(1.0)));
    }

    #[test]
    fn builtin_prefix_helpers() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.call("prefix-len-jaccard", &[Value::Int64(4), Value::double(0.5)]),
            Ok(Value::Int64(3))
        );
        let lst = Value::OrderedList(vec![1.into(), 2.into(), 3.into(), 4.into()]);
        assert_eq!(
            r.call("subset-collection", &[lst, Value::Int64(0), Value::Int64(2)]),
            Ok(Value::OrderedList(vec![1.into(), 2.into()]))
        );
    }

    #[test]
    fn unknown_function_errors() {
        let r = FunctionRegistry::with_builtins();
        assert!(r.call("no-such-fn", &[]).is_err());
    }

    #[test]
    fn udf_registration_and_override() {
        let mut r = FunctionRegistry::with_builtins();
        r.register("similarity-reverse-eq", |args| {
            let a = args[0].as_str().unwrap_or_default();
            let b: String = args[1].as_str().unwrap_or_default().chars().rev().collect();
            Ok(Value::double(if a == b { 1.0 } else { 0.0 }))
        });
        assert_eq!(
            r.call("similarity-reverse-eq", &[Value::from("abc"), Value::from("cba")]),
            Ok(Value::double(1.0))
        );
        // Overriding a built-in is allowed (user-provided logic wins).
        r.register("len", |_| Ok(Value::Int64(99)));
        assert_eq!(r.call("len", &[Value::from("x")]), Ok(Value::Int64(99)));
    }

    #[test]
    fn measure_verify() {
        let jac = SimilarityMeasure::Jaccard { delta: 0.5 };
        assert!(jac.verify(&list_of(&["a", "b"]), &list_of(&["a", "b", "c"])));
        assert!(!jac.verify(&list_of(&["a"]), &list_of(&["b"])));
        let ed = SimilarityMeasure::EditDistance { k: 1 };
        assert!(ed.verify(&Value::from("marla"), &Value::from("maria")));
        assert!(!ed.verify(&Value::from("marla"), &Value::from("bob")));
    }

    #[test]
    fn measure_verify_type_mismatch_is_false() {
        let jac = SimilarityMeasure::Jaccard { delta: 0.5 };
        assert!(!jac.verify(&Value::Int64(1), &Value::Int64(1)));
        let ed = SimilarityMeasure::EditDistance { k: 2 };
        assert!(!ed.verify(&Value::Null, &Value::from("x")));
    }

    #[test]
    fn edit_distance_null_propagates() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.call("edit-distance", &[Value::Null, Value::from("x")]),
            Ok(Value::Null)
        );
    }

    #[test]
    fn extra_string_measures() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.call("hamming-distance", &[Value::from("karolin"), Value::from("kathrin")]),
            Ok(Value::Int64(3))
        );
        assert_eq!(
            r.call("hamming-distance", &[Value::from("ab"), Value::from("abc")]),
            Ok(Value::Null)
        );
        let jw = r
            .call("similarity-jaro-winkler", &[Value::from("martha"), Value::from("marhta")])
            .unwrap();
        assert!(jw.as_f64().unwrap() > 0.9);
    }

    /// Malformed-value corpus: every argument-coercion path must return a
    /// typed error (or a defined unknown-propagation result), never wrap,
    /// truncate, or panic.
    #[test]
    fn malformed_arguments_yield_typed_errors_not_panics() {
        let r = FunctionRegistry::with_builtins();
        let s = Value::from("abc");
        // Negative thresholds used to wrap (`-1 as u32` = u32::MAX), making
        // the check accept everything; now a typed error.
        assert!(r
            .call("edit-distance-check", &[s.clone(), s.clone(), Value::Int64(-1)])
            .is_err());
        // Negative gram length used to wrap to a huge usize.
        assert!(r.call("gram-tokens", &[s.clone(), Value::Int64(-3)]).is_err());
        assert!(r
            .call("prefix-len-jaccard", &[Value::Int64(-4), Value::double(0.5)])
            .is_err());
        // Out-of-range (but positive) thresholds are also rejected.
        assert!(r
            .call("edit-distance-check", &[s.clone(), s.clone(), Value::Int64(1 << 40)])
            .is_err());
        // Non-numeric where a number is required.
        assert!(r
            .call("edit-distance-check", &[s.clone(), s.clone(), Value::from("two")])
            .is_err());
        // Type mismatches stay typed errors.
        assert!(r.call("edit-distance", &[Value::Int64(1), s.clone()]).is_err());
        assert!(r
            .call("similarity-jaccard", &[Value::Int64(1), Value::Int64(2)])
            .is_err());
        // In-range values still work after the hardening.
        assert_eq!(
            r.call("edit-distance-check", &[s.clone(), Value::from("abd"), Value::Int64(1)]),
            Ok(Value::Boolean(true))
        );
    }

    #[test]
    fn arity_errors() {
        let r = FunctionRegistry::with_builtins();
        assert!(r.call("edit-distance", &[Value::from("a")]).is_err());
        assert!(r.call("len", &[]).is_err());
    }
}
