//! Additional string-similarity measures the paper mentions alongside
//! edit distance (§2.1: "There are other string-similarity functions such
//! as Hamming distance and Jaro-winkler distance"). They are available as
//! built-in functions and usable anywhere a UDF is (§3.1).

/// Hamming distance: number of positions at which two equal-length
/// strings differ; `None` when lengths differ (Hamming is undefined
/// there).
pub fn hamming_distance(a: &str, b: &str) -> Option<u32> {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    if ac.len() != bc.len() {
        return None;
    }
    Some(ac.iter().zip(&bc).filter(|(x, y)| x != y).count() as u32)
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    if ac.is_empty() && bc.is_empty() {
        return 1.0;
    }
    if ac.is_empty() || bc.is_empty() {
        return 0.0;
    }
    let window = (ac.len().max(bc.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; bc.len()];
    let mut a_used = vec![false; ac.len()];
    let mut matches = 0usize;
    for (i, ca) in ac.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(bc.len());
        for (j, used) in b_used.iter_mut().enumerate().take(hi).skip(lo) {
            if !*used && bc[j] == *ca {
                *used = true;
                a_used[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Standard transposition count: walk both matched sequences in their
    // own string order; t = (#positions where they differ) / 2.
    let a_seq: Vec<char> = ac
        .iter()
        .zip(&a_used)
        .filter_map(|(c, used)| used.then_some(*c))
        .collect();
    let b_seq: Vec<char> = bc
        .iter()
        .zip(&b_used)
        .filter_map(|(c, used)| used.then_some(*c))
        .collect();
    let half_transpositions = a_seq.iter().zip(&b_seq).filter(|(x, y)| x != y).count();
    let m = matches as f64;
    let t = half_transpositions as f64 / 2.0;
    (m / ac.len() as f64 + m / bc.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by shared prefix length (up to
/// 4 characters) with scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

/// Overlap coefficient on sets: `|r ∩ s| / min(|r|, |s|)`.
pub fn overlap_coefficient<T: Ord + Clone>(r: &[T], s: &[T]) -> f64 {
    let mut a = r.to_vec();
    a.sort();
    a.dedup();
    let mut b = s.to_vec();
    b.sort();
    b.dedup();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming_distance("karolin", "kathrin"), Some(3));
        assert_eq!(hamming_distance("abc", "abc"), Some(0));
        assert_eq!(hamming_distance("abc", "ab"), None);
        assert_eq!(hamming_distance("", ""), Some(0));
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.9444).abs() < 1e-3);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_prefix() {
        let jw = jaro_winkler("martha", "marhta");
        let j = jaro("martha", "marhta");
        assert!(jw > j, "{jw} vs {j}");
        assert!((jw - 0.9611).abs() < 1e-2);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn overlap_basics() {
        assert_eq!(overlap_coefficient(&[1, 2, 3], &[2, 3]), 1.0);
        assert_eq!(overlap_coefficient(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(overlap_coefficient::<i32>(&[], &[]), 1.0);
    }

    proptest! {
        #[test]
        fn prop_jaro_unit_interval(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            let j = jaro(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j), "{j}");
            let jw = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&jw), "{jw}");
        }

        #[test]
        fn prop_jaro_symmetric(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn prop_identity_is_one(a in "[a-z]{1,12}") {
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
            prop_assert_eq!(hamming_distance(&a, &a), Some(0));
        }

        #[test]
        fn prop_overlap_ge_jaccard(
            r in prop::collection::vec(0u8..15, 0..10),
            s in prop::collection::vec(0u8..15, 0..10),
        ) {
            let o = overlap_coefficient(&r, &s);
            let j = crate::jaccard(&r, &s);
            prop_assert!(o >= j - 1e-12);
        }
    }
}
