//! Tokenizers: `word-tokens()` and `gram-tokens(n)`.
//!
//! §3.1: "If a field type is string, a user can use a tokenization function
//! such as `word-tokens()` to make a list of elements from the string", and
//! §2.2 defines n-grams: the 2-grams of "james" are {ja, am, me, es}.
//!
//! Word tokens are lowercased alphanumeric runs (AsterixDB's delimited
//! tokenizer also case-folds); gram tokens are lowercased character
//! n-grams. Both return *distinct* token lists in first-occurrence order
//! via the `*_distinct` variants used by the set-semantics similarity path.

/// Split a string into lowercase word tokens (alphanumeric runs). Keeps
/// duplicates and order.
///
/// ```
/// use asterix_simfn::word_tokens;
/// assert_eq!(word_tokens("Better ever than I expected"),
///            vec!["better", "ever", "than", "i", "expected"]);
/// ```
pub fn word_tokens(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Distinct word tokens in first-occurrence order (set semantics).
pub fn word_tokens_distinct(s: &str) -> Vec<String> {
    dedup_preserving_order(word_tokens(s))
}

/// Extract the lowercase n-grams of a string. A string shorter than `n`
/// yields a single truncated gram (its full lowercased self) when non-empty,
/// so that very short strings are still indexable.
///
/// ```
/// use asterix_simfn::gram_tokens;
/// assert_eq!(gram_tokens("james", 2), vec!["ja", "am", "me", "es"]);
/// ```
pub fn gram_tokens(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "gram length must be positive");
    let chars: Vec<char> = s.chars().flat_map(|c| c.to_lowercase()).collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() < n {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// Distinct grams in first-occurrence order.
pub fn gram_tokens_distinct(s: &str, n: usize) -> Vec<String> {
    dedup_preserving_order(gram_tokens(s, n))
}

/// Number of grams a string of `len` characters produces (used by the
/// T-occurrence bound without materializing the grams).
pub fn gram_count(len: usize, n: usize) -> usize {
    if len == 0 {
        0
    } else if len < n {
        1
    } else {
        len - n + 1
    }
}

fn dedup_preserving_order(tokens: Vec<String>) -> Vec<String> {
    let mut seen = std::collections::HashSet::with_capacity(tokens.len());
    tokens.into_iter().filter(|t| seen.insert(t.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn words_basic() {
        assert_eq!(word_tokens("Great Product - Fantastic Gift"),
                   vec!["great", "product", "fantastic", "gift"]);
        assert_eq!(word_tokens(""), Vec::<String>::new());
        assert_eq!(word_tokens("   "), Vec::<String>::new());
        assert_eq!(word_tokens("a,b;c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn words_distinct() {
        assert_eq!(word_tokens_distinct("the cat the hat"), vec!["the", "cat", "hat"]);
    }

    #[test]
    fn grams_paper_example() {
        assert_eq!(gram_tokens("james", 2), vec!["ja", "am", "me", "es"]);
        assert_eq!(gram_tokens("marla", 2), vec!["ma", "ar", "rl", "la"]);
    }

    #[test]
    fn grams_short_strings() {
        assert_eq!(gram_tokens("a", 2), vec!["a"]);
        assert_eq!(gram_tokens("", 2), Vec::<String>::new());
        assert_eq!(gram_tokens("ab", 2), vec!["ab"]);
    }

    #[test]
    fn grams_case_folded() {
        assert_eq!(gram_tokens("AbC", 2), vec!["ab", "bc"]);
    }

    #[test]
    fn gram_count_matches() {
        for s in ["", "a", "ab", "abc", "james", "abcdefgh"] {
            assert_eq!(gram_count(s.chars().count(), 2), gram_tokens(s, 2).len(), "for {s:?}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_gram_panics() {
        gram_tokens("abc", 0);
    }

    proptest! {
        #[test]
        fn prop_word_tokens_lowercase_alnum(s in ".{0,40}") {
            for t in word_tokens(&s) {
                prop_assert!(!t.is_empty());
                prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
                // Lowercasing is idempotent on tokens (some uppercase
                // letters like 𝔄 have no lowercase mapping and survive).
                prop_assert_eq!(t.clone(), t.to_lowercase());
            }
        }

        #[test]
        fn prop_gram_lengths(s in "[a-zA-Z]{0,30}", n in 1usize..5) {
            let grams = gram_tokens(&s, n);
            let len = s.chars().count();
            prop_assert_eq!(grams.len(), gram_count(len, n));
            if len >= n {
                for g in grams {
                    prop_assert_eq!(g.chars().count(), n);
                }
            }
        }

        #[test]
        fn prop_distinct_is_subset(s in ".{0,40}") {
            let all = word_tokens(&s);
            let distinct = word_tokens_distinct(&s);
            prop_assert!(distinct.len() <= all.len());
            let set: std::collections::HashSet<_> = all.into_iter().collect();
            prop_assert_eq!(set.len(), distinct.len());
        }
    }
}
