//! The T-occurrence problem (§2.2): given the inverted lists of a query's
//! tokens, find the record ids appearing on at least `T` lists.
//!
//! The lower bounds:
//!
//! * edit distance `k` with gram length `n`: a string within distance `k` of
//!   the query must share `T = |G(q)| - k·n` grams ([17] in the paper). If
//!   `T <= 0` the query is a *corner case* and the whole dataset must be
//!   scanned (§2.2, §5.1.1).
//! * Jaccard `δ`: a record similar to a query with `|q|` distinct tokens
//!   must share `T = ceil(δ·|q|)` tokens (since `|r ∪ q| >= |q|`). Jaccard
//!   has no corner case for `δ > 0` (§5.1.1).
//!
//! Three merge algorithms are provided; all are exercised by the `tocc`
//! ablation bench:
//!
//! * [`t_occurrence_scan_count`] — ScanCount: one hash-count pass over all
//!   lists,
//! * [`t_occurrence_heap`] — a k-way heap merge over sorted lists that
//!   skips allocation of the count table and exploits sortedness,
//! * [`t_occurrence_divide_skip`] — DivideSkip ([20]): skips the longest
//!   lists during the merge and verifies survivors by binary search.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

/// `T = |G(q)| - k·n` for edit-distance queries; may be zero or negative
/// (the corner case).
pub fn edit_distance_t_bound(num_grams: usize, k: u32, n: usize) -> i64 {
    num_grams as i64 - (k as i64) * (n as i64)
}

/// `T = ceil(δ·|q|)` for Jaccard queries, at least 1 for `δ > 0` and a
/// non-empty token set.
///
/// An *empty* query token set is a corner case (returns 0): `J(∅, ∅) = 1`,
/// so records with empty token sets still match any `δ <= 1`, yet there are
/// no query tokens to probe the inverted index with — the plan must fall
/// back to a scan, exactly like the edit-distance `T <= 0` corner case.
pub fn jaccard_t_bound(num_tokens: usize, delta: f64) -> i64 {
    if delta <= 0.0 || num_tokens == 0 {
        return 0;
    }
    ((delta * num_tokens as f64 - 1e-9).ceil() as i64).max(1)
}

/// ScanCount: count occurrences across all lists with a hash map, then
/// keep ids reaching `t`. Lists need not be sorted. `t` must be >= 1
/// (corner cases are handled by the plan, not here).
///
/// Candidates are returned in *first-encounter order* over the inverted
/// lists — the arrival order a real list merge produces, and the reason
/// the paper's index plans sort primary keys before the primary-index
/// search (§4.1.1). Use [`t_occurrence_heap`] when sorted output is
/// needed directly.
pub fn t_occurrence_scan_count<I: Eq + Hash + Clone>(lists: &[&[I]], t: usize) -> Vec<I> {
    assert!(t >= 1, "corner case (T <= 0) must be handled by a scan plan");
    let mut counts: HashMap<&I, usize> = HashMap::new();
    let mut order: Vec<&I> = Vec::new();
    for list in lists {
        for id in *list {
            let c = counts.entry(id).or_insert(0);
            if *c == 0 {
                order.push(id);
            }
            *c += 1;
        }
    }
    order
        .into_iter()
        .filter(|id| counts[id] >= t)
        .cloned()
        .collect()
}

/// Reusable count table for [`t_occurrence_ranks`]: one dense `u32` slot
/// per rank, grown to the universe size on first use and reset by walking
/// only the touched slots, so steady-state probes allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct RankCountScratch {
    counts: Vec<u32>,
}

impl RankCountScratch {
    /// Empty scratch; the count table grows to the universe on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// ScanCount over dense-rank postings — the vectorized form of
/// [`t_occurrence_scan_count`] used once record ids have been interned to
/// ranks `0..universe`: counting is a dense-array increment instead of a
/// hash-map probe, and candidates come back in the same first-encounter
/// order as the scalar kernel. Every rank in `lists` must be `< universe`.
pub fn t_occurrence_ranks(
    lists: &[&[u32]],
    t: usize,
    universe: usize,
    scratch: &mut RankCountScratch,
) -> Vec<u32> {
    assert!(t >= 1, "corner case (T <= 0) must be handled by a scan plan");
    if scratch.counts.len() < universe {
        scratch.counts.resize(universe, 0);
    }
    let counts = &mut scratch.counts;
    let mut order: Vec<u32> = Vec::new();
    for list in lists {
        for &r in *list {
            let c = &mut counts[r as usize];
            if *c == 0 {
                order.push(r);
            }
            *c += 1;
        }
    }
    let mut out = Vec::new();
    for &r in &order {
        if counts[r as usize] as usize >= t {
            out.push(r);
        }
        counts[r as usize] = 0; // reset only the touched slots
    }
    out
}

/// Heap-based merge for *sorted* inverted lists: pops equal ids together and
/// emits those reaching `t`. `O(total · log(#lists))`, no count table.
pub fn t_occurrence_heap<I: Ord + Clone>(lists: &[&[I]], t: usize) -> Vec<I> {
    assert!(t >= 1, "corner case (T <= 0) must be handled by a scan plan");
    debug_assert!(lists
        .iter()
        .all(|l| l.windows(2).all(|w| w[0] <= w[1])));
    let mut heap: BinaryHeap<Reverse<(&I, usize, usize)>> = BinaryHeap::new();
    for (li, list) in lists.iter().enumerate() {
        if let Some(first) = list.first() {
            heap.push(Reverse((first, li, 0)));
        }
    }
    let mut out = Vec::new();
    while let Some(Reverse((id, li, pos))) = heap.pop() {
        let mut count = 1;
        advance(&mut heap, lists, li, pos);
        while let Some(Reverse((id2, li2, pos2))) = heap.peek().copied() {
            if id2 != id {
                break;
            }
            heap.pop();
            count += 1;
            advance(&mut heap, lists, li2, pos2);
        }
        if count >= t {
            out.push(id.clone());
        }
    }
    out
}

fn advance<'a, I: Ord>(
    heap: &mut BinaryHeap<Reverse<(&'a I, usize, usize)>>,
    lists: &[&'a [I]],
    li: usize,
    pos: usize,
) {
    if let Some(next) = lists[li].get(pos + 1) {
        heap.push(Reverse((next, li, pos + 1)));
    }
}

/// Work counters reported by [`t_occurrence_divide_skip_with_stats`]:
/// how many lists were set aside as "long" and how many binary-search
/// probes into them the merge performed. The probe count is the metric the
/// DivideSkip heuristic minimises on skewed data.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DivideSkipStats {
    /// Number of long lists set aside (the heuristic's `L`).
    pub long_lists: usize,
    /// Total binary-search probes issued against long lists.
    pub long_list_probes: u64,
    /// Total elements read from the short lists during the count pass.
    pub short_list_elements: u64,
}

/// The [20] heuristic's μ: the cost ratio between one binary-search probe
/// and reading one short-list element. Li, Lu & Lu treat μ as a
/// machine-dependent constant tuned per engine; this value keeps the
/// reduced threshold `t - L` comfortably above 1 on skewed lists, which is
/// where the probe savings come from.
const DIVIDE_SKIP_MU: f64 = 0.05;

/// Lists whose longest member is below this length gain nothing from
/// skipping, so the simple `L = t - 1` rule is used instead of the [20]
/// formula (which degenerates towards `L ≈ t` for small `ln M`).
const DIVIDE_SKIP_TINY_M: usize = 64;

/// Choose how many long lists DivideSkip sets aside: the paper's [20]
/// heuristic `L = T / (μ·ln(M) + 1)` where `M` is the longest list length,
/// falling back to the simple `L = t - 1` rule for tiny inputs. `L` is
/// always capped at `t - 1` (so the reduced threshold stays >= 1) and at
/// `lists - 1` (at least one short list must remain).
///
/// Public so the rank-array path ([`t_occurrence_divide_skip_ranks`]) can
/// reproduce exactly the split the scalar path would make.
pub fn divide_skip_choose_l(t: usize, num_lists: usize, max_len: usize) -> usize {
    let cap = (t - 1).min(num_lists.saturating_sub(1));
    if max_len < DIVIDE_SKIP_TINY_M {
        return cap;
    }
    let l = (t as f64 / (DIVIDE_SKIP_MU * (max_len as f64).ln() + 1.0)) as usize;
    l.min(cap)
}

/// DivideSkip (Li, Lu, Lu — "Efficient Merging and Filtering Algorithms
/// for Approximate String Searches", the paper's [20]): split the inverted
/// lists into the `L` longest lists and the rest; count-merge only the
/// short lists with the reduced threshold `t - L`, then verify each
/// survivor against the long lists with binary searches. Skipping the
/// long, frequent-token lists is what makes merges on skewed (Zipfian)
/// data fast.
///
/// `L` is chosen by the [20] heuristic `L = T / (μ·ln(M) + 1)` (`M` = the
/// longest list length, `μ` = [`DIVIDE_SKIP_MU`]); for tiny inputs
/// (`M <` [`DIVIDE_SKIP_TINY_M`]) the simple `L = t - 1` rule is used.
/// A smaller `L` keeps the reduced threshold `t - L` high, so far fewer
/// short-list survivors reach the binary-probe phase.
///
/// Requires sorted lists. `t >= 1`.
pub fn t_occurrence_divide_skip<I: Ord + Clone + Hash>(lists: &[&[I]], t: usize) -> Vec<I> {
    t_occurrence_divide_skip_with_stats(lists, t).0
}

/// [`t_occurrence_divide_skip`] plus [`DivideSkipStats`] work counters,
/// used by the probe-count regression tests and the query profile.
pub fn t_occurrence_divide_skip_with_stats<I: Ord + Clone + Hash>(
    lists: &[&[I]],
    t: usize,
) -> (Vec<I>, DivideSkipStats) {
    assert!(t >= 1, "corner case (T <= 0) must be handled by a scan plan");
    if lists.is_empty() {
        return (Vec::new(), DivideSkipStats::default());
    }
    let max_len = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let l = divide_skip_choose_l(t, lists.len(), max_len);
    divide_skip_with_l(lists, t, l)
}

/// DivideSkip with an explicit number of long lists `l` — the engine the
/// public entry points share; also exercised directly by the regression
/// test comparing the [20] heuristic against the old `L = t - 1` rule.
fn divide_skip_with_l<I: Ord + Clone + Hash>(
    lists: &[&[I]],
    t: usize,
    l: usize,
) -> (Vec<I>, DivideSkipStats) {
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_by_key(|i| std::cmp::Reverse(lists[*i].len()));
    let (long_idx, short_idx) = order.split_at(l);
    let short: Vec<&[I]> = short_idx.iter().map(|i| lists[*i]).collect();
    let reduced_t = t - l;
    let mut stats = DivideSkipStats {
        long_lists: l,
        ..DivideSkipStats::default()
    };
    // Merge the short lists with the reduced threshold, keeping counts.
    let mut counts: HashMap<&I, usize> = HashMap::new();
    let mut encounter: Vec<&I> = Vec::new();
    for list in &short {
        stats.short_list_elements += list.len() as u64;
        for id in *list {
            let c = counts.entry(id).or_insert(0);
            if *c == 0 {
                encounter.push(id);
            }
            *c += 1;
        }
    }
    let mut out = Vec::new();
    for id in encounter {
        let mut c = counts[id];
        if c < reduced_t {
            continue;
        }
        // Probe the long lists by binary search; stop as soon as even
        // matching every remaining long list cannot reach t.
        for (probed, li) in long_idx.iter().enumerate() {
            if c + (long_idx.len() - probed) < t {
                break;
            }
            stats.long_list_probes += 1;
            if lists[*li].binary_search(id).is_ok() {
                c += 1;
            }
        }
        if c >= t {
            out.push(id.clone());
        }
    }
    (out, stats)
}

/// Pairwise length ratio above which [`t_occurrence_intersect`] switches
/// from a linear merge to galloping (exponential + binary) probes into the
/// longer list. Matches the skew cutoff used by the Jaccard verify kernel:
/// below it the merge's branch-predictable linear scan wins; above it the
/// `O(small · log(large/small))` gallop does.
pub const GALLOP_SKEW_RATIO: usize = 8;

/// Reusable scratch arena for [`t_occurrence_intersect`]: two ping-pong
/// buffers for intermediate intersections (only touched with 3+ lists) and
/// a cumulative counter of galloping probes issued, which feeds the
/// `gallop_probes` query-profile counter. One instance per operator open;
/// steady-state probes allocate nothing beyond the final result.
#[derive(Debug, Clone)]
pub struct IntersectScratch<T> {
    ping: Vec<T>,
    pong: Vec<T>,
    gallop_probes: u64,
}

impl<T> Default for IntersectScratch<T> {
    fn default() -> Self {
        Self { ping: Vec::new(), pong: Vec::new(), gallop_probes: 0 }
    }
}

impl<T> IntersectScratch<T> {
    /// Empty scratch; buffers grow to the smallest-list size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total galloping searches issued through this scratch (cumulative).
    pub fn gallop_probes(&self) -> u64 {
        self.gallop_probes
    }
}

/// Index of the first element in sorted `s` that is `>= x` — galloping
/// (doubling) search: `O(log d)` where `d` is the distance to the answer,
/// so walking two lists in lockstep costs `O(small · log(large/small))`.
fn gallop_lower_bound_by<T: Ord>(s: &[T], x: &T) -> usize {
    let mut hi = 1usize;
    while hi < s.len() && s[hi - 1] < *x {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(s.len());
    lo + s[lo..hi].partition_point(|v| v < x)
}

/// Intersect sorted `a` (the smaller side) with sorted `b` into `out`,
/// picking linear merge or gallop by the length ratio.
fn intersect_pair_into<T: Ord + Clone>(a: &[T], b: &[T], out: &mut Vec<T>, probes: &mut u64) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    debug_assert!(a.len() <= b.len());
    if b.len() / a.len() >= GALLOP_SKEW_RATIO {
        // Skewed: gallop into the long list, resuming where the previous
        // probe left off (both lists are sorted, so probes only move right).
        let mut base = 0usize;
        for x in a {
            base += gallop_lower_bound_by(&b[base..], x);
            *probes += 1;
            if base >= b.len() {
                break;
            }
            if b[base] == *x {
                out.push(x.clone());
                base += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// T-occurrence in the full-intersection regime: when `T` equals the number
/// of lists, a candidate must appear on *every* list, so the count-merge
/// collapses to a plain set intersection over the sorted inverted lists.
/// This is the common shape for high Jaccard thresholds — `ceil(δ·|q|) ==
/// |q|` whenever `|q| <= 1/(1-δ)` (e.g. every probe with at most 4 tokens
/// at δ = 0.8) — and it needs no count table, no interning, and no pass
/// over any list but the smallest.
///
/// Lists must be sorted and duplicate-free. The intersection proceeds from
/// the smallest list outward (each intermediate result only shrinks) with
/// an adaptive pairwise kernel: linear merge for comparable lengths,
/// galloping probes (counted in the scratch) when the ratio reaches
/// [`GALLOP_SKEW_RATIO`], and an immediate empty return the moment an
/// intermediate intersection drains. Output is ascending — identical to
/// ScanCount's first-encounter order in this regime, because every
/// survivor appears on the first (sorted) list.
pub fn t_occurrence_intersect<T: Ord + Clone>(
    lists: &[&[T]],
    scratch: &mut IntersectScratch<T>,
) -> Vec<T> {
    debug_assert!(lists.iter().all(|l| l.windows(2).all(|w| w[0] < w[1])));
    match lists.len() {
        0 => return Vec::new(),
        1 => return lists[0].to_vec(),
        _ => {}
    }
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_by_key(|i| lists[*i].len());
    if lists[order[0]].is_empty() {
        return Vec::new();
    }
    let last = *order.last().expect("len >= 2");
    let IntersectScratch { ping, pong, gallop_probes } = scratch;
    if lists.len() == 2 {
        // Two lists — the common probe shape — never touch the scratch
        // buffers: intersect straight into the result.
        let mut out = Vec::with_capacity(lists[order[0]].len());
        intersect_pair_into(lists[order[0]], lists[last], &mut out, gallop_probes);
        return out;
    }
    // Intermediates ping-pong through the scratch; the final pair writes
    // straight into the result.
    intersect_pair_into(lists[order[0]], lists[order[1]], ping, gallop_probes);
    for &li in &order[2..order.len() - 1] {
        if ping.is_empty() {
            return Vec::new();
        }
        intersect_pair_into(ping, lists[li], pong, gallop_probes);
        std::mem::swap(ping, pong);
    }
    if ping.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(ping.len());
    intersect_pair_into(ping, lists[last], &mut out, gallop_probes);
    out
}

/// DivideSkip over dense-rank postings — the vectorized form of
/// [`t_occurrence_divide_skip`]: the caller has already split the lists
/// into `short` rank arrays and `long` lists represented as
/// [`TokenBitset`]s (ordered longest-first, as the scalar split produces).
/// Shorts are count-merged through the dense scratch with the reduced
/// threshold `t - |long|`; survivors are verified by O(1) bitset membership
/// instead of binary searches. With the same split, the candidate set and
/// the first-encounter output order match the scalar algorithm exactly
/// (inclusion is order-independent: the early probe cutoff only fires when
/// even matching every remaining long list cannot reach `t`).
pub fn t_occurrence_divide_skip_ranks(
    short: &[&[u32]],
    long: &[&crate::jaccard::TokenBitset],
    t: usize,
    universe: usize,
    scratch: &mut RankCountScratch,
) -> Vec<u32> {
    assert!(t >= 1, "corner case (T <= 0) must be handled by a scan plan");
    let l = long.len();
    let reduced_t = t.saturating_sub(l).max(1);
    if scratch.counts.len() < universe {
        scratch.counts.resize(universe, 0);
    }
    let counts = &mut scratch.counts;
    let mut order: Vec<u32> = Vec::new();
    for list in short {
        for &r in *list {
            let c = &mut counts[r as usize];
            if *c == 0 {
                order.push(r);
            }
            *c += 1;
        }
    }
    let mut out = Vec::new();
    for &r in &order {
        let mut c = counts[r as usize] as usize;
        counts[r as usize] = 0; // reset only the touched slots
        if c < reduced_t {
            continue;
        }
        for (probed, bs) in long.iter().enumerate() {
            if c + (l - probed) < t {
                break;
            }
            if bs.contains(r) {
                c += 1;
            }
        }
        if c >= t {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_marla() {
        // Fig 3: query "marla", grams {ma, ar, rl, la}; lists of "ma" and
        // "ar" are [2,3,5]; "rl" and "la" empty. T = 4 - 2*1 = 2.
        let ma = [2i64, 3, 5];
        let ar = [2i64, 3, 5];
        let lists: Vec<&[i64]> = vec![&ma, &ar];
        let t = edit_distance_t_bound(4, 1, 2);
        assert_eq!(t, 2);
        let cands = t_occurrence_scan_count(&lists, t as usize);
        assert_eq!(cands, vec![2, 3, 5]); // first-encounter order
    }

    #[test]
    fn corner_case_bound() {
        // Fig 3 discussion: threshold 3 gives T = 4 - 2*3 = -2.
        assert_eq!(edit_distance_t_bound(4, 3, 2), -2);
        assert!(edit_distance_t_bound(4, 2, 2) == 0);
    }

    #[test]
    fn jaccard_bound() {
        assert_eq!(jaccard_t_bound(4, 0.5), 2);
        assert_eq!(jaccard_t_bound(3, 0.5), 2); // ceil(1.5)
        assert_eq!(jaccard_t_bound(10, 0.2), 2);
        assert_eq!(jaccard_t_bound(1, 0.1), 1); // at least one shared token
        assert_eq!(jaccard_t_bound(5, 0.0), 0);
        // Empty token set: J(∅, ∅) = 1 means empty-token records still
        // match, but there is nothing to probe — corner case, scan plan.
        assert_eq!(jaccard_t_bound(0, 0.5), 0);
        assert_eq!(jaccard_t_bound(0, 1.0), 0);
    }

    #[test]
    fn scan_count_thresholding() {
        let l1 = [1, 2, 3];
        let l2 = [2, 3];
        let l3 = [3];
        let lists: Vec<&[i32]> = vec![&l1, &l2, &l3];
        assert_eq!(t_occurrence_scan_count(&lists, 1), vec![1, 2, 3]);
        assert_eq!(t_occurrence_scan_count(&lists, 2), vec![2, 3]);
        assert_eq!(t_occurrence_scan_count(&lists, 3), vec![3]);
        assert_eq!(t_occurrence_scan_count(&lists, 4), Vec::<i32>::new());
    }

    #[test]
    fn heap_empty_lists() {
        let lists: Vec<&[i32]> = vec![&[], &[]];
        assert_eq!(t_occurrence_heap(&lists, 1), Vec::<i32>::new());
    }

    #[test]
    #[should_panic]
    fn zero_t_panics() {
        let l: Vec<&[i32]> = vec![];
        t_occurrence_scan_count(&l, 0);
    }

    #[test]
    fn divide_skip_basic() {
        let l1 = [1, 2, 3];
        let l2 = [2, 3];
        let l3 = [3];
        let lists: Vec<&[i32]> = vec![&l1, &l2, &l3];
        for t in 1..=4 {
            let mut a = t_occurrence_divide_skip(&lists, t);
            a.sort();
            let b = t_occurrence_heap(&lists, t);
            assert_eq!(a, b, "t={t}");
        }
    }

    #[test]
    fn divide_skip_skewed_lists() {
        // One very long list (a frequent token) plus short ones.
        let long: Vec<i64> = (0..10_000).collect();
        let s1 = [5i64, 100, 9_999];
        let s2 = [5i64, 9_999];
        let lists: Vec<&[i64]> = vec![&long, &s1, &s2];
        let mut a = t_occurrence_divide_skip(&lists, 3);
        a.sort();
        assert_eq!(a, vec![5, 9_999]);
    }

    #[test]
    fn choose_l_caps_and_fallback() {
        // Tiny inputs: simple rule L = t - 1 (capped by list count).
        assert_eq!(divide_skip_choose_l(3, 5, 10), 2);
        assert_eq!(divide_skip_choose_l(5, 3, 10), 2);
        assert_eq!(divide_skip_choose_l(1, 4, 10), 0);
        // Large M: the [20] formula picks L < t - 1.
        let l = divide_skip_choose_l(8, 12, 50_000);
        assert!(l < 7, "heuristic should set aside fewer long lists, got {l}");
        assert!(l >= 1);
        // Never exceeds the caps regardless of M.
        for t in 1..20 {
            for n in 1..20 {
                let l = divide_skip_choose_l(t, n, 1_000_000);
                assert!(l < t && l < n || l == 0);
            }
        }
    }

    /// The regression test for the `L = t - 1` bug: on Zipfian lists the
    /// old rule reduces the short-list threshold to 1, so nearly every id
    /// on any short list is binary-probed against many long lists. The
    /// [20] heuristic `L = T / (μ·ln(M) + 1)` keeps the reduced threshold
    /// high and must issue strictly fewer long-list probes while returning
    /// the same answer.
    #[test]
    fn divide_skip_heuristic_fewer_probes_on_zipfian() {
        // Zipf-shaped inverted lists: list i holds the multiples of i, so
        // list lengths fall off as N/i (a frequent token's list is long).
        const N: i64 = 50_000;
        let lists_owned: Vec<Vec<i64>> =
            (1..=12i64).map(|i| (0..N).step_by(i as usize).collect()).collect();
        let lists: Vec<&[i64]> = lists_owned.iter().map(|v| v.as_slice()).collect();
        let t = 8;

        let (heur_out, heur_stats) = t_occurrence_divide_skip_with_stats(&lists, t);
        let old_l = (t - 1).min(lists.len() - 1);
        let (old_out, old_stats) = divide_skip_with_l(&lists, t, old_l);

        // Same answer as the reference heap merge.
        let expected = t_occurrence_heap(&lists, t);
        let mut h = heur_out;
        h.sort();
        let mut o = old_out;
        o.sort();
        assert_eq!(h, expected);
        assert_eq!(o, expected);
        assert!(!expected.is_empty(), "test needs a non-trivial answer");

        // The heuristic sets aside fewer long lists and probes them less.
        assert!(
            heur_stats.long_lists < old_stats.long_lists,
            "heuristic L {} should be below the old rule's {}",
            heur_stats.long_lists,
            old_stats.long_lists
        );
        assert!(
            heur_stats.long_list_probes * 2 < old_stats.long_list_probes,
            "expected at least 2x fewer probes: heuristic {} vs old {}",
            heur_stats.long_list_probes,
            old_stats.long_list_probes
        );
    }

    #[test]
    fn intersect_edge_cases() {
        let mut s = IntersectScratch::new();
        // No lists / one list / an empty list anywhere.
        assert_eq!(t_occurrence_intersect::<i32>(&[], &mut s), Vec::<i32>::new());
        assert_eq!(t_occurrence_intersect(&[&[1, 2][..]], &mut s), vec![1, 2]);
        assert_eq!(t_occurrence_intersect(&[&[1, 2][..], &[][..]], &mut s), Vec::<i32>::new());
        assert_eq!(t_occurrence_intersect(&[&[][..], &[][..], &[][..]], &mut s), Vec::<i32>::new());
        // Single-token lists.
        assert_eq!(t_occurrence_intersect(&[&[7][..], &[7][..], &[7][..]], &mut s), vec![7]);
        assert_eq!(t_occurrence_intersect(&[&[7][..], &[8][..]], &mut s), Vec::<i32>::new());
    }

    /// 1:10⁴ length skew must take the galloping path, agree with ScanCount,
    /// and issue probes proportional to the short list — not the long one.
    #[test]
    fn intersect_extreme_skew_gallops() {
        let long: Vec<i64> = (0..10_000).collect();
        let short = [0i64, 4_321, 9_999];
        let lists: Vec<&[i64]> = vec![&long, &short];
        let mut s = IntersectScratch::new();
        let got = t_occurrence_intersect(&lists, &mut s);
        assert_eq!(got, vec![0, 4_321, 9_999]);
        assert_eq!(got, t_occurrence_scan_count(&lists, 2));
        assert!(s.gallop_probes() >= 1, "skewed pair must gallop");
        assert!(
            s.gallop_probes() <= short.len() as u64,
            "probes {} should be bounded by the short list, not the long one",
            s.gallop_probes()
        );
        // Single-element probe against the same long list: one gallop.
        let one = [10_000i64]; // beyond the long list's end
        let before = s.gallop_probes();
        assert_eq!(t_occurrence_intersect(&[&long, &one], &mut s), Vec::<i64>::new());
        assert_eq!(s.gallop_probes(), before + 1);
    }

    #[test]
    fn intersect_three_way_uses_scratch_and_matches_scan_count() {
        let a: Vec<u32> = (0..1000).filter(|x| x % 2 == 0).collect();
        let b: Vec<u32> = (0..1000).filter(|x| x % 3 == 0).collect();
        let c = [0u32, 6, 12, 600, 601];
        let lists: Vec<&[u32]> = vec![&a, &b, &c];
        let mut s = IntersectScratch::new();
        let got = t_occurrence_intersect(&lists, &mut s);
        assert_eq!(got, vec![0, 6, 12, 600]);
        let mut sc = t_occurrence_scan_count(&lists, 3);
        sc.sort();
        assert_eq!(got, sc);
    }

    #[test]
    fn ranks_kernel_first_encounter_order_and_reuse() {
        let l1 = [4u32, 0, 2];
        let l2 = [2u32, 4];
        let lists: Vec<&[u32]> = vec![&l1, &l2];
        let mut scratch = RankCountScratch::new();
        assert_eq!(t_occurrence_ranks(&lists, 2, 5, &mut scratch), vec![4, 2]);
        // Scratch resets between probes: a second, different probe through
        // the same scratch is unaffected by the first.
        let l3 = [0u32, 1];
        let lists2: Vec<&[u32]> = vec![&l3, &l1];
        assert_eq!(t_occurrence_ranks(&lists2, 2, 5, &mut scratch), vec![0]);
    }

    proptest! {
        /// Vectorized ≡ scalar: the dense-rank kernel returns exactly the
        /// scalar ScanCount result, including first-encounter order.
        #[test]
        fn prop_ranks_equals_scan_count(
            lists in prop::collection::vec(prop::collection::vec(0u32..40, 0..25), 0..6),
            t in 1usize..4,
        ) {
            let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
            let mut scratch = RankCountScratch::new();
            let fast = t_occurrence_ranks(&refs, t, 40, &mut scratch);
            let slow = t_occurrence_scan_count(&refs, t);
            prop_assert_eq!(fast, slow);
        }

        /// Vectorized ≡ scalar: with the same long/short split as the
        /// scalar heuristic, the rank-array DivideSkip returns exactly the
        /// scalar result, including first-encounter output order.
        #[test]
        fn prop_divide_skip_ranks_equals_scalar(
            lists in prop::collection::vec(prop::collection::btree_set(0u32..80, 0..30), 1..7),
            t in 1usize..6,
        ) {
            let sorted: Vec<Vec<u32>> = lists.iter().map(|s| s.iter().copied().collect()).collect();
            let refs: Vec<&[u32]> = sorted.iter().map(|v| v.as_slice()).collect();
            let expected = t_occurrence_divide_skip(&refs, t);

            // Reproduce the scalar split: stable sort by descending length,
            // first L lists are long.
            let max_len = refs.iter().map(|l| l.len()).max().unwrap_or(0);
            let l = divide_skip_choose_l(t, refs.len(), max_len);
            let mut order: Vec<usize> = (0..refs.len()).collect();
            order.sort_by_key(|i| std::cmp::Reverse(refs[*i].len()));
            let (long_idx, short_idx) = order.split_at(l);
            let shorts: Vec<&[u32]> = short_idx.iter().map(|i| refs[*i]).collect();
            let bitsets: Vec<crate::jaccard::TokenBitset> = long_idx
                .iter()
                .map(|i| crate::jaccard::TokenBitset::build(refs[*i], 80))
                .collect();
            let bs_refs: Vec<&crate::jaccard::TokenBitset> = bitsets.iter().collect();
            let mut scratch = RankCountScratch::new();
            let fast = t_occurrence_divide_skip_ranks(&shorts, &bs_refs, t, 80, &mut scratch);
            prop_assert_eq!(fast, expected);
        }

        /// Gallop/merge intersection ≡ the count-based merge at `t = #lists`,
        /// including output order (ascending == first-encounter here), over
        /// list counts 1..6 and adversarial length skews (the `0..600` value
        /// domain with sizes 0..300 yields ratios from 1:1 to 1:300 and
        /// frequent empty/singleton lists).
        #[test]
        fn prop_intersect_equals_scan_count(
            lists in prop::collection::vec(prop::collection::btree_set(0u32..600, 0..300), 1..6),
        ) {
            let sorted: Vec<Vec<u32>> = lists.iter().map(|s| s.iter().copied().collect()).collect();
            let refs: Vec<&[u32]> = sorted.iter().map(|v| v.as_slice()).collect();
            let mut scratch = IntersectScratch::new();
            let fast = t_occurrence_intersect(&refs, &mut scratch);
            let slow = t_occurrence_scan_count(&refs, refs.len());
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_divide_skip_equals_heap(
            lists in prop::collection::vec(prop::collection::btree_set(0u16..60, 0..25), 1..7),
            t in 1usize..5,
        ) {
            let sorted: Vec<Vec<u16>> = lists.iter().map(|s| s.iter().copied().collect()).collect();
            let refs: Vec<&[u16]> = sorted.iter().map(|v| v.as_slice()).collect();
            let mut a = t_occurrence_divide_skip(&refs, t);
            a.sort();
            let b = t_occurrence_heap(&refs, t);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_scan_count_equals_heap(
            lists in prop::collection::vec(prop::collection::btree_set(0u16..50, 0..20), 0..6),
            t in 1usize..4,
        ) {
            let sorted: Vec<Vec<u16>> = lists.iter().map(|s| s.iter().copied().collect()).collect();
            let refs: Vec<&[u16]> = sorted.iter().map(|v| v.as_slice()).collect();
            let mut a = t_occurrence_scan_count(&refs, t);
            a.sort();
            let b = t_occurrence_heap(&refs, t);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_monotone_in_t(
            lists in prop::collection::vec(prop::collection::btree_set(0u16..30, 0..15), 0..5),
        ) {
            let sorted: Vec<Vec<u16>> = lists.iter().map(|s| s.iter().copied().collect()).collect();
            let refs: Vec<&[u16]> = sorted.iter().map(|v| v.as_slice()).collect();
            let mut prev = t_occurrence_scan_count(&refs, 1);
            for t in 2..5 {
                let cur = t_occurrence_scan_count(&refs, t);
                // result for larger t is a subset of smaller t
                prop_assert!(cur.iter().all(|x| prev.contains(x)));
                prev = cur;
            }
        }
    }
}
