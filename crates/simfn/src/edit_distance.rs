//! Edit (Levenshtein) distance on strings and on ordered lists.
//!
//! The paper (§2.1) defines edit distance as the minimum number of
//! single-character insertions, deletions, and substitutions, and extends it
//! to ordered lists (a string is an ordered list of characters). AsterixDB
//! also ships an early-terminating variant that a user can choose (§3.2);
//! here [`edit_distance_check`] is the early-terminating verifier used by
//! index post-verification and by selection/join predicates with a
//! threshold: it runs banded dynamic programming in `O((2k+1)·n)` and bails
//! out as soon as the band's minimum exceeds the threshold.
//!
//! For hot verify loops the slice entry points
//! ([`edit_distance_check_chars`], [`edit_distance_check_slices`]) accept
//! pre-decoded inputs and a caller-owned [`EdScratch`], so the probe side of
//! an index search is decoded once per query (not once per candidate) and
//! the DP buffers are allocated once per batch (not once per call).

/// Exact edit distance between two strings (by Unicode scalar values).
///
/// ```
/// use asterix_simfn::edit_distance;
/// assert_eq!(edit_distance("james", "jamie"), 2); // the paper's example
/// ```
pub fn edit_distance(a: &str, b: &str) -> u32 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    generic_edit_distance(&a, &b)
}

/// Exact edit distance between two ordered lists of comparable items, e.g.
/// the paper's `["Better","than","I","expected"]` vs
/// `["Better","than","expected"]` = 1.
pub fn list_edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> u32 {
    generic_edit_distance(a, b)
}

/// Threshold check with early termination: returns `Some(d)` with the exact
/// distance if `d <= k`, or `None` if the distance exceeds `k` (possibly
/// terminating long before the full table is filled).
pub fn edit_distance_check(a: &str, b: &str, k: u32) -> Option<u32> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    generic_edit_distance_check(&a, &b, k)
}

/// Threshold-checked edit distance on ordered lists.
pub fn list_edit_distance_check<T: PartialEq>(a: &[T], b: &[T], k: u32) -> Option<u32> {
    generic_edit_distance_check(a, b, k)
}

/// Threshold-checked edit distance over pre-decoded char buffers with
/// caller-owned scratch — the vectorized-verify entry point. Decode each
/// side with `s.chars().collect()` once, then reuse both the buffers and
/// the scratch across an entire batch of candidates.
///
/// Dispatches adaptively between the Myers bit-parallel kernel
/// ([`EdScratch::bitparallel_calls`] counts how often) and the scalar
/// banded DP: bit-parallel wins when the band `2k+1` is at least as wide
/// as one column's worth of `u64` blocks (`k >= ceil(m/64)` for the
/// shorter side of length `m`), which covers every practical
/// `edit-distance-check` shape (`k` in 1..=4, short strings); a tiny
/// threshold on a long string keeps the `O((2k+1)·n)` banded DP, which
/// touches fewer cells than the `O(ceil(m/64)·n)` word grid.
pub fn edit_distance_check_chars(a: &[char], b: &[char], k: u32, scratch: &mut EdScratch) -> Option<u32> {
    let (pat, txt) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let blocks = pat.len().div_ceil(64);
    if !pat.is_empty() && k as usize >= blocks {
        myers_check(pat, txt, k, scratch)
    } else {
        banded_check(a, b, k, scratch)
    }
}

/// [`edit_distance_check_chars`] pinned to the scalar banded DP — the
/// pre-bit-parallel behaviour. The `disable_kernels` switch routes verify
/// loops here, and the equivalence proptests compare the two entry points.
pub fn edit_distance_check_chars_scalar(
    a: &[char],
    b: &[char],
    k: u32,
    scratch: &mut EdScratch,
) -> Option<u32> {
    banded_check(a, b, k, scratch)
}

/// Generic slice form of [`edit_distance_check_chars`]: threshold-checked
/// edit distance on ordered lists with caller-owned scratch.
pub fn edit_distance_check_slices<T: PartialEq>(
    a: &[T],
    b: &[T],
    k: u32,
    scratch: &mut EdScratch,
) -> Option<u32> {
    banded_check(a, b, k, scratch)
}

/// Reusable scratch for the threshold-checked kernels: two banded-DP rows
/// sized to the band width `min(2k+1, n+1)` — **not** the full `n+1` —
/// plus the bit-parallel state (pattern bitmask cache and `Pv`/`Mv`
/// vertical-delta words) and instrumentation counters. The DP-cell counter
/// is cumulative across calls and the regression tests pin it to stay
/// band-proportional; [`Self::bitparallel_calls`] counts how many checks
/// took the Myers path.
#[derive(Debug, Default, Clone)]
pub struct EdScratch {
    prev: Vec<u32>,
    cur: Vec<u32>,
    cells: u64,
    bp_calls: u64,
    /// Pattern whose `Peq` masks are currently cached, so consecutive
    /// checks against the same probe (the common verify-loop shape) skip
    /// the preprocessing pass entirely.
    bp_pat: Vec<char>,
    bp_blocks: usize,
    /// `Peq` for ASCII pattern characters, laid out `[char][block]` in one
    /// flat allocation (`128 * blocks` words).
    peq_ascii: Vec<u64>,
    /// `Peq` overflow for non-ASCII pattern characters.
    peq_other: std::collections::HashMap<char, Box<[u64]>>,
    pv: Vec<u64>,
    mv: Vec<u64>,
}

impl EdScratch {
    /// Empty scratch; buffers grow to the band width on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total DP cells computed through this scratch (cumulative). A banded
    /// check over `m x n` with threshold `k` touches at most
    /// `(2k+1) * (min(m,n)+1)` cells.
    pub fn cells_touched(&self) -> u64 {
        self.cells
    }

    /// Checks routed to the Myers bit-parallel kernel (cumulative) — the
    /// source of the `bitparallel_ed_calls` profile counter.
    pub fn bitparallel_calls(&self) -> u64 {
        self.bp_calls
    }

    /// Current row-buffer length — bounded by the largest band width seen,
    /// never by the full sequence length.
    pub fn band_capacity(&self) -> usize {
        self.prev.len().max(self.cur.len())
    }

    fn ensure(&mut self, width: usize) {
        if self.prev.len() < width {
            self.prev.resize(width, 0);
        }
        if self.cur.len() < width {
            self.cur.resize(width, 0);
        }
    }

    /// (Re)build the `Peq` masks unless `pat` is the pattern already cached.
    fn prepare_peq(&mut self, pat: &[char], blocks: usize) {
        if self.bp_blocks == blocks && self.bp_pat.as_slice() == pat {
            return;
        }
        self.bp_pat.clear();
        self.bp_pat.extend_from_slice(pat);
        self.bp_blocks = blocks;
        self.peq_ascii.clear();
        self.peq_ascii.resize(128 * blocks, 0);
        self.peq_other.clear();
        for (i, &c) in pat.iter().enumerate() {
            let (block, bit) = (i / 64, i % 64);
            let mask = 1u64 << bit;
            if (c as u32) < 128 {
                self.peq_ascii[(c as usize) * blocks + block] |= mask;
            } else {
                self.peq_other.entry(c).or_insert_with(|| vec![0u64; blocks].into_boxed_slice())
                    [block] |= mask;
            }
        }
    }

    #[inline]
    fn peq(&self, c: char, block: usize) -> u64 {
        if (c as u32) < 128 {
            self.peq_ascii[(c as usize) * self.bp_blocks + block]
        } else {
            self.peq_other.get(&c).map_or(0, |m| m[block])
        }
    }
}

/// Myers bit-parallel threshold check: the DP column for the (shorter)
/// pattern is encoded as vertical-delta bit vectors `Pv`/`Mv` packed into
/// `ceil(m/64)` u64 SWAR blocks, and each text character advances the whole
/// column in O(blocks) word operations instead of O(m) cell operations.
/// Tracks `score = D[m][j]` via the horizontal delta at the pattern's last
/// bit and bails out as soon as even one match per remaining column could
/// not bring the score back under `k`.
fn myers_check(pat: &[char], txt: &[char], k: u32, s: &mut EdScratch) -> Option<u32> {
    debug_assert!(pat.len() <= txt.len() && !pat.is_empty());
    // Length filter: |n - m| is a lower bound on the distance.
    if (txt.len() - pat.len()) as u64 > k as u64 {
        return None;
    }
    s.bp_calls += 1;
    let blocks = pat.len().div_ceil(64);
    s.prepare_peq(pat, blocks);
    if blocks == 1 {
        myers_check_1block(pat.len(), txt, k, s)
    } else {
        myers_check_blocks(pat.len(), blocks, txt, k, s)
    }
}

/// Single-block (`m <= 64`) Myers loop — the overwhelmingly common verify
/// shape, kept register-resident with no per-block bookkeeping.
fn myers_check_1block(m: usize, txt: &[char], k: u32, s: &mut EdScratch) -> Option<u32> {
    let last_bit = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m as i64;
    for (j, &c) in txt.iter().enumerate() {
        let eq = s.peq(c, 0);
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & last_bit != 0 {
            score += 1;
        } else if mh & last_bit != 0 {
            score -= 1;
        }
        // Row 0 is D[0][j] = j: the horizontal delta into the top of the
        // column is always +1, hence the shifted-in Ph bit.
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
        // Even a match on every remaining column only subtracts one each.
        if score > k as i64 + (txt.len() - j - 1) as i64 {
            return None;
        }
    }
    (score <= k as i64).then_some(score as u32)
}

/// Multi-block Myers loop for patterns longer than 64 chars: blocks are
/// advanced bottom-up per text character, chaining each block's horizontal
/// delta out of bit 63 into the next block's boundary bit.
fn myers_check_blocks(m: usize, blocks: usize, txt: &[char], k: u32, s: &mut EdScratch) -> Option<u32> {
    let last_bit = 1u64 << ((m - 1) % 64);
    s.pv.clear();
    s.pv.resize(blocks, !0u64);
    s.mv.clear();
    s.mv.resize(blocks, 0u64);
    let mut score = m as i64;
    for (j, &c) in txt.iter().enumerate() {
        // Horizontal delta entering the block's top row; +1 for block 0
        // (row 0 is D[0][j] = j), then whatever the block below emitted.
        let mut hin: i64 = 1;
        for b in 0..blocks {
            let mut eq = s.peq(c, b);
            let pv = s.pv[b];
            let mv = s.mv[b];
            let xv = eq | mv;
            if hin < 0 {
                eq |= 1; // a -1 carried in acts like a match on the boundary
            }
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            if b == blocks - 1 {
                if ph & last_bit != 0 {
                    score += 1;
                } else if mh & last_bit != 0 {
                    score -= 1;
                }
            }
            let hout = if ph >> 63 != 0 {
                1
            } else if mh >> 63 != 0 {
                -1
            } else {
                0
            };
            ph <<= 1;
            mh <<= 1;
            if hin > 0 {
                ph |= 1;
            } else if hin < 0 {
                mh |= 1;
            }
            s.pv[b] = mh | !(xv | ph);
            s.mv[b] = ph & xv;
            hin = hout;
        }
        if score > k as i64 + (txt.len() - j - 1) as i64 {
            return None;
        }
    }
    (score <= k as i64).then_some(score as u32)
}

/// Banded DP bounded by threshold `k`: only cells with `|i - j| <= k` can be
/// on an optimal path of cost `<= k`. Terminates early when an entire band
/// row exceeds `k`.
fn generic_edit_distance_check<T: PartialEq>(a: &[T], b: &[T], k: u32) -> Option<u32> {
    let mut scratch = EdScratch::new();
    banded_check(a, b, k, &mut scratch)
}

/// The banded DP itself. Rows are stored in band coordinates (cell
/// `D[i][j]` lives at `row[j - lo_i]`), so both the work and the scratch
/// are `O(band)` per row: no full-row reset, no `O(n)` buffers. Every band
/// cell is written before any same-row read, so the buffers need no
/// clearing between rows or between calls.
fn banded_check<T: PartialEq>(a: &[T], b: &[T], k: u32, s: &mut EdScratch) -> Option<u32> {
    // Keep the longer sequence as the rows; `m >= n` below.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let (m, n) = (a.len(), b.len());
    // Length filter: |m - n| is a lower bound on the distance.
    if (m - n) as u64 > k as u64 {
        return None;
    }
    // The distance never exceeds max(m, n) = m, so a huge threshold only
    // needs a band that covers the whole table.
    let k = (k as usize).min(m);
    if n == 0 {
        return Some(m as u32); // m <= k by the length filter
    }
    // Any cell with |i - j| > k has D[i][j] >= |i - j| > k, so the band
    // outside is safely represented by `inf` = k + 1.
    let inf = (k + 1) as u32;
    s.ensure((2 * k + 1).min(n + 1));
    // Row 0: D[0][j] = j for j in the band [0, min(k, n)].
    let (mut plo, mut phi) = (0usize, k.min(n));
    for (j, cell) in s.prev.iter_mut().enumerate().take(phi + 1) {
        *cell = j as u32;
    }
    s.cells += (phi + 1) as u64;
    for i in 1..=m {
        let lo = i.saturating_sub(k);
        let hi = (i + k).min(n);
        let mut row_min = inf;
        for j in lo..=hi {
            let v = if j == 0 {
                i as u32 // boundary column; i <= k whenever 0 is in band
            } else {
                let up = if (plo..=phi).contains(&j) { s.prev[j - plo] } else { inf };
                let diag = if (plo..=phi).contains(&(j - 1)) {
                    s.prev[j - 1 - plo]
                } else {
                    inf
                };
                let left = if j > lo { s.cur[j - 1 - lo] } else { inf };
                let cost = u32::from(a[i - 1] != b[j - 1]);
                up.saturating_add(1)
                    .min(left.saturating_add(1))
                    .min(diag.saturating_add(cost))
                    .min(inf)
            };
            s.cur[j - lo] = v;
            row_min = row_min.min(v);
        }
        s.cells += (hi - lo + 1) as u64;
        if row_min >= inf {
            return None; // early termination: the whole band exceeded k
        }
        std::mem::swap(&mut s.prev, &mut s.cur);
        (plo, phi) = (lo, hi);
    }
    // n is inside row m's band because |m - n| <= k.
    let d = s.prev[n - plo];
    if d <= k as u32 {
        Some(d)
    } else {
        None
    }
}

/// Two-row dynamic program, O(m·n) time, O(min(m,n)) space.
fn generic_edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> u32 {
    // Keep the shorter sequence as the row to minimize memory.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let n = b.len();
    if n == 0 {
        return a.len() as u32;
    }
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, ai) in a.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for j in 1..=n {
            let cost = if *ai == b[j - 1] { 0 } else { 1 };
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        assert_eq!(edit_distance("james", "jamie"), 2);
        assert_eq!(edit_distance("marla", "maria"), 1);
    }

    #[test]
    fn basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(edit_distance("caé", "cae"), 1);
        assert_eq!(edit_distance("日本語", "日本"), 1);
    }

    #[test]
    fn list_distance_paper_example() {
        let a = ["Better", "than", "I", "expected"];
        let b = ["Better", "than", "expected"];
        assert_eq!(list_edit_distance(&a, &b), 1);
    }

    #[test]
    fn check_agrees_when_under_threshold() {
        assert_eq!(edit_distance_check("kitten", "sitting", 3), Some(3));
        assert_eq!(edit_distance_check("kitten", "sitting", 5), Some(3));
        assert_eq!(edit_distance_check("kitten", "sitting", 2), None);
    }

    #[test]
    fn check_zero_threshold() {
        assert_eq!(edit_distance_check("abc", "abc", 0), Some(0));
        assert_eq!(edit_distance_check("abc", "abd", 0), None);
    }

    #[test]
    fn check_length_filter() {
        // Length difference 5 > k=2: must reject without DP.
        assert_eq!(edit_distance_check("a", "abcdef", 2), None);
    }

    #[test]
    fn check_empty_sides() {
        assert_eq!(edit_distance_check("", "", 0), Some(0));
        assert_eq!(edit_distance_check("", "ab", 2), Some(2));
        assert_eq!(edit_distance_check("", "ab", 1), None);
    }

    #[test]
    fn check_huge_threshold() {
        // k larger than both lengths (and near u32::MAX) must not overflow
        // and must return the exact distance.
        assert_eq!(edit_distance_check("kitten", "sitting", u32::MAX), Some(3));
        assert_eq!(edit_distance_check("", "ab", u32::MAX), Some(2));
    }

    #[test]
    fn list_check() {
        let a = [1, 2, 3, 4];
        let b = [1, 3, 4];
        assert_eq!(list_edit_distance_check(&a, &b, 1), Some(1));
        assert_eq!(list_edit_distance_check(&a, &b, 0), None);
    }

    #[test]
    fn slice_entry_points_reuse_scratch() {
        let probe: Vec<char> = "jamesworthington".chars().collect();
        let mut scratch = EdScratch::new();
        let cands = ["jamesworthingten", "jameswrthington", "completely-different"];
        let expect = [Some(1), Some(1), None];
        for (cand, want) in cands.iter().zip(expect) {
            let cv: Vec<char> = cand.chars().collect();
            assert_eq!(edit_distance_check_chars(&probe, &cv, 2, &mut scratch), want);
        }
        // Buffers were allocated once and stayed band-sized.
        assert!(scratch.band_capacity() <= 5, "capacity {}", scratch.band_capacity());
    }

    /// Regression pin for the banded DP: with threshold `k` the work and
    /// the scratch must be proportional to the band `2k+1`, not to the
    /// sequence length `n`. The pre-fix implementation reset the full
    /// `0..=n` row every iteration (Θ(m·n) work) and allocated `n+1`-sized
    /// buffers per call; both would blow the bounds below by ~400×.
    #[test]
    fn banded_check_work_is_band_proportional() {
        let a: String = "ab".repeat(1000);
        let b: String = format!("x{}", &a[..a.len() - 1]); // distance 2 (sub + sub)
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let k = 2u32;
        let mut scratch = EdScratch::new();
        let d = edit_distance_check_slices(&av, &bv, k, &mut scratch);
        assert_eq!(d, Some(edit_distance(&a, &b)));
        let band = (2 * k + 1) as u64;
        let rows = (av.len().min(bv.len()) as u64) + 1;
        assert!(
            scratch.cells_touched() <= band * rows,
            "touched {} cells, band bound is {}",
            scratch.cells_touched(),
            band * rows
        );
        assert!(
            scratch.band_capacity() <= band as usize,
            "scratch holds {} cells, band is {}",
            scratch.band_capacity(),
            band
        );
    }

    #[test]
    fn myers_dispatch_counts_calls() {
        let mut s = EdScratch::new();
        let a: Vec<char> = "kitten".chars().collect();
        let b: Vec<char> = "sitting".chars().collect();
        // k=3 >= 1 block → Myers.
        assert_eq!(edit_distance_check_chars(&a, &b, 3, &mut s), Some(3));
        assert_eq!(s.bitparallel_calls(), 1);
        // k=0 → banded, no new bit-parallel call.
        assert_eq!(edit_distance_check_chars(&a, &a, 0, &mut s), Some(0));
        assert_eq!(s.bitparallel_calls(), 1);
        // Scalar-pinned entry never takes the Myers path.
        assert_eq!(edit_distance_check_chars_scalar(&a, &b, 3, &mut s), Some(3));
        assert_eq!(s.bitparallel_calls(), 1);
    }

    #[test]
    fn myers_multiblock_unicode() {
        // >64 chars with non-ASCII so the pattern spans multiple u64 blocks
        // and exercises the Peq hash-map overflow.
        let a: String = "日本語データベース類似検索".chars().cycle().take(150).collect();
        let mut b: Vec<char> = a.chars().collect();
        b[3] = 'x';
        b.insert(77, 'y');
        b.remove(140);
        let av: Vec<char> = a.chars().collect();
        let mut s = EdScratch::new();
        let exact = edit_distance(&a, &b.iter().collect::<String>());
        for k in 0..8u32 {
            let want = if exact <= k { Some(exact) } else { None };
            assert_eq!(edit_distance_check_chars(&av, &b, k, &mut s), want, "k={k}");
        }
        assert!(s.bitparallel_calls() > 0);
    }

    #[test]
    fn myers_peq_cache_reused_across_candidates() {
        let probe: Vec<char> = "a".repeat(70).chars().collect();
        let mut s = EdScratch::new();
        for cand in ["a", "b"] {
            let cv: Vec<char> = cand.repeat(70).chars().collect();
            let want = if cand == "a" { Some(0) } else { None };
            assert_eq!(edit_distance_check_chars(&probe, &cv, 3, &mut s), want);
        }
        // Same pattern twice → masks built once; both calls bit-parallel.
        assert_eq!(s.bitparallel_calls(), 2);
    }

    #[test]
    fn myers_exact_block_boundaries() {
        // Pattern lengths straddling the 64-bit block edge.
        for m in [63usize, 64, 65, 127, 128, 129] {
            let a: String = "ab".chars().cycle().take(m).collect();
            let mut b = a.clone();
            b.push('z');
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            let mut s = EdScratch::new();
            assert_eq!(edit_distance_check_chars(&av, &bv, 2, &mut s), Some(1), "m={m}");
            assert_eq!(edit_distance_check_chars(&av, &av, 2, &mut s), Some(0), "m={m}");
        }
    }

    proptest! {
        /// Bit-parallel ≡ scalar DP, forced onto the Myers path (`k >=
        /// blocks` always holds for these shapes) and compared against the
        /// scalar-pinned entry on the same scratch.
        #[test]
        fn prop_myers_matches_scalar(a in "[a-c]{1,20}", b in "[a-c]{0,20}", k in 1u32..8) {
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            let mut s = EdScratch::new();
            let fast = edit_distance_check_chars(&av, &bv, k, &mut s);
            let slow = edit_distance_check_chars_scalar(&av, &bv, k, &mut s);
            prop_assert_eq!(fast, slow);
        }

        /// Multi-block parity over Unicode strings longer than one u64 block.
        #[test]
        fn prop_myers_multiblock_matches_scalar(
            a in "[aé日]{60,100}",
            b in "[aé日]{60,100}",
            k in 2u32..10,
        ) {
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            let mut s = EdScratch::new();
            let fast = edit_distance_check_chars(&av, &bv, k, &mut s);
            let slow = edit_distance_check_chars_scalar(&av, &bv, k, &mut s);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_symmetric(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn prop_triangle_inequality(a in "[a-b]{0,8}", b in "[a-b]{0,8}", c in "[a-b]{0,8}") {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_identity(a in "[a-z]{0,16}") {
            prop_assert_eq!(edit_distance(&a, &a), 0);
        }

        #[test]
        fn prop_check_matches_exact(a in "[a-c]{0,10}", b in "[a-c]{0,10}", k in 0u32..6) {
            let exact = edit_distance(&a, &b);
            let checked = edit_distance_check(&a, &b, k);
            if exact <= k {
                prop_assert_eq!(checked, Some(exact));
            } else {
                prop_assert_eq!(checked, None);
            }
        }

        /// Vectorized ≡ scalar: the scratch-reusing slice kernel agrees with
        /// the per-call API for every input and threshold, including when a
        /// single scratch is reused across differently-shaped calls.
        #[test]
        fn prop_slices_match_check(
            pairs in proptest::collection::vec(("[a-c]{0,12}", "[a-c]{0,12}", 0u32..8), 1..6)
        ) {
            let mut scratch = EdScratch::new();
            for (a, b, k) in &pairs {
                let av: Vec<char> = a.chars().collect();
                let bv: Vec<char> = b.chars().collect();
                prop_assert_eq!(
                    edit_distance_check_chars(&av, &bv, *k, &mut scratch),
                    edit_distance_check(a, b, *k)
                );
            }
        }

        #[test]
        fn prop_length_diff_lower_bound(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            let d = edit_distance(&a, &b) as i64;
            let ld = (a.chars().count() as i64 - b.chars().count() as i64).abs();
            prop_assert!(d >= ld);
        }

        #[test]
        fn prop_string_equals_char_list(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            let la: Vec<char> = a.chars().collect();
            let lb: Vec<char> = b.chars().collect();
            prop_assert_eq!(edit_distance(&a, &b), list_edit_distance(&la, &lb));
        }
    }
}
