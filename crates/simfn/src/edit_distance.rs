//! Edit (Levenshtein) distance on strings and on ordered lists.
//!
//! The paper (§2.1) defines edit distance as the minimum number of
//! single-character insertions, deletions, and substitutions, and extends it
//! to ordered lists (a string is an ordered list of characters). AsterixDB
//! also ships an early-terminating variant that a user can choose (§3.2);
//! here [`edit_distance_check`] is the early-terminating verifier used by
//! index post-verification and by selection/join predicates with a
//! threshold: it runs banded dynamic programming in `O((2k+1)·n)` and bails
//! out as soon as the band's minimum exceeds the threshold.

/// Exact edit distance between two strings (by Unicode scalar values).
///
/// ```
/// use asterix_simfn::edit_distance;
/// assert_eq!(edit_distance("james", "jamie"), 2); // the paper's example
/// ```
pub fn edit_distance(a: &str, b: &str) -> u32 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    generic_edit_distance(&a, &b)
}

/// Exact edit distance between two ordered lists of comparable items, e.g.
/// the paper's `["Better","than","I","expected"]` vs
/// `["Better","than","expected"]` = 1.
pub fn list_edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> u32 {
    generic_edit_distance(a, b)
}

/// Threshold check with early termination: returns `Some(d)` with the exact
/// distance if `d <= k`, or `None` if the distance exceeds `k` (possibly
/// terminating long before the full table is filled).
pub fn edit_distance_check(a: &str, b: &str, k: u32) -> Option<u32> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    generic_edit_distance_check(&a, &b, k)
}

/// Threshold-checked edit distance on ordered lists.
pub fn list_edit_distance_check<T: PartialEq>(a: &[T], b: &[T], k: u32) -> Option<u32> {
    generic_edit_distance_check(a, b, k)
}

/// Two-row dynamic program, O(m·n) time, O(min(m,n)) space.
fn generic_edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> u32 {
    // Keep the shorter sequence as the row to minimize memory.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let n = b.len();
    if n == 0 {
        return a.len() as u32;
    }
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, ai) in a.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for j in 1..=n {
            let cost = if *ai == b[j - 1] { 0 } else { 1 };
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Banded DP bounded by threshold `k`: only cells with `|i - j| <= k` can be
/// on an optimal path of cost `<= k`. Terminates early when an entire band
/// row exceeds `k`.
fn generic_edit_distance_check<T: PartialEq>(a: &[T], b: &[T], k: u32) -> Option<u32> {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let (m, n) = (a.len(), b.len());
    // Length filter: |m - n| is a lower bound on the distance.
    if (m - n) as u32 > k {
        return None;
    }
    if n == 0 {
        return if m as u32 <= k { Some(m as u32) } else { None };
    }
    let k = k as usize;
    // Any cell with |i - j| > k has D[i][j] >= |i - j| > k, so the band
    // outside is safely represented by `inf` = k + 1.
    let inf = (k + 1) as u32;
    // prev[j] = D[i-1][j] (inf outside the band).
    let mut prev: Vec<u32> = (0..=n)
        .map(|j| if j <= k { j as u32 } else { inf })
        .collect();
    let mut cur = vec![inf; n + 1];
    for i in 1..=m {
        let lo = i.saturating_sub(k).max(1);
        let hi = (i + k).min(n);
        cur[0] = if i <= k { i as u32 } else { inf };
        let mut row_min = cur[0];
        for j in lo..=hi {
            let cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let del = prev[j].saturating_add(1);
            let ins = cur[j - 1].saturating_add(1);
            let sub = prev[j - 1].saturating_add(cost);
            let v = del.min(ins).min(sub).min(inf);
            cur[j] = v;
            row_min = row_min.min(v);
        }
        if row_min >= inf {
            return None; // early termination: the whole band exceeded k
        }
        std::mem::swap(&mut prev, &mut cur);
        for x in cur.iter_mut() {
            *x = inf;
        }
    }
    let d = prev[n];
    if d <= k as u32 {
        Some(d)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        assert_eq!(edit_distance("james", "jamie"), 2);
        assert_eq!(edit_distance("marla", "maria"), 1);
    }

    #[test]
    fn basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(edit_distance("caé", "cae"), 1);
        assert_eq!(edit_distance("日本語", "日本"), 1);
    }

    #[test]
    fn list_distance_paper_example() {
        let a = ["Better", "than", "I", "expected"];
        let b = ["Better", "than", "expected"];
        assert_eq!(list_edit_distance(&a, &b), 1);
    }

    #[test]
    fn check_agrees_when_under_threshold() {
        assert_eq!(edit_distance_check("kitten", "sitting", 3), Some(3));
        assert_eq!(edit_distance_check("kitten", "sitting", 5), Some(3));
        assert_eq!(edit_distance_check("kitten", "sitting", 2), None);
    }

    #[test]
    fn check_zero_threshold() {
        assert_eq!(edit_distance_check("abc", "abc", 0), Some(0));
        assert_eq!(edit_distance_check("abc", "abd", 0), None);
    }

    #[test]
    fn check_length_filter() {
        // Length difference 5 > k=2: must reject without DP.
        assert_eq!(edit_distance_check("a", "abcdef", 2), None);
    }

    #[test]
    fn check_empty_sides() {
        assert_eq!(edit_distance_check("", "", 0), Some(0));
        assert_eq!(edit_distance_check("", "ab", 2), Some(2));
        assert_eq!(edit_distance_check("", "ab", 1), None);
    }

    #[test]
    fn list_check() {
        let a = [1, 2, 3, 4];
        let b = [1, 3, 4];
        assert_eq!(list_edit_distance_check(&a, &b, 1), Some(1));
        assert_eq!(list_edit_distance_check(&a, &b, 0), None);
    }

    proptest! {
        #[test]
        fn prop_symmetric(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn prop_triangle_inequality(a in "[a-b]{0,8}", b in "[a-b]{0,8}", c in "[a-b]{0,8}") {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_identity(a in "[a-z]{0,16}") {
            prop_assert_eq!(edit_distance(&a, &a), 0);
        }

        #[test]
        fn prop_check_matches_exact(a in "[a-c]{0,10}", b in "[a-c]{0,10}", k in 0u32..6) {
            let exact = edit_distance(&a, &b);
            let checked = edit_distance_check(&a, &b, k);
            if exact <= k {
                prop_assert_eq!(checked, Some(exact));
            } else {
                prop_assert_eq!(checked, None);
            }
        }

        #[test]
        fn prop_length_diff_lower_bound(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            let d = edit_distance(&a, &b) as i64;
            let ld = (a.chars().count() as i64 - b.chars().count() as i64).abs();
            prop_assert!(d >= ld);
        }

        #[test]
        fn prop_string_equals_char_list(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            let la: Vec<char> = a.chars().collect();
            let lb: Vec<char> = b.chars().collect();
            prop_assert_eq!(edit_distance(&a, &b), list_edit_distance(&la, &lb));
        }
    }
}
