//! Set-similarity measures: Jaccard (the paper's focus), dice, and cosine.
//!
//! Set semantics follow the paper's worked example (§2.1):
//! `J({Good, Product, Value}, {Nice, Product}) = 1/4` — duplicate elements
//! are collapsed. All functions accept unsorted inputs; internally they
//! operate on sorted, deduplicated views so the intersection is a linear
//! merge. [`jaccard_check`] is the early-terminating variant referenced in
//! §6.3.1 ("optimizations such as early termination and pruning based on
//! string lengths"): it applies the length filter `δ·|r| ≤ |s| ≤ |r|/δ`
//! first and abandons the merge as soon as the remaining elements cannot
//! reach the threshold.

use std::cmp::Ordering;

/// Sorted, deduplicated copy of `items`.
fn canonical<T: Ord + Clone>(items: &[T]) -> Vec<T> {
    let mut v = items.to_vec();
    v.sort();
    v.dedup();
    v
}

/// Intersection size of two sorted, deduplicated slices (linear merge).
fn intersection_size<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity `|r ∩ s| / |r ∪ s|` with set semantics.
///
/// Two empty sets have similarity 1 (they are identical).
///
/// ```
/// use asterix_simfn::jaccard;
/// let r = ["Good", "Product", "Value"];
/// let s = ["Nice", "Product"];
/// assert!((jaccard(&r, &s) - 0.25).abs() < 1e-12); // the paper's example
/// ```
pub fn jaccard<T: Ord + Clone>(r: &[T], s: &[T]) -> f64 {
    let r = canonical(r);
    let s = canonical(s);
    if r.is_empty() && s.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(&r, &s);
    let union = r.len() + s.len() - inter;
    inter as f64 / union as f64
}

/// Dice coefficient `2|r ∩ s| / (|r| + |s|)` with set semantics.
pub fn dice<T: Ord + Clone>(r: &[T], s: &[T]) -> f64 {
    let r = canonical(r);
    let s = canonical(s);
    if r.is_empty() && s.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(&r, &s);
    2.0 * inter as f64 / (r.len() + s.len()) as f64
}

/// Cosine similarity `|r ∩ s| / sqrt(|r| · |s|)` with set semantics.
pub fn cosine<T: Ord + Clone>(r: &[T], s: &[T]) -> f64 {
    let r = canonical(r);
    let s = canonical(s);
    if r.is_empty() && s.is_empty() {
        return 1.0;
    }
    if r.is_empty() || s.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(&r, &s);
    inter as f64 / ((r.len() as f64) * (s.len() as f64)).sqrt()
}

/// Intersection size of two sorted, deduplicated `u32` id slices — the
/// vectorized-verify form, used once token strings have been interned to
/// dense ids. Falls back to a linear merge when the lengths are comparable
/// and switches to galloping (exponential probes into the longer side) when
/// they are skewed, so a short probe set against a long candidate set costs
/// `O(|short| · log |long|)`.
pub fn intersection_size_u32(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() < 8 {
        // Comparable sizes: a plain merge has better constants.
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        return n;
    }
    let (mut n, mut base) = (0usize, 0usize);
    for &x in small {
        base += gallop_lower_bound(&large[base..], x);
        if base < large.len() && large[base] == x {
            n += 1;
            base += 1;
        }
        if base >= large.len() {
            break;
        }
    }
    n
}

/// First index in sorted `s` whose value is `>= x` (exponential search then
/// binary search — cheap when the answer is near the front, as it is when
/// galloping through an intersection).
fn gallop_lower_bound(s: &[u32], x: u32) -> usize {
    if s.is_empty() || s[0] >= x {
        return 0;
    }
    let mut hi = 1;
    while hi < s.len() && s[hi] < x {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(s.len());
    lo + s[lo..hi].partition_point(|&v| v < x)
}

/// A `u64`-bitset membership view of one sorted, deduplicated id set, for
/// verifying many candidates against a single probe side: build once per
/// probe (`O(universe/64 + |ids|)`), then each candidate costs one bit test
/// per element instead of a merge.
#[derive(Debug, Clone)]
pub struct TokenBitset {
    bits: Vec<u64>,
    len: usize,
}

impl TokenBitset {
    /// Build from sorted distinct ids drawn from `0..universe`.
    pub fn build(ids: &[u32], universe: usize) -> Self {
        let mut bits = vec![0u64; universe.div_ceil(64)];
        for &id in ids {
            bits[id as usize / 64] |= 1u64 << (id % 64);
        }
        TokenBitset { bits, len: ids.len() }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test for a single id.
    pub fn contains(&self, id: u32) -> bool {
        self.bits
            .get(id as usize / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// `|self ∩ other|` for a deduplicated id slice `other`.
    pub fn intersection_size(&self, other: &[u32]) -> usize {
        other.iter().filter(|&&id| self.contains(id)).count()
    }
}

/// Jaccard similarity from set cardinalities and an intersection count,
/// with exactly the arithmetic of [`jaccard`] (`1.0` for two empty sets,
/// else `inter / (la + lb - inter)` in `f64`) — so the interned-id kernel
/// is bit-identical to the scalar path.
pub fn jaccard_from_counts(la: usize, lb: usize, inter: usize) -> f64 {
    if la == 0 && lb == 0 {
        1.0
    } else {
        inter as f64 / (la + lb - inter) as f64
    }
}

/// Early-terminating Jaccard threshold check: returns `Some(sim)` iff
/// `jaccard(r, s) >= delta`.
///
/// Applies the length filter first (`δ·|r| ≤ |s| ≤ |r|/δ` on deduplicated
/// sizes), then merges with an upper-bound cutoff: if even matching all
/// remaining elements cannot reach `δ`, the merge stops.
pub fn jaccard_check<T: Ord + Clone>(r: &[T], s: &[T], delta: f64) -> Option<f64> {
    let r = canonical(r);
    let s = canonical(s);
    jaccard_check_sorted(&r, &s, delta)
}

/// Like [`jaccard_check`] but requires both inputs already sorted and
/// deduplicated (the three-stage join path keeps token lists in this form).
pub fn jaccard_check_sorted<T: Ord>(r: &[T], s: &[T], delta: f64) -> Option<f64> {
    if r.is_empty() && s.is_empty() {
        return if delta <= 1.0 { Some(1.0) } else { None };
    }
    if r.is_empty() || s.is_empty() {
        return if delta <= 0.0 { Some(0.0) } else { None };
    }
    let (lr, ls) = (r.len() as f64, s.len() as f64);
    // Length filter: J(r,s) <= min(|r|,|s|) / max(|r|,|s|).
    if delta > 0.0 && lr.min(ls) / lr.max(ls) < delta - 1e-12 {
        return None;
    }
    // Required intersection size: inter / (|r|+|s|-inter) >= δ
    //   ⇔ inter >= δ(|r|+|s|) / (1+δ).
    let required = (delta * (lr + ls) / (1.0 + delta) - 1e-9).ceil().max(0.0) as usize;
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < r.len() && j < s.len() {
        // Upper bound on achievable intersection from here on.
        let rest = (r.len() - i).min(s.len() - j);
        if inter + rest < required {
            return None; // early termination
        }
        match r[i].cmp(&s[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let sim = inter as f64 / (r.len() + s.len() - inter) as f64;
    if sim >= delta - 1e-12 {
        Some(sim)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        let r = ["Good", "Product", "Value"];
        let s = ["Nice", "Product"];
        assert!((jaccard(&r, &s) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identical_sets() {
        assert_eq!(jaccard(&[1, 2, 3], &[3, 2, 1]), 1.0);
        assert_eq!(dice(&[1, 2], &[2, 1]), 1.0);
        assert_eq!(cosine(&[1], &[1]), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(dice(&[1], &[2]), 0.0);
        assert_eq!(cosine(&[1], &[2]), 0.0);
    }

    #[test]
    fn duplicates_collapsed() {
        // {a,a,b} vs {a,b,b} are both {a,b}.
        assert_eq!(jaccard(&["a", "a", "b"], &["a", "b", "b"]), 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(jaccard::<i32>(&[], &[]), 1.0);
        assert_eq!(jaccard(&[], &[1]), 0.0);
        assert_eq!(cosine(&[], &[1]), 0.0);
    }

    #[test]
    fn check_accepts_and_rejects() {
        let r = ["good", "product", "value"];
        let s = ["nice", "product"];
        assert!(jaccard_check(&r, &s, 0.25).is_some());
        assert!(jaccard_check(&r, &s, 0.26).is_none());
        assert_eq!(jaccard_check(&r, &s, 0.2), Some(0.25));
    }

    #[test]
    fn check_length_filter_rejects_fast() {
        let r: Vec<i32> = (0..100).collect();
        let s = [0];
        // min/max = 1/100 < 0.5, rejected by the length filter.
        assert!(jaccard_check(&r, &s, 0.5).is_none());
    }

    #[test]
    fn check_zero_threshold_accepts_all() {
        assert!(jaccard_check(&[1], &[2], 0.0).is_some());
    }

    #[test]
    fn dice_cosine_bounds() {
        let r = [1, 2, 3];
        let s = [2, 3, 4, 5];
        let d = dice(&r, &s);
        let c = cosine(&r, &s);
        assert!((0.0..=1.0).contains(&d));
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn gallop_finds_lower_bounds() {
        let s = [2u32, 4, 4, 8, 16, 32];
        assert_eq!(gallop_lower_bound(&s, 0), 0);
        assert_eq!(gallop_lower_bound(&s, 5), 3);
        assert_eq!(gallop_lower_bound(&s, 32), 5);
        assert_eq!(gallop_lower_bound(&s, 33), 6);
        assert_eq!(gallop_lower_bound(&[], 7), 0);
    }

    #[test]
    fn u32_intersection_skewed_uses_galloping_path() {
        let small: Vec<u32> = vec![3, 500, 999];
        let large: Vec<u32> = (0..1000).collect();
        assert_eq!(intersection_size_u32(&small, &large), 3);
        assert_eq!(intersection_size_u32(&large, &small), 3);
        assert_eq!(intersection_size_u32(&[], &large), 0);
    }

    #[test]
    fn bitset_membership_and_counts() {
        let ids = [1u32, 63, 64, 130];
        let bs = TokenBitset::build(&ids, 131);
        assert_eq!(bs.len(), 4);
        assert!(!bs.is_empty());
        for &id in &ids {
            assert!(bs.contains(id));
        }
        assert!(!bs.contains(2));
        assert!(!bs.contains(1000)); // out of universe: false, no panic
        assert_eq!(bs.intersection_size(&[0, 1, 64, 999]), 2);
        assert!(TokenBitset::build(&[], 0).is_empty());
    }

    proptest! {
        /// Vectorized ≡ scalar: galloping/merge u32 intersection and the
        /// bitset probe both agree with the generic sorted merge.
        #[test]
        fn prop_u32_kernels_match_scalar_intersection(
            r in prop::collection::btree_set(0u32..300, 0..40),
            s in prop::collection::btree_set(0u32..300, 0..40),
        ) {
            let r: Vec<u32> = r.into_iter().collect();
            let s: Vec<u32> = s.into_iter().collect();
            let expect = intersection_size(&r, &s);
            prop_assert_eq!(intersection_size_u32(&r, &s), expect);
            let bs = TokenBitset::build(&r, 300);
            prop_assert_eq!(bs.intersection_size(&s), expect);
        }

        /// Vectorized ≡ scalar: Jaccard from interned-id counts is
        /// bit-identical to the string/value Jaccard.
        #[test]
        fn prop_jaccard_from_counts_matches_jaccard(
            r in prop::collection::vec(0u8..20, 0..16),
            s in prop::collection::vec(0u8..20, 0..16),
        ) {
            let rc = canonical(&r);
            let sc = canonical(&s);
            let inter = intersection_size(&rc, &sc);
            let fast = jaccard_from_counts(rc.len(), sc.len(), inter);
            prop_assert_eq!(fast, jaccard(&r, &s));
        }

        #[test]
        fn prop_jaccard_symmetric(r in prop::collection::vec(0u8..20, 0..16),
                                  s in prop::collection::vec(0u8..20, 0..16)) {
            prop_assert_eq!(jaccard(&r, &s), jaccard(&s, &r));
        }

        #[test]
        fn prop_jaccard_in_unit_interval(r in prop::collection::vec(0u8..20, 0..16),
                                         s in prop::collection::vec(0u8..20, 0..16)) {
            let j = jaccard(&r, &s);
            prop_assert!((0.0..=1.0).contains(&j));
        }

        #[test]
        fn prop_check_agrees_with_exact(r in prop::collection::vec(0u8..12, 0..12),
                                        s in prop::collection::vec(0u8..12, 0..12),
                                        delta in 0.0f64..1.0) {
            let exact = jaccard(&r, &s);
            match jaccard_check(&r, &s, delta) {
                Some(sim) => {
                    prop_assert!((sim - exact).abs() < 1e-9);
                    prop_assert!(exact >= delta - 1e-9);
                }
                None => prop_assert!(exact < delta + 1e-9),
            }
        }

        #[test]
        fn prop_jaccard_le_dice(r in prop::collection::vec(0u8..10, 0..12),
                                s in prop::collection::vec(0u8..10, 0..12)) {
            // Dice >= Jaccard always.
            prop_assert!(dice(&r, &s) >= jaccard(&r, &s) - 1e-12);
        }
    }
}
