//! A fast, non-cryptographic hasher for the hot kernel caches.
//!
//! The vectorized verify kernels and the postings cache key their memo
//! tables by token/probe strings that are re-hashed once or twice per
//! candidate row. The standard-library default (SipHash 1-3) is keyed and
//! DoS-resistant but costs ~1 ns/byte, which is measurable at millions of
//! 40–80 byte probes per query. This module provides the classic
//! Fx multiply-rotate hash (as used by rustc) for those *bounded,
//! process-internal* caches: entries are capped by an LRU clock, so
//! adversarial collision growth is not a concern there.
//!
//! Do **not** use this hasher for maps keyed by unbounded user data.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc Fx hash (64-bit golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hashing state: one `u64` folded with multiply-rotate per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" (as a 3-byte write)
            // cannot collide trivially.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (bytes.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The raw Fx state concentrates entropy in the high bits (each
        // fold ends in a multiply); hash tables index buckets with the
        // *low* bits. One more multiply plus an xor-fold of the high half
        // spreads the state across all 64 bits.
        let h = self.hash.wrapping_mul(SEED);
        h ^ (h >> 32)
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]; drop-in for bounded internal caches.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&"good product"), hash_of(&"good product"));
        assert_ne!(hash_of(&"good product"), hash_of(&"good process"));
        assert_ne!(hash_of(&""), hash_of(&"a"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&12345u64), hash_of(&12346u64));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("token-{i}"), i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&format!("token-{i}")), Some(&i));
        }
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("a");
        assert!(s.contains("a") && !s.contains("b"));
    }

    #[test]
    fn spread_is_reasonable_on_short_strings() {
        // 4096 distinct short tokens should not collapse into a handful of
        // buckets under the low 12 bits (what a 4096-slot table uses).
        let mut buckets = std::collections::HashSet::new();
        for i in 0..4096 {
            buckets.insert(hash_of(&format!("w{i}")) & 0xfff);
        }
        assert!(buckets.len() > 2500, "low-bit spread {}", buckets.len());
    }
}
