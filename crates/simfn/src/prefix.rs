//! Prefix filtering (§1.1, §4.2.2): two sets can reach a Jaccard threshold
//! only if their *prefixes* under a global token order share an element.
//!
//! The three-stage join (Stage 1) establishes a global token order — we
//! implement the paper's choice, increasing token frequency ("which tends to
//! generate fewer candidate pairs [34]") — and Stage 2 extracts each
//! record's prefix with `prefix-len-jaccard()` + `subset-collection()`,
//! which are reproduced here verbatim as library functions.

use std::collections::HashMap;
use std::hash::Hash;

/// Length of the prefix that must be indexed/probed for Jaccard threshold
/// `delta` on a (deduplicated) token set of size `len`:
/// `min(len, len - ceil(delta * len) + 1)`.
///
/// Any two sets r, s with `J(r,s) >= delta` must share at least one token
/// within their first `prefix_len_jaccard(|·|, delta)` tokens under a common
/// global order. The result is clamped to `len` — for `delta <= 1/len` the
/// raw formula yields `len + 1`, an out-of-range prefix length (the whole
/// set already is the prefix).
pub fn prefix_len_jaccard(len: usize, delta: f64) -> usize {
    if len == 0 {
        return 0;
    }
    let required = (delta * len as f64 - 1e-9).ceil().max(0.0) as usize;
    (len - required.min(len) + 1).min(len)
}

/// AQL's `subset-collection(list, start, count)` — the contiguous slice
/// used to take the prefix of a ranked token list (clamped to bounds).
pub fn subset_collection<T: Clone>(list: &[T], start: usize, count: usize) -> Vec<T> {
    if start >= list.len() {
        return Vec::new();
    }
    let end = (start + count).min(list.len());
    list[start..end].to_vec()
}

/// A global token order: token → rank. Stage 2 sorts each record's tokens
/// by rank before prefix extraction.
#[derive(Clone, Debug, Default)]
pub struct TokenOrder<T: Eq + Hash> {
    ranks: HashMap<T, u32>,
}

impl<T: Eq + Hash + Clone + Ord> TokenOrder<T> {
    /// Build the increasing-frequency order from `(token, count)` pairs.
    /// Ties are broken by the token itself (the paper's
    /// `order by count($id), $tokenGrouped`).
    pub fn from_counts(counts: impl IntoIterator<Item = (T, usize)>) -> Self {
        let mut pairs: Vec<(T, usize)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let ranks = pairs
            .into_iter()
            .enumerate()
            .map(|(rank, (tok, _))| (tok, rank as u32))
            .collect();
        TokenOrder { ranks }
    }

    /// Build an arbitrary (insertion) order — the ablation baseline for the
    /// §4.2.2 claim that frequency order beats arbitrary order.
    pub fn arbitrary(tokens: impl IntoIterator<Item = T>) -> Self {
        let mut ranks = HashMap::new();
        let mut next = 0u32;
        for t in tokens {
            ranks.entry(t).or_insert_with(|| {
                let r = next;
                next += 1;
                r
            });
        }
        TokenOrder { ranks }
    }

    pub fn rank(&self, token: &T) -> Option<u32> {
        self.ranks.get(token).copied()
    }

    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Map a record's distinct tokens to their sorted ranks (tokens absent
    /// from the order are dropped, matching the join-with-ranks semantics
    /// of the AQL in Fig 11).
    pub fn ranked(&self, tokens: &[T]) -> Vec<u32> {
        let mut ranks: Vec<u32> = tokens.iter().filter_map(|t| self.rank(t)).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// The prefix of a record's ranked tokens for a Jaccard threshold.
    pub fn prefix(&self, tokens: &[T], delta: f64) -> Vec<u32> {
        let ranked = self.ranked(tokens);
        let plen = prefix_len_jaccard(ranked.len(), delta);
        subset_collection(&ranked, 0, plen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard;
    use proptest::prelude::*;

    #[test]
    fn prefix_len_formula() {
        // len 4, delta 0.5 -> required overlap 2 -> prefix 3.
        assert_eq!(prefix_len_jaccard(4, 0.5), 3);
        assert_eq!(prefix_len_jaccard(10, 0.8), 3);
        assert_eq!(prefix_len_jaccard(0, 0.5), 0);
        assert_eq!(prefix_len_jaccard(5, 0.0), 5); // delta 0: whole set, clamped in range
        assert_eq!(prefix_len_jaccard(1, 1.0), 1);
        assert_eq!(prefix_len_jaccard(1, 0.0), 1);
    }

    #[test]
    fn subset_collection_bounds() {
        let v = [1, 2, 3, 4];
        assert_eq!(subset_collection(&v, 0, 2), vec![1, 2]);
        assert_eq!(subset_collection(&v, 2, 10), vec![3, 4]);
        assert_eq!(subset_collection(&v, 9, 2), Vec::<i32>::new());
        assert_eq!(subset_collection(&v, 0, 0), Vec::<i32>::new());
    }

    #[test]
    fn frequency_order_ranks_rare_first() {
        let order =
            TokenOrder::from_counts(vec![("common", 100usize), ("rare", 1), ("mid", 10)]);
        assert!(order.rank(&"rare").unwrap() < order.rank(&"mid").unwrap());
        assert!(order.rank(&"mid").unwrap() < order.rank(&"common").unwrap());
    }

    #[test]
    fn ranked_sorted_dedup() {
        let order = TokenOrder::from_counts(vec![("a", 1usize), ("b", 2), ("c", 3)]);
        let ranked = order.ranked(&["c", "a", "c", "zzz-unknown"]);
        assert_eq!(ranked, order.ranked(&["a", "c"]));
        assert!(ranked.windows(2).all(|w| w[0] < w[1]));
    }

    proptest! {
        /// The prefix-filter completeness property: if J(r, s) >= delta then
        /// their prefixes under a shared order intersect.
        #[test]
        fn prop_prefix_filter_complete(
            r in prop::collection::hash_set(0u8..30, 1..12),
            s in prop::collection::hash_set(0u8..30, 1..12),
            delta in 0.05f64..1.0,
        ) {
            let r: Vec<u8> = r.into_iter().collect();
            let s: Vec<u8> = s.into_iter().collect();
            let all: Vec<(u8, usize)> = (0u8..30).map(|t| (t, (t as usize) + 1)).collect();
            let order = TokenOrder::from_counts(all);
            if jaccard(&r, &s) >= delta {
                let pr = order.prefix(&r, delta);
                let ps = order.prefix(&s, delta);
                let shared = pr.iter().any(|x| ps.contains(x));
                prop_assert!(shared, "prefixes must share a token: {pr:?} vs {ps:?}");
            }
        }

        #[test]
        fn prop_prefix_len_bounds(len in 0usize..200, delta in 0.0f64..=1.0) {
            let p = prefix_len_jaccard(len, delta);
            if len == 0 {
                prop_assert_eq!(p, 0);
            } else {
                prop_assert!(p >= 1);
                prop_assert!(p <= len, "prefix length must be a valid in-range length");
                prop_assert!(p <= (len + 1 - ((delta * len as f64).ceil() as usize).min(len)).min(len));
            }
        }
    }
}
