//! # asterix-simfn
//!
//! The similarity-function library of the reproduction: everything §2
//! ("Preliminaries") and §3.1 ("Supported Similarity Measures") of
//! *Supporting Similarity Queries in Apache AsterixDB* (EDBT 2018) relies
//! on:
//!
//! * [`edit_distance`] — Levenshtein distance on strings *and* on ordered
//!   lists (the paper's extension: a string is an ordered list of
//!   characters), with a banded, early-terminating threshold check used in
//!   verification,
//! * [`jaccard`] — set-semantics Jaccard (the paper's worked example:
//!   J({Good, Product, Value}, {Nice, Product}) = 1/4), plus dice and
//!   cosine, with a length-filtered, early-terminating check,
//! * [`tokenize`] — `word-tokens()` and `gram-tokens(n)` tokenizers,
//! * [`prefix`] — prefix-filtering helpers (`prefix-len-jaccard()`,
//!   `subset-collection()`, global token orders),
//! * [`toccurrence`] — the *T-occurrence problem* (§2.2): lower bounds and
//!   inverted-list merge algorithms (ScanCount, heap merge),
//! * [`registry`] — the similarity-function registry, including user-defined
//!   functions (§3.1's UDF support),
//! * [`fxhash`] — the fast multiply-rotate hasher used by the bounded
//!   kernel-side memo caches.

pub mod edit_distance;
pub mod fxhash;
pub mod jaccard;
pub mod prefix;
pub mod registry;
pub mod string_extra;
pub mod toccurrence;
pub mod tokenize;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};

pub use edit_distance::{
    edit_distance, edit_distance_check, edit_distance_check_chars,
    edit_distance_check_chars_scalar, edit_distance_check_slices, list_edit_distance, EdScratch,
};
pub use jaccard::{
    cosine, dice, intersection_size_u32, jaccard, jaccard_check, jaccard_from_counts, TokenBitset,
};
pub use prefix::{prefix_len_jaccard, subset_collection};
pub use registry::{FunctionRegistry, SimilarityMeasure};
pub use string_extra::{hamming_distance, jaro, jaro_winkler, overlap_coefficient};
pub use toccurrence::{
    divide_skip_choose_l, edit_distance_t_bound, jaccard_t_bound, t_occurrence_divide_skip,
    t_occurrence_divide_skip_ranks, t_occurrence_divide_skip_with_stats, t_occurrence_heap,
    t_occurrence_intersect, t_occurrence_ranks, t_occurrence_scan_count, DivideSkipStats,
    IntersectScratch, RankCountScratch, GALLOP_SKEW_RATIO,
};
pub use tokenize::{gram_tokens, word_tokens};
