//! Error type shared by the ADM layer.

use std::fmt;

/// Errors raised by the data-model layer (decoding, JSON import, dataset
/// definition problems).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmError {
    /// Binary decoding failed (corrupt page / truncated buffer).
    Decode(String),
    /// JSON import failed.
    Json(String),
    /// Dataset/schema misuse (duplicate index, missing primary key, ...).
    Schema(String),
}

impl fmt::Display for AdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmError::Decode(m) => write!(f, "decode error: {m}"),
            AdmError::Json(m) => write!(f, "json error: {m}"),
            AdmError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for AdmError {}
