//! Compact binary serialization for [`Value`], used by the storage layer
//! (records in LSM pages) and by the stable hash.
//!
//! The encoding is a type-tag byte followed by a payload:
//!
//! ```text
//! missing        : 0x00
//! null           : 0x01
//! boolean        : 0x02 u8
//! int64          : 0x03 i64-le
//! double         : 0x04 f64-bits-le
//! string         : 0x05 varlen bytes
//! ordered list   : 0x06 varlen count, items
//! unordered list : 0x07 varlen count, items
//! record         : 0x08 varlen count, (varlen name, value)*
//! ```
//!
//! Lengths use LEB128-style varints to keep short strings (the common case
//! for tokens and names) at 1 length byte.

use crate::error::AdmError;
use crate::value::{OrderedF64, Value};
use crate::Fnv1a;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TAG_MISSING: u8 = 0x00;
const TAG_NULL: u8 = 0x01;
const TAG_BOOLEAN: u8 = 0x02;
const TAG_INT64: u8 = 0x03;
const TAG_DOUBLE: u8 = 0x04;
const TAG_STRING: u8 = 0x05;
const TAG_ORDERED_LIST: u8 = 0x06;
const TAG_UNORDERED_LIST: u8 = 0x07;
const TAG_RECORD: u8 = 0x08;

/// Encode `v` into `out`.
pub fn encode_value(v: &Value, out: &mut BytesMut) {
    match v {
        Value::Missing => out.put_u8(TAG_MISSING),
        Value::Null => out.put_u8(TAG_NULL),
        Value::Boolean(b) => {
            out.put_u8(TAG_BOOLEAN);
            out.put_u8(*b as u8);
        }
        Value::Int64(i) => {
            out.put_u8(TAG_INT64);
            out.put_i64_le(*i);
        }
        Value::Double(d) => {
            out.put_u8(TAG_DOUBLE);
            out.put_u64_le(d.0.to_bits());
        }
        Value::String(s) => {
            out.put_u8(TAG_STRING);
            put_varint(out, s.len() as u64);
            out.put_slice(s.as_bytes());
        }
        Value::OrderedList(items) => {
            out.put_u8(TAG_ORDERED_LIST);
            put_varint(out, items.len() as u64);
            for it in items {
                encode_value(it, out);
            }
        }
        Value::UnorderedList(items) => {
            out.put_u8(TAG_UNORDERED_LIST);
            put_varint(out, items.len() as u64);
            for it in items {
                encode_value(it, out);
            }
        }
        Value::Record(fields) => {
            out.put_u8(TAG_RECORD);
            put_varint(out, fields.len() as u64);
            for (name, val) in fields {
                put_varint(out, name.len() as u64);
                out.put_slice(name.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

/// Encode to a standalone buffer.
pub fn to_bytes(v: &Value) -> Bytes {
    let mut out = BytesMut::with_capacity(v.heap_size() + 8);
    encode_value(v, &mut out);
    out.freeze()
}

/// Decode a single value, consuming from `buf`.
pub fn decode_value(buf: &mut impl Buf) -> Result<Value, AdmError> {
    if !buf.has_remaining() {
        return Err(AdmError::Decode("empty buffer".into()));
    }
    let tag = buf.get_u8();
    match tag {
        TAG_MISSING => Ok(Value::Missing),
        TAG_NULL => Ok(Value::Null),
        TAG_BOOLEAN => {
            need(buf, 1)?;
            Ok(Value::Boolean(buf.get_u8() != 0))
        }
        TAG_INT64 => {
            need(buf, 8)?;
            Ok(Value::Int64(buf.get_i64_le()))
        }
        TAG_DOUBLE => {
            need(buf, 8)?;
            Ok(Value::Double(OrderedF64(f64::from_bits(buf.get_u64_le()))))
        }
        TAG_STRING => {
            let n = get_varint(buf)? as usize;
            need(buf, n)?;
            let mut bytes = vec![0u8; n];
            buf.copy_to_slice(&mut bytes);
            String::from_utf8(bytes)
                .map(Value::String)
                .map_err(|e| AdmError::Decode(format!("bad utf8: {e}")))
        }
        TAG_ORDERED_LIST | TAG_UNORDERED_LIST => {
            let n = get_varint(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            if tag == TAG_ORDERED_LIST {
                Ok(Value::OrderedList(items))
            } else {
                Ok(Value::UnorderedList(items))
            }
        }
        TAG_RECORD => {
            let n = get_varint(buf)? as usize;
            let mut fields = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let len = get_varint(buf)? as usize;
                need(buf, len)?;
                let mut name = vec![0u8; len];
                buf.copy_to_slice(&mut name);
                let name = String::from_utf8(name)
                    .map_err(|e| AdmError::Decode(format!("bad utf8 field name: {e}")))?;
                let val = decode_value(buf)?;
                fields.push((name, val));
            }
            // Encoded records are already canonical (sorted); trust but keep
            // semantics by re-canonicalizing.
            Ok(Value::record(fields))
        }
        other => Err(AdmError::Decode(format!("unknown tag 0x{other:02x}"))),
    }
}

/// Decode from a standalone buffer.
pub fn from_bytes(mut bytes: &[u8]) -> Result<Value, AdmError> {
    decode_value(&mut bytes)
}

/// Feed the canonical encoding of `v` into a hasher without allocating.
pub fn hash_value(v: &Value, h: &mut Fnv1a) {
    match v {
        Value::Missing => h.write_u8(TAG_MISSING),
        Value::Null => h.write_u8(TAG_NULL),
        Value::Boolean(b) => {
            h.write_u8(TAG_BOOLEAN);
            h.write_u8(*b as u8);
        }
        Value::Int64(i) => {
            h.write_u8(TAG_INT64);
            h.write(&i.to_le_bytes());
        }
        Value::Double(d) => {
            // Hash doubles that are exact integers as Int64 so that
            // Int64(2) and Double(2.0) land in the same hash-join bucket
            // (they compare numerically equal at the `==` level).
            if d.0.fract() == 0.0 && d.0.abs() < (i64::MAX as f64) {
                h.write_u8(TAG_INT64);
                h.write(&(d.0 as i64).to_le_bytes());
            } else {
                h.write_u8(TAG_DOUBLE);
                h.write(&d.0.to_bits().to_le_bytes());
            }
        }
        Value::String(s) => {
            h.write_u8(TAG_STRING);
            h.write(&(s.len() as u64).to_le_bytes());
            h.write(s.as_bytes());
        }
        Value::OrderedList(items) | Value::UnorderedList(items) => {
            h.write_u8(if matches!(v, Value::OrderedList(_)) {
                TAG_ORDERED_LIST
            } else {
                TAG_UNORDERED_LIST
            });
            h.write(&(items.len() as u64).to_le_bytes());
            for it in items {
                hash_value(it, h);
            }
        }
        Value::Record(fields) => {
            h.write_u8(TAG_RECORD);
            h.write(&(fields.len() as u64).to_le_bytes());
            for (name, val) in fields {
                h.write(name.as_bytes());
                h.write_u8(0);
                hash_value(val, h);
            }
        }
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), AdmError> {
    if buf.remaining() < n {
        Err(AdmError::Decode(format!(
            "need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn put_varint(out: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut impl Buf) -> Result<u64, AdmError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(AdmError::Decode("truncated varint".into()));
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(AdmError::Decode("varint overflow".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: &Value) {
        let bytes = to_bytes(v);
        let back = from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn roundtrip_scalars() {
        roundtrip(&Value::Missing);
        roundtrip(&Value::Null);
        roundtrip(&Value::Boolean(true));
        roundtrip(&Value::Int64(-42));
        roundtrip(&Value::double(3.5));
        roundtrip(&Value::from("héllo ✓"));
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::record(vec![
            (
                "tags".into(),
                Value::OrderedList(vec![Value::from("a"), Value::from("b")]),
            ),
            (
                "who".into(),
                Value::record(vec![("name".into(), Value::from("ada"))]),
            ),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(from_bytes(&[0xff, 0x00]).is_err());
        assert!(from_bytes(&[]).is_err());
        // Truncated string
        assert!(from_bytes(&[TAG_STRING, 5, b'a']).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut out = BytesMut::new();
            put_varint(&mut out, v);
            let mut slice: &[u8] = &out;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn int_double_hash_join_compat() {
        use crate::stable_hash;
        assert_eq!(
            stable_hash(&Value::Int64(7)),
            stable_hash(&Value::double(7.0))
        );
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            Just(Value::Missing),
            any::<bool>().prop_map(Value::Boolean),
            any::<i64>().prop_map(Value::Int64),
            any::<f64>().prop_map(Value::double),
            "[a-zA-Z0-9 ]{0,24}".prop_map(Value::from),
        ];
        leaf.prop_recursive(3, 24, 6, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::OrderedList),
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::unordered_list),
                prop::collection::vec(("[a-z]{1,8}", inner), 0..6)
                    .prop_map(|fs| Value::record(fs.into_iter().collect())),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in arb_value()) {
            roundtrip(&v);
        }

        #[test]
        fn prop_hash_agrees_with_eq(a in arb_value(), b in arb_value()) {
            use crate::stable_hash;
            if a == b {
                prop_assert_eq!(stable_hash(&a), stable_hash(&b));
            }
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            let _ = from_bytes(&bytes);
        }
    }
}
