//! # asterix-adm
//!
//! The ADM (Asterix Data Model) substrate: a semi-structured, JSON-superset
//! data model with ordered lists, unordered lists (multisets), and open
//! records, mirroring the data model layer of Apache AsterixDB described in
//! §2.3 of *Supporting Similarity Queries in Apache AsterixDB* (EDBT 2018).
//!
//! The crate provides:
//!
//! * [`Value`] — the runtime value representation used throughout the engine,
//!   with a total order (so values can be sort keys and B+-tree keys),
//! * [`value::ValueKind`] — type tags used by the expression type checker,
//! * binary serialization ([`binary`]) used by the storage layer,
//! * JSON import/export ([`json`]) used to load the paper's JSON datasets,
//! * dataset/partitioning metadata ([`dataset`]) — every dataset is
//!   hash-partitioned on its primary key across node partitions, exactly as
//!   in the paper's shared-nothing setup.

pub mod binary;
pub mod dataset;
pub mod error;
pub mod json;
pub mod value;

pub use dataset::{DatasetDef, FieldDef, IndexDef, IndexKind, PartitionId};
pub use error::AdmError;
pub use value::{Value, ValueKind};

/// Hash a value for hash-partitioning / hash joins.
///
/// Uses FNV-1a over the binary encoding so that the hash is stable across
/// processes and partitions (connectors on different "nodes" must agree).
pub fn stable_hash(v: &Value) -> u64 {
    let mut h = Fnv1a::new();
    binary::hash_value(v, &mut h);
    h.finish()
}

/// Hash a compound key (multiple columns) for repartitioning.
pub fn stable_hash_many(vs: &[&Value]) -> u64 {
    let mut h = Fnv1a::new();
    for v in vs {
        binary::hash_value(v, &mut h);
    }
    h.finish()
}

/// A tiny, dependency-free FNV-1a hasher with a stable (cross-process)
/// output, unlike `std::collections::hash_map::DefaultHasher`.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;

    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_stable() {
        let v = Value::from("hello world");
        assert_eq!(stable_hash(&v), stable_hash(&v.clone()));
    }

    #[test]
    fn stable_hash_differs() {
        assert_ne!(
            stable_hash(&Value::from("a")),
            stable_hash(&Value::from("b"))
        );
        assert_ne!(stable_hash(&Value::Int64(1)), stable_hash(&Value::Int64(2)));
    }

    #[test]
    fn compound_hash_order_sensitive() {
        let a = Value::from("a");
        let b = Value::from("b");
        assert_ne!(stable_hash_many(&[&a, &b]), stable_hash_many(&[&b, &a]));
    }
}
