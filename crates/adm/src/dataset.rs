//! Dataset and index metadata, and hash partitioning.
//!
//! Per §2.3 of the paper: every dataset has a unique primary key, records
//! are hash-partitioned across the cluster on the primary key, each
//! partition is an LSM B+-tree (the *primary index*), and secondary indexes
//! (B+-tree, `keyword`, `ngram(n)`) are partitioned the same way — i.e. they
//! are *local* indexes co-located with the primary partition, which is why
//! index-nested-loop joins must broadcast the outer side (§4.2.1).

use crate::error::AdmError;
use crate::value::Value;
use crate::{stable_hash, ValueKind};

/// Identifies one storage/execution partition of the simulated cluster.
pub type PartitionId = usize;

/// The kind of a secondary index (Fig 13's compatibility table keys off
/// this).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Plain B+-tree on a field value; baseline for exact-match queries.
    BTree,
    /// Inverted index on the word tokens of a string/list field — suitable
    /// for Jaccard (`keyword` index, §3.3).
    Keyword,
    /// Inverted index on the n-grams of a string field — suitable for edit
    /// distance (`ngram(n)` index, §3.3).
    NGram(usize),
}

impl IndexKind {
    pub fn name(&self) -> String {
        match self {
            IndexKind::BTree => "btree".into(),
            IndexKind::Keyword => "keyword".into(),
            IndexKind::NGram(n) => format!("ngram({n})"),
        }
    }
}

/// A secondary index definition (`create index ... on DS(field) type ...`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexDef {
    pub name: String,
    /// Dotted path of the indexed field (e.g. `user.name`).
    pub field: String,
    pub kind: IndexKind,
}

/// A declared field (datasets are open; only the primary key must exist).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub kind: ValueKind,
}

/// Dataset metadata.
#[derive(Clone, Debug)]
pub struct DatasetDef {
    pub name: String,
    /// Primary key field name (auto-generated at load when absent, §6.1).
    pub primary_key: String,
    pub fields: Vec<FieldDef>,
    pub indexes: Vec<IndexDef>,
}

impl DatasetDef {
    pub fn new(name: impl Into<String>, primary_key: impl Into<String>) -> Self {
        DatasetDef {
            name: name.into(),
            primary_key: primary_key.into(),
            fields: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// Register a secondary index; duplicate names are rejected.
    pub fn add_index(&mut self, def: IndexDef) -> Result<(), AdmError> {
        if self.indexes.iter().any(|i| i.name == def.name) {
            return Err(AdmError::Schema(format!(
                "index '{}' already exists on dataset '{}'",
                def.name, self.name
            )));
        }
        self.indexes.push(def);
        Ok(())
    }

    pub fn index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.iter().find(|i| i.name == name)
    }

    /// All indexes on a given field path.
    pub fn indexes_on<'a>(&'a self, field: &'a str) -> impl Iterator<Item = &'a IndexDef> + 'a {
        self.indexes.iter().filter(move |i| i.field == field)
    }

    /// Extract the primary key of `record`; error if missing (each record
    /// must carry a unique primary key).
    pub fn key_of(&self, record: &Value) -> Result<Value, AdmError> {
        let k = record.field_path(&self.primary_key);
        if k.is_unknown() {
            Err(AdmError::Schema(format!(
                "record lacks primary key '{}'",
                self.primary_key
            )))
        } else {
            Ok(k.clone())
        }
    }

    /// Which partition owns this primary key (hash partitioning, §2.3).
    pub fn partition_of(&self, key: &Value, num_partitions: usize) -> PartitionId {
        debug_assert!(num_partitions > 0);
        (stable_hash(key) % num_partitions as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_extraction() {
        let ds = DatasetDef::new("ARevs", "review-id");
        let rec = Value::record(vec![("review-id".into(), Value::Int64(7))]);
        assert_eq!(ds.key_of(&rec).unwrap(), Value::Int64(7));
        let bad = Value::record(vec![("x".into(), Value::Int64(7))]);
        assert!(ds.key_of(&bad).is_err());
    }

    #[test]
    fn partitioning_is_total_and_stable() {
        let ds = DatasetDef::new("d", "id");
        for i in 0..1000 {
            let k = Value::Int64(i);
            let p = ds.partition_of(&k, 8);
            assert!(p < 8);
            assert_eq!(p, ds.partition_of(&k, 8));
        }
    }

    #[test]
    fn partitioning_spreads() {
        let ds = DatasetDef::new("d", "id");
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[ds.partition_of(&Value::Int64(i), 4)] += 1;
        }
        for c in counts {
            // Roughly uniform: each partition should get 1000 ± 300.
            assert!((700..=1300).contains(&c), "skewed partitioning: {counts:?}");
        }
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut ds = DatasetDef::new("d", "id");
        ds.add_index(IndexDef {
            name: "nix".into(),
            field: "name".into(),
            kind: IndexKind::NGram(2),
        })
        .unwrap();
        assert!(ds
            .add_index(IndexDef {
                name: "nix".into(),
                field: "other".into(),
                kind: IndexKind::Keyword,
            })
            .is_err());
    }

    #[test]
    fn indexes_on_field() {
        let mut ds = DatasetDef::new("d", "id");
        ds.add_index(IndexDef {
            name: "a".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        ds.add_index(IndexDef {
            name: "b".into(),
            field: "summary".into(),
            kind: IndexKind::BTree,
        })
        .unwrap();
        assert_eq!(ds.indexes_on("summary").count(), 2);
        assert_eq!(ds.indexes_on("other").count(), 0);
    }
}
