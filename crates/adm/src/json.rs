//! JSON import/export for ADM values.
//!
//! The paper's datasets (Amazon reviews, Reddit submissions, tweets) are raw
//! JSON (§6.1, Table 3); records are loaded with an auto-generated primary
//! key and no further declared fields. This module converts between
//! `serde_json::Value` and [`Value`].

use crate::error::AdmError;
use crate::value::Value;

/// Convert a `serde_json::Value` into an ADM [`Value`].
///
/// JSON numbers become `Int64` when they are exact integers in range,
/// `Double` otherwise. JSON arrays become ordered lists.
pub fn from_json(j: &serde_json::Value) -> Value {
    match j {
        serde_json::Value::Null => Value::Null,
        serde_json::Value::Bool(b) => Value::Boolean(*b),
        serde_json::Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Value::Int64(i)
            } else {
                Value::double(n.as_f64().unwrap_or(f64::NAN))
            }
        }
        serde_json::Value::String(s) => Value::String(s.clone()),
        serde_json::Value::Array(items) => Value::OrderedList(items.iter().map(from_json).collect()),
        serde_json::Value::Object(map) => Value::record(
            map.iter()
                .map(|(k, v)| (k.clone(), from_json(v)))
                .collect(),
        ),
    }
}

/// Parse a JSON text into an ADM value.
pub fn parse(text: &str) -> Result<Value, AdmError> {
    let j: serde_json::Value =
        serde_json::from_str(text).map_err(|e| AdmError::Json(e.to_string()))?;
    Ok(from_json(&j))
}

/// Convert an ADM value to JSON. `Missing` becomes `null`; unordered lists
/// become arrays.
pub fn to_json(v: &Value) -> serde_json::Value {
    match v {
        Value::Missing | Value::Null => serde_json::Value::Null,
        Value::Boolean(b) => serde_json::Value::Bool(*b),
        Value::Int64(i) => serde_json::Value::from(*i),
        Value::Double(d) => serde_json::Number::from_f64(d.0)
            .map(serde_json::Value::Number)
            .unwrap_or(serde_json::Value::Null),
        Value::String(s) => serde_json::Value::String(s.clone()),
        Value::OrderedList(items) | Value::UnorderedList(items) => {
            serde_json::Value::Array(items.iter().map(to_json).collect())
        }
        Value::Record(fields) => serde_json::Value::Object(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), to_json(v)))
                .collect(),
        ),
    }
}

/// Render an ADM value as a JSON string.
pub fn to_string(v: &Value) -> String {
    to_json(v).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_review_record() {
        let v = parse(r#"{"review-id": 5, "username": "maria", "score": 4.5, "tags": ["a","b"]}"#)
            .unwrap();
        assert_eq!(v.field("review-id"), &Value::Int64(5));
        assert_eq!(v.field("username"), &Value::from("maria"));
        assert_eq!(v.field("score"), &Value::double(4.5));
        assert_eq!(
            v.field("tags"),
            &Value::OrderedList(vec![Value::from("a"), Value::from("b")])
        );
    }

    #[test]
    fn parse_error_reported() {
        assert!(parse("{nope").is_err());
    }

    #[test]
    fn json_roundtrip() {
        let v = parse(r#"{"a": [1, 2.5, null, {"b": true}], "s": "x"}"#).unwrap();
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn missing_serializes_as_null() {
        assert_eq!(to_json(&Value::Missing), serde_json::Value::Null);
    }
}
