//! The ADM runtime value.
//!
//! `Value` is a superset of JSON: it adds `Missing` (absent field — distinct
//! from `Null` per AsterixDB semantics), 64-bit integers as a first-class
//! type, and an *unordered list* (multiset) next to the ordered list. Records
//! are "open": any record may carry fields not mentioned in a dataset's
//! declared type, which is how the paper imports raw JSON datasets with only
//! a declared primary key (§6.1).

use std::cmp::Ordering;
use std::fmt;

/// Type tag for a [`Value`]. The discriminant order defines the cross-type
/// total order used when heterogeneous values meet in a sort or B+-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKind {
    Missing = 0,
    Null = 1,
    Boolean = 2,
    Int64 = 3,
    Double = 4,
    String = 5,
    OrderedList = 6,
    UnorderedList = 7,
    Record = 8,
}

impl ValueKind {
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Missing => "missing",
            ValueKind::Null => "null",
            ValueKind::Boolean => "boolean",
            ValueKind::Int64 => "int64",
            ValueKind::Double => "double",
            ValueKind::String => "string",
            ValueKind::OrderedList => "orderedlist",
            ValueKind::UnorderedList => "unorderedlist",
            ValueKind::Record => "record",
        }
    }
}

/// A semi-structured ADM value.
///
/// Records store their fields sorted by field name so that equal records
/// have equal representations (and stable hashes) regardless of construction
/// order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// Absent field. Accessing a missing field of a record yields `Missing`.
    Missing,
    Null,
    Boolean(bool),
    Int64(i64),
    /// IEEE double; ordered with `total_cmp`, hashed by bit pattern.
    Double(OrderedF64),
    String(String),
    /// An ordered list `[a, b, c]`.
    OrderedList(Vec<Value>),
    /// An unordered list (multiset) `{{a, b}}`; stored sorted for canonical
    /// representation.
    UnorderedList(Vec<Value>),
    /// An open record; fields sorted by name, names unique.
    Record(Vec<(String, Value)>),
}

/// An `f64` wrapper with total ordering (`f64::total_cmp`) and bit-pattern
/// equality/hashing so `Value` can be `Eq + Ord + Hash`.
#[derive(Clone, Copy, Debug)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl Value {
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Missing => ValueKind::Missing,
            Value::Null => ValueKind::Null,
            Value::Boolean(_) => ValueKind::Boolean,
            Value::Int64(_) => ValueKind::Int64,
            Value::Double(_) => ValueKind::Double,
            Value::String(_) => ValueKind::String,
            Value::OrderedList(_) => ValueKind::OrderedList,
            Value::UnorderedList(_) => ValueKind::UnorderedList,
            Value::Record(_) => ValueKind::Record,
        }
    }

    pub fn double(x: f64) -> Value {
        Value::Double(OrderedF64(x))
    }

    /// Build a record from (name, value) pairs; sorts fields and rejects
    /// nothing (last write wins on duplicate names, matching upsert
    /// semantics).
    pub fn record(fields: Vec<(String, Value)>) -> Value {
        let mut fields = fields;
        // Stable sort + dedup keeping the *last* occurrence.
        fields.reverse();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        fields.dedup_by(|a, b| a.0 == b.0);
        Value::Record(fields)
    }

    /// Build an unordered list (multiset): canonicalized by sorting.
    pub fn unordered_list(mut items: Vec<Value>) -> Value {
        items.sort();
        Value::UnorderedList(items)
    }

    /// Field access; returns `Missing` for non-records or absent fields
    /// (open-record semantics).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Record(fields) => fields
                .binary_search_by(|(k, _)| k.as_str().cmp(name))
                .map(|i| &fields[i].1)
                .unwrap_or(&Value::Missing),
            _ => &Value::Missing,
        }
    }

    /// Nested field access through a dotted path such as `user.name`.
    pub fn field_path(&self, path: &str) -> &Value {
        let mut cur = self;
        for part in path.split('.') {
            cur = cur.field(part);
        }
        cur
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(d.0),
            Value::Int64(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::OrderedList(l) | Value::UnorderedList(l) => Some(l),
            _ => None,
        }
    }

    /// True if the value is `Null` or `Missing`.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Value::Null | Value::Missing)
    }

    /// Truthiness for WHERE clauses: only `Boolean(true)` passes; unknowns
    /// and non-booleans are filtered out (three-valued logic collapsed at
    /// the selection boundary, as SQL/AQL do).
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Boolean(true))
    }

    /// Number of items for lists, chars for strings (AQL `len()`).
    pub fn len(&self) -> Option<usize> {
        match self {
            Value::String(s) => Some(s.chars().count()),
            Value::OrderedList(l) | Value::UnorderedList(l) => Some(l.len()),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> Option<bool> {
        self.len().map(|n| n == 0)
    }

    /// Deep size estimate in bytes, used for memory budgeting in operators.
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Missing | Value::Null | Value::Boolean(_) => 1,
            Value::Int64(_) | Value::Double(_) => 9,
            Value::String(s) => 8 + s.len(),
            Value::OrderedList(l) | Value::UnorderedList(l) => {
                8 + l.iter().map(Value::heap_size).sum::<usize>()
            }
            Value::Record(fs) => {
                8 + fs
                    .iter()
                    .map(|(k, v)| 8 + k.len() + v.heap_size())
                    .sum::<usize>()
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Missing, Missing) | (Null, Null) => Ordering::Equal,
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.cmp(b),
            // Numeric cross-type comparison: compare as doubles, ties broken
            // by kind so the order stays total and antisymmetric.
            (Int64(a), Double(b)) => (*a as f64)
                .total_cmp(&b.0)
                .then(ValueKind::Int64.cmp(&ValueKind::Double)),
            (Double(a), Int64(b)) => a
                .0
                .total_cmp(&(*b as f64))
                .then(ValueKind::Double.cmp(&ValueKind::Int64)),
            (String(a), String(b)) => a.cmp(b),
            (OrderedList(a), OrderedList(b)) => a.cmp(b),
            (UnorderedList(a), UnorderedList(b)) => a.cmp(b),
            (Record(a), Record(b)) => a.cmp(b),
            (a, b) => a.kind().cmp(&b.kind()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Missing => write!(f, "missing"),
            Value::Null => write!(f, "null"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int64(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{}", d.0),
            Value::String(s) => write!(f, "{s:?}"),
            Value::OrderedList(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::UnorderedList(l) => {
                write!(f, "{{{{")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}}}")
            }
            Value::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int64(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::double(x)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Boolean(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::OrderedList(l)
    }
}

/// Convenience macro for building records in tests and examples.
#[macro_export]
macro_rules! record {
    ($($k:expr => $v:expr),* $(,)?) => {
        $crate::Value::record(vec![$(($k.to_string(), $crate::Value::from($v))),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Value {
        Value::record(vec![
            ("b".into(), Value::Int64(2)),
            ("a".into(), Value::from("x")),
        ])
    }

    #[test]
    fn record_fields_sorted_and_accessible() {
        let r = rec();
        assert_eq!(r.field("a"), &Value::from("x"));
        assert_eq!(r.field("b"), &Value::Int64(2));
        assert_eq!(r.field("zzz"), &Value::Missing);
    }

    #[test]
    fn record_duplicate_field_last_wins() {
        let r = Value::record(vec![
            ("a".into(), Value::Int64(1)),
            ("a".into(), Value::Int64(2)),
        ]);
        assert_eq!(r.field("a"), &Value::Int64(2));
    }

    #[test]
    fn record_field_order_irrelevant_for_eq() {
        let r1 = Value::record(vec![
            ("a".into(), Value::Int64(1)),
            ("b".into(), Value::Int64(2)),
        ]);
        let r2 = Value::record(vec![
            ("b".into(), Value::Int64(2)),
            ("a".into(), Value::Int64(1)),
        ]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn nested_field_path() {
        let inner = Value::record(vec![("name".into(), Value::from("ada"))]);
        let outer = Value::record(vec![("user".into(), inner)]);
        assert_eq!(outer.field_path("user.name"), &Value::from("ada"));
        assert_eq!(outer.field_path("user.missing"), &Value::Missing);
        assert_eq!(outer.field_path("nope.name"), &Value::Missing);
    }

    #[test]
    fn field_on_non_record_is_missing() {
        assert_eq!(Value::Int64(3).field("x"), &Value::Missing);
    }

    #[test]
    fn unordered_list_canonical() {
        let a = Value::unordered_list(vec![Value::Int64(2), Value::Int64(1)]);
        let b = Value::unordered_list(vec![Value::Int64(1), Value::Int64(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_kind_order_follows_kind() {
        assert!(Value::Null < Value::Boolean(false));
        assert!(Value::Boolean(true) < Value::Int64(0));
        assert!(Value::from("z") < Value::OrderedList(vec![]));
        assert!(Value::Missing < Value::Null);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert!(Value::Int64(1) < Value::double(1.5));
        assert!(Value::double(0.5) < Value::Int64(1));
        // Equal numeric value: kind breaks the tie; both directions must be
        // consistent (antisymmetry).
        let a = Value::Int64(2);
        let b = Value::double(2.0);
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    #[test]
    fn double_total_order_handles_nan() {
        let nan = Value::double(f64::NAN);
        let one = Value::double(1.0);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(one < nan);
    }

    #[test]
    fn len_semantics() {
        assert_eq!(Value::from("abc").len(), Some(3));
        assert_eq!(
            Value::OrderedList(vec![Value::Null, Value::Null]).len(),
            Some(2)
        );
        assert_eq!(Value::Int64(5).len(), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Boolean(true).is_true());
        assert!(!Value::Boolean(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Int64(1).is_true());
    }

    #[test]
    fn display_roundtrippable_shapes() {
        let r = rec();
        let s = format!("{r}");
        assert!(s.contains("\"a\""));
        assert!(s.contains('2'));
    }

    #[test]
    fn record_macro() {
        let r = record! {"id" => 1i64, "name" => "bob"};
        assert_eq!(r.field("id"), &Value::Int64(1));
        assert_eq!(r.field("name"), &Value::from("bob"));
    }
}
