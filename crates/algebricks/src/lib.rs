//! # asterix-algebricks
//!
//! The rule-based query compiler substrate — the reproduction of the
//! Algebricks layer (§2.3, [8]) plus all of the paper's similarity
//! rewrites (§5):
//!
//! * [`plan`] — the logical algebra: a DAG of [`plan::LogicalNode`]s, where
//!   every column is a *variable* ([`plan::VarId`]) and shared subplans are
//!   literal shared `Arc`s (which is exactly the materialize/reuse of
//!   §5.4.2: the job generator emits a shared subplan once and replicates
//!   its output),
//! * [`catalog`] — dataset/index metadata the rules consult (including the
//!   index-function compatibility table of Fig 13),
//! * [`analysis`] — predicate analysis: conjunct splitting, similarity
//!   predicate recognition (`similarity-jaccard(...) >= δ`,
//!   `edit-distance(...) <= k`, `edit-distance-check`), constant-side
//!   detection, and compile-time corner-case detection (§5.1.1),
//! * [`rules`] — the rewrite rules: index-based selection (Fig 7),
//!   index-nested-loop similarity join with the runtime corner-case
//!   split/union plan (Figs 10, 14), the surrogate variant (Fig 19), and
//!   the three-stage similarity join (Figs 11, 12) instantiated through
//!   the AQL+-style template of §5.2,
//! * [`optimizer`] — the sequential-rule-set driver with the dedicated
//!   similarity rule set of §5.3,
//! * [`jobgen`] — physical plan selection + Hyracks job generation
//!   (equi-join → hash join with hash repartitioning; other joins →
//!   broadcast nested-loop; index searches behind broadcast connectors;
//!   local pk sorts before primary-index lookups, §4.1.1).

pub mod analysis;
pub mod catalog;
pub mod jobgen;
pub mod optimizer;
pub mod plan;
pub mod rules;

pub use catalog::{Catalog, SimpleCatalog};
pub use jobgen::generate_job;
pub use optimizer::{optimize, OptimizerConfig};
pub use plan::{LogicalNode, LogicalOp, PlanRef, VarGen, VarId};
