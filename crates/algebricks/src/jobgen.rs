//! Physical plan selection and Hyracks job generation.
//!
//! Walks the optimized logical DAG and emits physical operators with
//! connectors:
//!
//! * equi-joins → hash joins with hash repartitioning on the keys (or a
//!   broadcast build side when hinted, Fig 11's `/*+ bcast */`),
//! * non-equi joins → broadcast (block-)nested-loop joins,
//! * group-bys → hash repartition on the grouping keys + hash aggregation
//!   (the `/*+ hash */` aggregation of Fig 11),
//! * index searches → broadcast of the probe stream to every index
//!   partition (Figs 6, 9),
//! * global order-bys / limits → gather to the coordinator partition,
//! * `Write` → gather + result sink.
//!
//! Identical physical subtrees are emitted **once** and their output
//! replicated to all consumers (the materialize/reuse of Fig 20 — for a
//! self join the dataset scan runs once, not three or four times);
//! `reuse_subplans=false` disables the sharing for the ablation bench.

use crate::plan::{agg_to_physical, order_to_sortkeys, JoinHint, LogicalNode, LogicalOp, PlanRef, VarId};
use asterix_hyracks::{CmpOp, ConnectorKind, Expr, JobSpec, OpId, PhysicalOp};
use std::collections::HashMap;
use std::sync::Arc;

struct Gen {
    job: JobSpec,
    /// Logical-node pointer → generated op (Arc-shared subplans).
    by_ptr: HashMap<*const LogicalNode, OpId>,
    /// Structural fingerprint → generated op (identical subplans).
    by_fingerprint: HashMap<String, OpId>,
    reuse: bool,
}

impl Gen {
    /// Remap a logical expression (over variables) to physical column
    /// positions given the input schema.
    fn remap(expr: &Expr, schema: &[VarId]) -> Result<Expr, String> {
        let mut e = expr.clone();
        let mut missing: Option<usize> = None;
        e.remap_columns(&|v| match schema.iter().position(|s| *s == v) {
            Some(i) => i,
            None => {
                // Capture the first unresolvable variable; remap_columns
                // cannot fail, so record and error after.
                usize::MAX
            }
        });
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        if cols.contains(&usize::MAX) {
            let mut orig = Vec::new();
            expr.referenced_columns(&mut orig);
            missing = orig.into_iter().find(|v| !schema.contains(v));
        }
        match missing {
            Some(v) => Err(format!("variable ${v} not in input schema {schema:?}")),
            None => Ok(e),
        }
    }

    fn positions(vars: &[VarId], schema: &[VarId]) -> Result<Vec<usize>, String> {
        vars.iter()
            .map(|v| {
                schema
                    .iter()
                    .position(|s| s == v)
                    .ok_or_else(|| format!("variable ${v} not in schema {schema:?}"))
            })
            .collect()
    }

    /// Add an op, deduplicating identical subtrees when reuse is enabled.
    fn emit(
        &mut self,
        descr: String,
        op: PhysicalOp,
        inputs: Vec<(OpId, usize, ConnectorKind)>,
    ) -> OpId {
        let fingerprint = format!(
            "{descr}|{:?}",
            inputs
                .iter()
                .map(|(id, slot, conn)| (id.0, *slot, format!("{conn:?}")))
                .collect::<Vec<_>>()
        );
        if self.reuse {
            if let Some(existing) = self.by_fingerprint.get(&fingerprint) {
                return *existing;
            }
        }
        let id = self.job.add(op);
        for (from, slot, conn) in inputs {
            self.job.connect(from, id, slot, conn);
        }
        self.by_fingerprint.insert(fingerprint, id);
        id
    }

    fn gen(&mut self, node: &PlanRef) -> Result<OpId, String> {
        let ptr = Arc::as_ptr(node);
        if let Some(id) = self.by_ptr.get(&ptr) {
            return Ok(*id);
        }
        let id = self.gen_uncached(node)?;
        self.by_ptr.insert(ptr, id);
        Ok(id)
    }

    fn gen_uncached(&mut self, node: &PlanRef) -> Result<OpId, String> {
        let in_schema = |i: usize| -> &[VarId] { &node.inputs[i].schema };
        match &node.op {
            LogicalOp::DataSourceScan { dataset, .. } => Ok(self.emit(
                format!("scan:{dataset}"),
                PhysicalOp::DatasetScan {
                    dataset: dataset.clone(),
                },
                vec![],
            )),
            LogicalOp::EmptyTupleSource => {
                Ok(self.emit("ets".into(), PhysicalOp::EmptySource, vec![]))
            }
            LogicalOp::Select { condition } => {
                let child = self.gen(&node.inputs[0])?;
                let pred = Self::remap(condition, in_schema(0))?;
                Ok(self.emit(
                    format!("select:{pred:?}"),
                    PhysicalOp::Select { predicate: pred },
                    vec![(child, 0, ConnectorKind::OneToOne)],
                ))
            }
            LogicalOp::Assign { exprs, .. } => {
                let child = self.gen(&node.inputs[0])?;
                let phys: Vec<Expr> = exprs
                    .iter()
                    .map(|e| Self::remap(e, in_schema(0)))
                    .collect::<Result<_, _>>()?;
                Ok(self.emit(
                    format!("assign:{phys:?}"),
                    PhysicalOp::Assign { exprs: phys },
                    vec![(child, 0, ConnectorKind::OneToOne)],
                ))
            }
            LogicalOp::Project { vars } => {
                let child = self.gen(&node.inputs[0])?;
                let cols = Self::positions(vars, in_schema(0))?;
                Ok(self.emit(
                    format!("project:{cols:?}"),
                    PhysicalOp::Project { cols },
                    vec![(child, 0, ConnectorKind::OneToOne)],
                ))
            }
            LogicalOp::Join { condition, hint } => self.gen_join(node, condition, *hint),
            LogicalOp::GroupBy { group_vars, aggs } => {
                let child = self.gen(&node.inputs[0])?;
                let key_cols = Self::positions(
                    &group_vars.iter().map(|(_, inp)| *inp).collect::<Vec<_>>(),
                    in_schema(0),
                )?;
                let agg_specs = aggs
                    .iter()
                    .map(|(_, f)| {
                        agg_to_physical(f, in_schema(0))
                            .ok_or_else(|| "aggregate input not in schema".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                // Two-phase aggregation (Fig 12's "Hash Group (Token)
                // Local" → "Hash repartition" → "Hash Group (Token)"):
                // decomposable aggregates pre-aggregate locally before the
                // repartition, shrinking the data that crosses partitions.
                use asterix_hyracks::AggSpec;
                let decomposable = agg_specs
                    .iter()
                    .all(|a| matches!(a, AggSpec::Count | AggSpec::Sum(_) | AggSpec::Min(_) | AggSpec::Max(_)));
                if decomposable && !key_cols.is_empty() {
                    let local = self.emit(
                        format!("group-local:{key_cols:?}:{agg_specs:?}"),
                        PhysicalOp::HashGroupBy {
                            keys: key_cols.clone(),
                            aggs: agg_specs.clone(),
                        },
                        vec![(child, 0, ConnectorKind::OneToOne)],
                    );
                    // Local output layout: keys first, then one partial
                    // column per aggregate.
                    let k = key_cols.len();
                    let global_keys: Vec<usize> = (0..k).collect();
                    let merge_aggs: Vec<AggSpec> = agg_specs
                        .iter()
                        .enumerate()
                        .map(|(i, a)| match a {
                            AggSpec::Count | AggSpec::Sum(_) => AggSpec::Sum(k + i),
                            AggSpec::Min(_) => AggSpec::Min(k + i),
                            AggSpec::Max(_) => AggSpec::Max(k + i),
                            other => other.clone(),
                        })
                        .collect();
                    return Ok(self.emit(
                        format!("group-global:{global_keys:?}:{merge_aggs:?}"),
                        PhysicalOp::HashGroupBy {
                            keys: global_keys.clone(),
                            aggs: merge_aggs,
                        },
                        vec![(local, 0, ConnectorKind::Hash(global_keys))],
                    ));
                }
                Ok(self.emit(
                    format!("group:{key_cols:?}:{agg_specs:?}"),
                    PhysicalOp::HashGroupBy {
                        keys: key_cols.clone(),
                        aggs: agg_specs,
                    },
                    vec![(child, 0, ConnectorKind::Hash(key_cols))],
                ))
            }
            LogicalOp::OrderBy { keys, global } => {
                let child = self.gen(&node.inputs[0])?;
                let sort_keys = order_to_sortkeys(keys, in_schema(0))
                    .ok_or_else(|| "order key not in schema".to_string())?;
                let conn = if *global {
                    ConnectorKind::ToOne
                } else {
                    ConnectorKind::OneToOne
                };
                Ok(self.emit(
                    format!("sort:{sort_keys:?}:{global}"),
                    PhysicalOp::Sort { keys: sort_keys },
                    vec![(child, 0, conn)],
                ))
            }
            LogicalOp::Unnest { expr, pos_var, .. } => {
                let child = self.gen(&node.inputs[0])?;
                let phys = Self::remap(expr, in_schema(0))?;
                Ok(self.emit(
                    format!("unnest:{phys:?}:{}", pos_var.is_some()),
                    PhysicalOp::Unnest {
                        expr: phys,
                        with_pos: pos_var.is_some(),
                    },
                    vec![(child, 0, ConnectorKind::OneToOne)],
                ))
            }
            LogicalOp::StreamPos { .. } => {
                let child = self.gen(&node.inputs[0])?;
                Ok(self.emit(
                    "stream-pos".into(),
                    PhysicalOp::StreamPos,
                    vec![(child, 0, ConnectorKind::OneToOne)],
                ))
            }
            LogicalOp::Limit { n } => {
                let child = self.gen(&node.inputs[0])?;
                Ok(self.emit(
                    format!("limit:{n}"),
                    PhysicalOp::Limit { n: *n },
                    vec![(child, 0, ConnectorKind::ToOne)],
                ))
            }
            LogicalOp::UnionAll { .. } => {
                let l = self.gen(&node.inputs[0])?;
                let r = self.gen(&node.inputs[1])?;
                Ok(self.emit(
                    "union".into(),
                    PhysicalOp::Union,
                    vec![
                        (l, 0, ConnectorKind::OneToOne),
                        (r, 1, ConnectorKind::OneToOne),
                    ],
                ))
            }
            LogicalOp::IndexSearch {
                dataset,
                index,
                key_var,
                measure,
                pre_tokens,
                ..
            } => {
                let child = self.gen(&node.inputs[0])?;
                let key_col = Self::positions(&[*key_var], in_schema(0))?[0];
                // pre_tokens is deliberately excluded from the dedup
                // fingerprint: identical (dataset, index, key column,
                // measure) over identical inputs implies an identical
                // constant, hence identical pre-computed tokens.
                Ok(self.emit(
                    format!("ixsearch:{dataset}:{index}:{key_col}:{measure:?}"),
                    PhysicalOp::SecondaryIndexSearch {
                        dataset: dataset.clone(),
                        index: index.clone(),
                        key_col,
                        measure: measure.clone(),
                        pre_tokens: pre_tokens.clone(),
                    },
                    // The probe stream is broadcast to every partition's
                    // local index (Figs 6 and 9).
                    vec![(child, 0, ConnectorKind::Broadcast)],
                ))
            }
            LogicalOp::PrimaryLookup { dataset, pk_var, .. } => {
                let child = self.gen(&node.inputs[0])?;
                let pk_col = Self::positions(&[*pk_var], in_schema(0))?[0];
                Ok(self.emit(
                    format!("pklookup:{dataset}:{pk_col}"),
                    PhysicalOp::PrimaryIndexLookup {
                        dataset: dataset.clone(),
                        pk_col,
                    },
                    vec![(child, 0, ConnectorKind::OneToOne)],
                ))
            }
            LogicalOp::Write => {
                let child = self.gen(&node.inputs[0])?;
                let id = self.job.add(PhysicalOp::ResultSink);
                self.job.connect(child, id, 0, ConnectorKind::ToOne);
                Ok(id)
            }
        }
    }

    fn gen_join(&mut self, node: &PlanRef, condition: &Expr, hint: JoinHint) -> Result<OpId, String> {
        let left_schema = node.inputs[0].schema.clone();
        let right_schema = node.inputs[1].schema.clone();
        let mut combined = left_schema.clone();
        combined.extend(&right_schema);

        // Split the condition into equi pairs usable as hash-join keys and
        // the residual.
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for c in crate::analysis::split_conjuncts(condition) {
            if let Expr::Cmp(CmpOp::Eq, a, b) = &c {
                if let (Expr::Column(x), Expr::Column(y)) = (a.as_ref(), b.as_ref()) {
                    if left_schema.contains(x) && right_schema.contains(y) {
                        left_keys.push(*x);
                        right_keys.push(*y);
                        continue;
                    }
                    if left_schema.contains(y) && right_schema.contains(x) {
                        left_keys.push(*y);
                        right_keys.push(*x);
                        continue;
                    }
                }
            }
            residual.push(c);
        }

        let l = self.gen(&node.inputs[0])?;
        let r = self.gen(&node.inputs[1])?;

        let join_id = if !left_keys.is_empty() && hint != JoinHint::BroadcastLeftNl {
            let lk = Self::positions(&left_keys, &left_schema)?;
            let rk = Self::positions(&right_keys, &right_schema)?;
            let (lconn, rconn) = match hint {
                // Broadcast the (small) build side; probe stays local.
                JoinHint::BroadcastLeftHash => {
                    (ConnectorKind::Broadcast, ConnectorKind::OneToOne)
                }
                _ => (ConnectorKind::Hash(lk.clone()), ConnectorKind::Hash(rk.clone())),
            };
            self.emit(
                format!("hashjoin:{lk:?}:{rk:?}:{hint:?}"),
                PhysicalOp::HashJoin {
                    left_keys: lk,
                    right_keys: rk,
                },
                vec![(l, 0, lconn), (r, 1, rconn)],
            )
        } else {
            // Broadcast nested-loop join with the full condition.
            let pred = Self::remap(condition, &combined)?;
            return Ok(self.emit(
                format!("nljoin:{pred:?}"),
                PhysicalOp::NestedLoopJoin { predicate: pred },
                vec![
                    (l, 0, ConnectorKind::Broadcast),
                    (r, 1, ConnectorKind::OneToOne),
                ],
            ));
        };

        if residual.is_empty() {
            Ok(join_id)
        } else {
            let pred = Self::remap(&crate::analysis::and_of(residual), &combined)?;
            Ok(self.emit(
                format!("select:{pred:?}"),
                PhysicalOp::Select { predicate: pred },
                vec![(join_id, 0, ConnectorKind::OneToOne)],
            ))
        }
    }
}

/// Generate a Hyracks job from an optimized logical plan rooted at a
/// `Write` node. `reuse_subplans` enables the shared-subplan emission of
/// §5.4.2.
pub fn generate_job(root: &PlanRef, reuse_subplans: bool) -> Result<JobSpec, String> {
    if !matches!(root.op, LogicalOp::Write) {
        return Err("job generation requires a Write root".into());
    }
    let mut gen = Gen {
        job: JobSpec::new(),
        by_ptr: HashMap::new(),
        by_fingerprint: HashMap::new(),
        reuse: reuse_subplans,
    };
    gen.gen(root)?;
    gen.job.validate()?;
    Ok(gen.job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build;
    use crate::plan::VarGen;

    #[test]
    fn scan_write_roundtrip() {
        let vg = VarGen::new();
        let (scan, _, _) = build::scan("d", &vg);
        let job = generate_job(&build::write(scan), true).unwrap();
        let counts = job.operator_counts();
        assert!(counts.contains(&("dataset-scan", 1)));
        assert!(counts.contains(&("result-sink", 1)));
    }

    #[test]
    fn equi_join_becomes_hash_join() {
        let vg = VarGen::new();
        let (l, lpk, _) = build::scan("a", &vg);
        let (r, rpk, _) = build::scan("b", &vg);
        let j = build::join(l, r, Expr::eq(build::v(lpk), build::v(rpk)), JoinHint::Auto);
        let job = generate_job(&build::write(j), true).unwrap();
        assert!(job.operator_counts().contains(&("hash-join", 1)));
    }

    #[test]
    fn non_equi_join_becomes_nested_loop() {
        let vg = VarGen::new();
        let (l, lpk, _) = build::scan("a", &vg);
        let (r, rpk, _) = build::scan("b", &vg);
        let j = build::join(
            l,
            r,
            Expr::cmp(CmpOp::Lt, build::v(lpk), build::v(rpk)),
            JoinHint::Auto,
        );
        let job = generate_job(&build::write(j), true).unwrap();
        assert!(job.operator_counts().contains(&("nested-loop-join", 1)));
    }

    #[test]
    fn self_join_scans_shared_when_reuse_on() {
        let vg = VarGen::new();
        let (l, lpk, _) = build::scan("a", &vg);
        let (r, rpk, _) = build::scan("a", &vg);
        let j = build::join(l, r, Expr::eq(build::v(lpk), build::v(rpk)), JoinHint::Auto);
        let root = build::write(j);
        let with = generate_job(&root, true).unwrap();
        let without = generate_job(&root, false).unwrap();
        let scans = |job: &JobSpec| {
            job.operator_counts()
                .iter()
                .find(|(n, _)| *n == "dataset-scan")
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(scans(&with), 1, "reuse merges identical scans (Fig 20)");
        assert_eq!(scans(&without), 2);
    }

    #[test]
    fn unresolvable_variable_is_an_error() {
        let vg = VarGen::new();
        let (scan, _, _) = build::scan("d", &vg);
        let bad = build::select(scan, Expr::eq(Expr::Column(999), Expr::lit(1i64)));
        assert!(generate_job(&build::write(bad), true).is_err());
    }

    #[test]
    fn non_write_root_rejected() {
        let vg = VarGen::new();
        let (scan, _, _) = build::scan("d", &vg);
        assert!(generate_job(&scan, true).is_err());
    }
}
