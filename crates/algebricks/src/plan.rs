//! The logical plan algebra.
//!
//! A plan is a DAG of immutable [`LogicalNode`]s behind `Arc`s. Rewrites
//! are functional: a rule returns a new node (sharing unchanged children).
//! Every column is identified by a [`VarId`]; each node stores its output
//! schema (the variables it produces, in column order). Logical
//! expressions reuse the runtime [`Expr`] type with `Expr::Column(i)`
//! meaning *variable* `i` — the job generator remaps variables to physical
//! column positions at the end.

use asterix_hyracks::{AggSpec, Expr, PreTokenized, SearchMeasure, SortKey};
use std::fmt::Write as _;
use std::sync::Arc;

/// A logical variable.
pub type VarId = usize;

/// Shared reference to a plan node.
pub type PlanRef = Arc<LogicalNode>;

/// Fresh-variable generator threaded through translation and optimization.
#[derive(Debug, Default)]
pub struct VarGen(std::sync::atomic::AtomicUsize);

impl VarGen {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn starting_at(n: usize) -> Self {
        VarGen(std::sync::atomic::AtomicUsize::new(n))
    }

    pub fn fresh(&self) -> VarId {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }
}

/// Sort direction for a logical order-by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderKey {
    pub var: VarId,
    pub desc: bool,
}

/// Join distribution hints (set by rewrites; the job generator obeys).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinHint {
    /// Pick by condition shape: equi → hash repartition, else broadcast NL.
    #[default]
    Auto,
    /// Broadcast the *left* input to all partitions and build a hash table
    /// from it (`/*+ bcast */` in Fig 11 line 19).
    BroadcastLeftHash,
    /// Broadcast the left input and run a nested-loop join.
    BroadcastLeftNl,
}

/// Aggregate function in a logical group-by.
#[derive(Clone, Debug, PartialEq)]
pub enum AggFn {
    Count,
    Sum(VarId),
    Min(VarId),
    Max(VarId),
    First(VarId),
    CollectSortedSet(VarId),
}

/// The logical operators.
#[derive(Clone, Debug)]
pub enum LogicalOp {
    /// Scan a dataset partition-parallel: produces `[pk_var, rec_var]`.
    DataSourceScan {
        dataset: String,
        pk_var: VarId,
        rec_var: VarId,
    },
    /// Produce a single empty tuple (constant plans start here).
    EmptyTupleSource,
    Select {
        condition: Expr,
    },
    /// Append `vars[i] := exprs[i]` (exprs see the input schema).
    Assign {
        vars: Vec<VarId>,
        exprs: Vec<Expr>,
    },
    /// Keep only `vars`.
    Project {
        vars: Vec<VarId>,
    },
    /// Inner join of two inputs; condition sees both schemas.
    Join {
        condition: Expr,
        hint: JoinHint,
    },
    /// Group by; each group var is `(output var, input var)` so a
    /// group-by can rename its keys (needed when record-id pairs join back
    /// to the original scans in stage 3 of the three-stage join). `aggs`
    /// are `(output var, function)`.
    GroupBy {
        group_vars: Vec<(VarId, VarId)>,
        aggs: Vec<(VarId, AggFn)>,
    },
    /// Order the stream. `global` gathers to one partition first (final
    /// result ordering); local sorts stay partition-parallel (pk sorting
    /// before primary lookups).
    OrderBy {
        keys: Vec<OrderKey>,
        global: bool,
    },
    /// Unnest a list-valued expression: appends `var` (and `pos_var`).
    Unnest {
        var: VarId,
        expr: Expr,
        pos_var: Option<VarId>,
    },
    /// Append a 0-based global stream position (used after a global sort
    /// to assign token ranks in stage 1 of the three-stage join).
    StreamPos {
        var: VarId,
    },
    Limit {
        n: usize,
    },
    /// Concatenate two inputs with identical schemas, renaming to `vars`.
    ///
    /// `disjoint` is a rewrite-supplied guarantee that the two branches
    /// emit disjoint row sets (they partition the rows of one logical
    /// stream by a predicate, as in the Fig 14 corner-case split), so a
    /// row key shared by both branches still identifies rows of the
    /// union. Plain unions must set it `false`.
    UnionAll {
        vars: Vec<VarId>,
        disjoint: bool,
    },
    /// Secondary-index search (introduced by index rewrites): appends the
    /// candidate primary key as `pk_var`.
    IndexSearch {
        dataset: String,
        index: String,
        key_var: VarId,
        measure: SearchMeasure,
        pk_var: VarId,
        /// Tokens of the search key computed once at optimize time, when
        /// the key is a query constant (selection plans). `None` for
        /// runtime-varying keys (index-nested-loop join probes).
        pre_tokens: Option<PreTokenized>,
    },
    /// Primary-index lookup of `pk_var`: appends the record as `rec_var`.
    PrimaryLookup {
        dataset: String,
        pk_var: VarId,
        rec_var: VarId,
    },
    /// Root: ship results to the coordinator.
    Write,
}

/// A logical plan node: an operator, its inputs, and its output schema.
#[derive(Clone, Debug)]
pub struct LogicalNode {
    pub op: LogicalOp,
    pub inputs: Vec<PlanRef>,
    /// Output variables in column order.
    pub schema: Vec<VarId>,
}

impl LogicalNode {
    /// Construct a node, computing its schema from the operator and input
    /// schemas.
    pub fn new(op: LogicalOp, inputs: Vec<PlanRef>) -> PlanRef {
        let schema = Self::compute_schema(&op, &inputs);
        Arc::new(LogicalNode { op, inputs, schema })
    }

    fn compute_schema(op: &LogicalOp, inputs: &[PlanRef]) -> Vec<VarId> {
        match op {
            LogicalOp::DataSourceScan { pk_var, rec_var, .. } => vec![*pk_var, *rec_var],
            LogicalOp::EmptyTupleSource => vec![],
            LogicalOp::Select { .. }
            | LogicalOp::OrderBy { .. }
            | LogicalOp::Limit { .. }
            | LogicalOp::Write => inputs[0].schema.clone(),
            LogicalOp::Assign { vars, .. } => {
                let mut s = inputs[0].schema.clone();
                s.extend(vars);
                s
            }
            LogicalOp::Project { vars } => vars.clone(),
            LogicalOp::Join { .. } => {
                let mut s = inputs[0].schema.clone();
                s.extend(&inputs[1].schema);
                s
            }
            LogicalOp::GroupBy { group_vars, aggs } => {
                let mut s: Vec<VarId> = group_vars.iter().map(|(out, _)| *out).collect();
                s.extend(aggs.iter().map(|(v, _)| *v));
                s
            }
            LogicalOp::Unnest { var, pos_var, .. } => {
                let mut s = inputs[0].schema.clone();
                s.push(*var);
                if let Some(p) = pos_var {
                    s.push(*p);
                }
                s
            }
            LogicalOp::StreamPos { var } => {
                let mut s = inputs[0].schema.clone();
                s.push(*var);
                s
            }
            LogicalOp::UnionAll { vars, .. } => vars.clone(),
            LogicalOp::IndexSearch { pk_var, .. } => {
                let mut s = inputs[0].schema.clone();
                s.push(*pk_var);
                s
            }
            LogicalOp::PrimaryLookup { pk_var: _, rec_var, .. } => {
                let mut s = inputs[0].schema.clone();
                s.push(*rec_var);
                s
            }
        }
    }

    /// Operator display name (used by explain and Fig 15 counting).
    pub fn name(&self) -> &'static str {
        match &self.op {
            LogicalOp::DataSourceScan { .. } => "data-scan",
            LogicalOp::EmptyTupleSource => "empty-tuple-source",
            LogicalOp::Select { .. } => "select",
            LogicalOp::Assign { .. } => "assign",
            LogicalOp::Project { .. } => "project",
            LogicalOp::Join { .. } => "join",
            LogicalOp::GroupBy { .. } => "group",
            LogicalOp::OrderBy { .. } => "order",
            LogicalOp::Unnest { .. } => "unnest",
            LogicalOp::StreamPos { .. } => "stream-pos",
            LogicalOp::Limit { .. } => "limit",
            LogicalOp::UnionAll { .. } => "union-all",
            LogicalOp::IndexSearch { .. } => "index-search",
            LogicalOp::PrimaryLookup { .. } => "primary-lookup",
            LogicalOp::Write => "write",
        }
    }
}

/// Walk the DAG (each shared node visited once) and count operators by
/// name — the logical-plan side of Fig 15.
pub fn operator_counts(root: &PlanRef) -> Vec<(&'static str, usize)> {
    use std::collections::HashMap;
    let mut seen: Vec<*const LogicalNode> = Vec::new();
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    fn walk(
        node: &PlanRef,
        seen: &mut Vec<*const LogicalNode>,
        counts: &mut std::collections::HashMap<&'static str, usize>,
    ) {
        let ptr = Arc::as_ptr(node);
        if seen.contains(&ptr) {
            return;
        }
        seen.push(ptr);
        *counts.entry(node.name()).or_insert(0) += 1;
        for i in &node.inputs {
            walk(i, seen, counts);
        }
    }
    walk(root, &mut seen, &mut counts);
    let mut out: Vec<(&'static str, usize)> = counts.into_iter().collect();
    out.sort();
    out
}

/// Total operator count (shared nodes counted once).
pub fn total_operators(root: &PlanRef) -> usize {
    operator_counts(root).iter().map(|(_, n)| n).sum()
}

/// Pretty-print a plan (indented tree; shared subtrees printed once and
/// referenced by id afterwards — mirroring AsterixDB's replicate output).
pub fn explain(root: &PlanRef) -> String {
    let mut out = String::new();
    let mut shared: Vec<*const LogicalNode> = Vec::new();
    fn describe(node: &LogicalNode) -> String {
        match &node.op {
            LogicalOp::DataSourceScan { dataset, pk_var, rec_var } => {
                format!("data-scan {dataset} -> ${pk_var}, ${rec_var}")
            }
            LogicalOp::EmptyTupleSource => "empty-tuple-source".into(),
            LogicalOp::Select { condition } => format!("select {condition:?}"),
            LogicalOp::Assign { vars, exprs } => format!(
                "assign {}",
                vars.iter()
                    .zip(exprs)
                    .map(|(v, e)| format!("${v} := {e:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalOp::Project { vars } => format!(
                "project {}",
                vars.iter().map(|v| format!("${v}")).collect::<Vec<_>>().join(", ")
            ),
            LogicalOp::Join { condition, hint } => format!("join[{hint:?}] {condition:?}"),
            LogicalOp::GroupBy { group_vars, aggs } => format!(
                "group by {:?} aggs {:?}",
                group_vars,
                aggs.iter().map(|(v, f)| format!("${v}:{f:?}")).collect::<Vec<_>>()
            ),
            LogicalOp::OrderBy { keys, global } => format!(
                "order{} by {:?}",
                if *global { " (global)" } else { " (local)" },
                keys.iter().map(|k| (k.var, k.desc)).collect::<Vec<_>>()
            ),
            LogicalOp::Unnest { var, expr, pos_var } => {
                format!("unnest ${var}{} <- {expr:?}", pos_var.map(|p| format!(" at ${p}")).unwrap_or_default())
            }
            LogicalOp::StreamPos { var } => format!("stream-pos ${var}"),
            LogicalOp::Limit { n } => format!("limit {n}"),
            LogicalOp::UnionAll { .. } => "union-all".into(),
            LogicalOp::IndexSearch { dataset, index, key_var, measure, pk_var, pre_tokens } => format!(
                "index-search {dataset}.{index} key ${key_var} [{measure:?}]{} -> ${pk_var}",
                if pre_tokens.is_some() { " (pre-tokenized)" } else { "" }
            ),
            LogicalOp::PrimaryLookup { dataset, pk_var, rec_var } => {
                format!("primary-lookup {dataset} pk ${pk_var} -> ${rec_var}")
            }
            LogicalOp::Write => "write".into(),
        }
    }
    fn walk(
        node: &PlanRef,
        depth: usize,
        out: &mut String,
        shared: &mut Vec<*const LogicalNode>,
    ) {
        let ptr = Arc::as_ptr(node);
        let indent = "  ".repeat(depth);
        if Arc::strong_count(node) > 1 {
            if let Some(id) = shared.iter().position(|p| *p == ptr) {
                let _ = writeln!(out, "{indent}@shared-{id} (reused)");
                return;
            }
            shared.push(ptr);
            let _ = writeln!(
                out,
                "{indent}@shared-{} := {}",
                shared.len() - 1,
                describe(node)
            );
        } else {
            let _ = writeln!(out, "{indent}{}", describe(node));
        }
        for i in &node.inputs {
            walk(i, depth + 1, out, shared);
        }
    }
    walk(root, 0, &mut out, &mut shared);
    out
}

/// Convenience builders used by the translator and rewrites.
pub mod build {
    use super::*;

    pub fn scan(dataset: &str, vg: &VarGen) -> (PlanRef, VarId, VarId) {
        let pk = vg.fresh();
        let rec = vg.fresh();
        (
            LogicalNode::new(
                LogicalOp::DataSourceScan {
                    dataset: dataset.to_string(),
                    pk_var: pk,
                    rec_var: rec,
                },
                vec![],
            ),
            pk,
            rec,
        )
    }

    pub fn select(input: PlanRef, condition: Expr) -> PlanRef {
        LogicalNode::new(LogicalOp::Select { condition }, vec![input])
    }

    pub fn assign(input: PlanRef, vars: Vec<VarId>, exprs: Vec<Expr>) -> PlanRef {
        LogicalNode::new(LogicalOp::Assign { vars, exprs }, vec![input])
    }

    pub fn assign1(input: PlanRef, vg: &VarGen, expr: Expr) -> (PlanRef, VarId) {
        let v = vg.fresh();
        (assign(input, vec![v], vec![expr]), v)
    }

    pub fn project(input: PlanRef, vars: Vec<VarId>) -> PlanRef {
        LogicalNode::new(LogicalOp::Project { vars }, vec![input])
    }

    pub fn join(left: PlanRef, right: PlanRef, condition: Expr, hint: JoinHint) -> PlanRef {
        LogicalNode::new(LogicalOp::Join { condition, hint }, vec![left, right])
    }

    pub fn write(input: PlanRef) -> PlanRef {
        LogicalNode::new(LogicalOp::Write, vec![input])
    }

    /// Variable reference expression.
    pub fn v(var: VarId) -> Expr {
        Expr::Column(var)
    }
}

/// Sort keys translated from logical order keys against a schema.
pub fn order_to_sortkeys(keys: &[OrderKey], schema: &[VarId]) -> Option<Vec<SortKey>> {
    keys.iter()
        .map(|k| {
            schema.iter().position(|v| *v == k.var).map(|col| SortKey {
                col,
                desc: k.desc,
            })
        })
        .collect()
}

/// Lower a logical aggregate to the physical one against a schema.
pub fn agg_to_physical(agg: &AggFn, schema: &[VarId]) -> Option<AggSpec> {
    let pos = |v: &VarId| schema.iter().position(|s| s == v);
    Some(match agg {
        AggFn::Count => AggSpec::Count,
        AggFn::Sum(v) => AggSpec::Sum(pos(v)?),
        AggFn::Min(v) => AggSpec::Min(pos(v)?),
        AggFn::Max(v) => AggSpec::Max(pos(v)?),
        AggFn::First(v) => AggSpec::First(pos(v)?),
        AggFn::CollectSortedSet(v) => AggSpec::CollectSortedSet(pos(v)?),
    })
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use asterix_hyracks::CmpOp;

    #[test]
    fn schemas_compose() {
        let vg = VarGen::new();
        let (s, pk, rec) = scan("d", &vg);
        assert_eq!(s.schema, vec![pk, rec]);
        let (a, summary) = assign1(s.clone(), &vg, v(rec).field("summary"));
        assert_eq!(a.schema, vec![pk, rec, summary]);
        let p = project(a, vec![summary, pk]);
        assert_eq!(p.schema, vec![summary, pk]);
    }

    #[test]
    fn join_schema_concats() {
        let vg = VarGen::new();
        let (l, lpk, _) = scan("a", &vg);
        let (r, rpk, _) = scan("b", &vg);
        let j = join(
            l,
            r,
            Expr::cmp(CmpOp::Eq, v(lpk), v(rpk)),
            JoinHint::Auto,
        );
        assert_eq!(j.schema.len(), 4);
    }

    #[test]
    fn operator_counts_shared_once() {
        let vg = VarGen::new();
        let (s, pk, _) = scan("d", &vg);
        let j = join(
            s.clone(),
            s.clone(),
            Expr::cmp(CmpOp::Eq, v(pk), v(pk)),
            JoinHint::Auto,
        );
        let w = write(j);
        let counts = operator_counts(&w);
        assert!(counts.contains(&("data-scan", 1)), "{counts:?}");
        assert_eq!(total_operators(&w), 3);
    }

    #[test]
    fn explain_marks_shared() {
        let vg = VarGen::new();
        let (s, _, _) = scan("d", &vg);
        let j = join(s.clone(), s.clone(), Expr::lit(true), JoinHint::Auto);
        let text = explain(&write(j));
        assert!(text.contains("@shared-0 :="), "{text}");
        assert!(text.contains("(reused)"), "{text}");
    }

    #[test]
    fn order_keys_resolve() {
        let keys = [OrderKey { var: 7, desc: true }];
        let sk = order_to_sortkeys(&keys, &[5, 7]).unwrap();
        assert_eq!(sk[0].col, 1);
        assert!(sk[0].desc);
        assert!(order_to_sortkeys(&keys, &[1, 2]).is_none());
    }
}
