//! Catalog access for the optimizer, plus the index-function compatibility
//! table of Fig 13.

use asterix_adm::{DatasetDef, IndexDef, IndexKind};
use asterix_hyracks::SearchMeasure;
use std::collections::HashMap;

/// What the rewrite rules need to know about the schema.
pub trait Catalog: Send + Sync {
    fn dataset(&self, name: &str) -> Option<&DatasetDef>;
}

/// An owned catalog for tests and the engine.
#[derive(Debug, Default, Clone)]
pub struct SimpleCatalog {
    datasets: HashMap<String, DatasetDef>,
}

impl SimpleCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, def: DatasetDef) {
        self.datasets.insert(def.name.clone(), def);
    }

    pub fn get_mut(&mut self, name: &str) -> Option<&mut DatasetDef> {
        self.datasets.get_mut(name)
    }

    /// Every dataset definition, in unspecified order (the HTTP
    /// `GET /datasets` listing sorts by name itself).
    pub fn datasets(&self) -> impl Iterator<Item = &DatasetDef> {
        self.datasets.values()
    }
}

impl Catalog for SimpleCatalog {
    fn dataset(&self, name: &str) -> Option<&DatasetDef> {
        self.datasets.get(name)
    }
}

/// The index-function compatibility table (Fig 13): which index kinds can
/// answer which search measures.
///
/// | Index type | Supported functions                  |
/// |------------|--------------------------------------|
/// | n-gram     | edit-distance(), contains()          |
/// | keyword    | similarity-jaccard()                 |
/// | B+-tree    | exact match (the baseline)           |
pub fn index_compatible(kind: IndexKind, measure: &SearchMeasure) -> bool {
    matches!(
        (kind, measure),
        (IndexKind::NGram(_), SearchMeasure::EditDistance { .. })
            | (IndexKind::NGram(_), SearchMeasure::Contains)
            | (IndexKind::Keyword, SearchMeasure::Jaccard { .. })
            | (IndexKind::BTree, SearchMeasure::Exact)
    )
}

/// Find an index on `dataset.field` compatible with `measure`.
pub fn find_applicable_index<'a>(
    dataset: &'a DatasetDef,
    field: &'a str,
    measure: &SearchMeasure,
) -> Option<&'a IndexDef> {
    dataset
        .indexes_on(field)
        .find(|idx| index_compatible(idx.kind, measure))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> DatasetDef {
        let mut d = DatasetDef::new("ARevs", "id");
        d.add_index(IndexDef {
            name: "nix".into(),
            field: "reviewerName".into(),
            kind: IndexKind::NGram(2),
        })
        .unwrap();
        d.add_index(IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        d.add_index(IndexDef {
            name: "bt".into(),
            field: "summary".into(),
            kind: IndexKind::BTree,
        })
        .unwrap();
        d
    }

    #[test]
    fn fig13_table() {
        assert!(index_compatible(
            IndexKind::NGram(2),
            &SearchMeasure::EditDistance { k: 1 }
        ));
        assert!(index_compatible(
            IndexKind::Keyword,
            &SearchMeasure::Jaccard { delta: 0.5 }
        ));
        assert!(!index_compatible(
            IndexKind::Keyword,
            &SearchMeasure::EditDistance { k: 1 }
        ));
        assert!(!index_compatible(
            IndexKind::NGram(2),
            &SearchMeasure::Jaccard { delta: 0.5 }
        ));
        assert!(index_compatible(IndexKind::BTree, &SearchMeasure::Exact));
        assert!(!index_compatible(
            IndexKind::BTree,
            &SearchMeasure::Jaccard { delta: 0.5 }
        ));
    }

    #[test]
    fn applicable_index_lookup() {
        let d = ds();
        assert_eq!(
            find_applicable_index(&d, "reviewerName", &SearchMeasure::EditDistance { k: 2 })
                .map(|i| i.name.as_str()),
            Some("nix")
        );
        assert_eq!(
            find_applicable_index(&d, "summary", &SearchMeasure::Jaccard { delta: 0.5 })
                .map(|i| i.name.as_str()),
            Some("smix")
        );
        assert_eq!(
            find_applicable_index(&d, "summary", &SearchMeasure::Exact)
                .map(|i| i.name.as_str()),
            Some("bt")
        );
        assert!(
            find_applicable_index(&d, "summary", &SearchMeasure::EditDistance { k: 1 }).is_none()
        );
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = SimpleCatalog::new();
        c.add(ds());
        assert!(c.dataset("ARevs").is_some());
        assert!(c.dataset("nope").is_none());
    }
}
