//! Predicate analysis for the similarity rewrite rules (§5.1).
//!
//! The optimizer "analyzes the condition of the given SELECT operator to
//! see if it contains a similarity condition and if one of its arguments
//! is a constant" — this module is that analysis: conjunct splitting,
//! similarity-predicate recognition in all the shapes the query language
//! produces, constant folding of the probe side, extraction of the record
//! field a similarity argument reads (to find applicable indexes), and
//! compile-time corner-case detection for edit distance (§5.1.1).

use asterix_adm::{IndexKind, Value};
use asterix_hyracks::{CmpOp, Expr, SearchMeasure};
use asterix_simfn::{edit_distance_t_bound, jaccard_t_bound, tokenize, FunctionRegistry};

/// A recognized similarity predicate inside a conjunct.
#[derive(Clone, Debug)]
pub struct SimPredicate {
    pub measure: SearchMeasure,
    /// The two similarity arguments as written (variable-referencing).
    pub args: [Expr; 2],
    /// The original conjunct (re-used verbatim as the false-positive
    /// verification SELECT).
    pub original: Expr,
}

/// Split a condition into its top-level conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(parts) => parts.iter().flat_map(split_conjuncts).collect(),
        other => vec![other.clone()],
    }
}

/// Rebuild a condition from conjuncts.
pub fn and_of(mut conjuncts: Vec<Expr>) -> Expr {
    match conjuncts.len() {
        0 => Expr::lit(true),
        1 => conjuncts.pop().unwrap(),
        _ => Expr::And(conjuncts),
    }
}

/// Does the expression reference any variable?
pub fn is_constant(e: &Expr) -> bool {
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    cols.is_empty()
}

/// Evaluate a variable-free expression at compile time.
pub fn const_fold(e: &Expr, registry: &FunctionRegistry) -> Option<Value> {
    if !is_constant(e) {
        return None;
    }
    e.eval(&[], registry).ok()
}

fn as_number(v: &Value) -> Option<f64> {
    v.as_f64()
}

/// Recognize a similarity predicate in one conjunct. Handles:
///
/// * `similarity-jaccard(a, b) >= δ` (also `>`, and the mirrored
///   `δ <= similarity-jaccard(a, b)` forms),
/// * `edit-distance(a, b) <= k` (also `<`, and mirrored forms),
/// * `edit-distance-check(a, b, k)` (the early-terminating variant).
///
/// A strict `>` / `<` is conservatively relaxed for candidate generation
/// (the verification SELECT re-applies the original predicate, so results
/// stay exact).
pub fn recognize_similarity(conjunct: &Expr) -> Option<SimPredicate> {
    match conjunct {
        Expr::Cmp(op, l, r) => {
            // Normalize to: call OP constant.
            let (call, op, constant) = match (l.as_ref(), r.as_ref()) {
                (Expr::Call(..), Expr::Const(c)) => (l.as_ref(), *op, c),
                (Expr::Const(c), Expr::Call(..)) => {
                    let flipped = match op {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        other => *other,
                    };
                    (r.as_ref(), flipped, c)
                }
                _ => return None,
            };
            let Expr::Call(name, args) = call else {
                return None;
            };
            match (name.as_str(), op) {
                ("similarity-jaccard", CmpOp::Ge | CmpOp::Gt) if args.len() == 2 => {
                    let delta = as_number(constant)?;
                    Some(SimPredicate {
                        measure: SearchMeasure::Jaccard { delta },
                        args: [args[0].clone(), args[1].clone()],
                        original: conjunct.clone(),
                    })
                }
                ("edit-distance", CmpOp::Le | CmpOp::Lt) if args.len() == 2 => {
                    let raw = as_number(constant)?;
                    let k = if op == CmpOp::Lt {
                        (raw.ceil() as i64 - 1).max(0) as u32
                    } else {
                        raw.floor().max(0.0) as u32
                    };
                    Some(SimPredicate {
                        measure: SearchMeasure::EditDistance { k },
                        args: [args[0].clone(), args[1].clone()],
                        original: conjunct.clone(),
                    })
                }
                _ => None,
            }
        }
        Expr::Call(name, args) if name == "edit-distance-check" && args.len() == 3 => {
            let k = match &args[2] {
                Expr::Const(c) => as_number(c)?.floor().max(0.0) as u32,
                _ => return None,
            };
            Some(SimPredicate {
                measure: SearchMeasure::EditDistance { k },
                args: [args[0].clone(), args[1].clone()],
                original: conjunct.clone(),
            })
        }
        _ => None,
    }
}

/// If the expression reads a field of a record variable — possibly under a
/// tokenizer — return `(var, field_path)`. These are the shapes index
/// rewrites accept as the indexed side:
///
/// * `$rec.path`
/// * `word-tokens($rec.path)`
/// * `gram-tokens($rec.path, n)`
pub fn indexed_field_of(e: &Expr) -> Option<(usize, String)> {
    fn direct(e: &Expr) -> Option<(usize, String)> {
        match e {
            Expr::Field(inner, path) => match inner.as_ref() {
                Expr::Column(v) => Some((*v, path.clone())),
                // Nested field accesses compose into a dotted path.
                other => direct(other).map(|(v, p)| (v, format!("{p}.{path}"))),
            },
            _ => None,
        }
    }
    match e {
        Expr::Call(name, args)
            if (name == "word-tokens" && args.len() == 1)
                || (name == "gram-tokens" && args.len() == 2) =>
        {
            direct(&args[0])
        }
        other => direct(other),
    }
}

/// The probe expression an index search should evaluate for a similarity
/// argument: the raw field/constant value (the index tokenizes itself).
pub fn probe_expr_of(e: &Expr) -> Expr {
    match e {
        Expr::Call(name, args)
            if (name == "word-tokens" && args.len() == 1)
                || (name == "gram-tokens" && args.len() == 2) =>
        {
            args[0].clone()
        }
        other => other.clone(),
    }
}

/// Compile-time corner-case check for an edit-distance *selection* whose
/// probe side folded to a constant: `true` means the index is usable
/// (T > 0 over distinct grams), `false` means fall back to a scan
/// (§5.1.1).
pub fn edit_distance_index_usable(constant: &Value, k: u32, n: usize) -> bool {
    match constant.as_str() {
        Some(s) => {
            let grams = tokenize::gram_tokens_distinct(s, n);
            edit_distance_t_bound(grams.len(), k, n) > 0
        }
        None => false,
    }
}

/// Compile-time corner-case check for a Jaccard *selection* whose probe
/// side folded to a constant: `true` means the index is usable
/// (`T = ceil(δ·|tokens|) >= 1` over the probe's distinct tokens under the
/// index's own tokenizer), `false` means fall back to a scan. `δ <= 0`
/// and empty probe token sets are corner cases — the scan plan still
/// matches (everything, resp. empty-token records, since `J(∅, ∅) = 1`)
/// while an index search would emit no candidates.
pub fn jaccard_index_usable(constant: &Value, delta: f64, kind: IndexKind) -> bool {
    let num_tokens = match (kind, constant) {
        (IndexKind::Keyword, Value::String(s)) => tokenize::word_tokens_distinct(s).len(),
        (IndexKind::Keyword, Value::OrderedList(items))
        | (IndexKind::Keyword, Value::UnorderedList(items)) => {
            let mut v = items.clone();
            v.sort();
            v.dedup();
            v.len()
        }
        (IndexKind::NGram(n), Value::String(s)) => tokenize::gram_tokens_distinct(s, n).len(),
        _ => 0,
    };
    jaccard_t_bound(num_tokens, delta) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jacc_pred() -> Expr {
        Expr::cmp(
            CmpOp::Ge,
            Expr::call(
                "similarity-jaccard",
                vec![
                    Expr::call("word-tokens", vec![Expr::Column(1).field("summary")]),
                    Expr::call("word-tokens", vec![Expr::Column(3).field("summary")]),
                ],
            ),
            Expr::lit(0.5f64),
        )
    }

    #[test]
    fn conjunct_roundtrip() {
        let e = Expr::And(vec![
            Expr::lit(true),
            Expr::And(vec![jacc_pred(), Expr::lit(false)]),
        ]);
        let cs = split_conjuncts(&e);
        assert_eq!(cs.len(), 3);
        let back = and_of(cs);
        assert!(matches!(back, Expr::And(ref v) if v.len() == 3));
        assert!(matches!(and_of(vec![]), Expr::Const(Value::Boolean(true))));
    }

    #[test]
    fn recognize_jaccard_ge() {
        let p = recognize_similarity(&jacc_pred()).unwrap();
        assert_eq!(p.measure, SearchMeasure::Jaccard { delta: 0.5 });
    }

    #[test]
    fn recognize_mirrored_constant_side() {
        let e = Expr::cmp(
            CmpOp::Le,
            Expr::lit(0.8f64),
            Expr::call("similarity-jaccard", vec![Expr::col(0), Expr::col(1)]),
        );
        let p = recognize_similarity(&e).unwrap();
        assert_eq!(p.measure, SearchMeasure::Jaccard { delta: 0.8 });
    }

    #[test]
    fn recognize_edit_distance_le_and_lt() {
        let le = Expr::cmp(
            CmpOp::Le,
            Expr::call("edit-distance", vec![Expr::col(0), Expr::lit("c")]),
            Expr::lit(2i64),
        );
        assert_eq!(
            recognize_similarity(&le).unwrap().measure,
            SearchMeasure::EditDistance { k: 2 }
        );
        let lt = Expr::cmp(
            CmpOp::Lt,
            Expr::call("edit-distance", vec![Expr::col(0), Expr::lit("c")]),
            Expr::lit(2i64),
        );
        assert_eq!(
            recognize_similarity(&lt).unwrap().measure,
            SearchMeasure::EditDistance { k: 1 }
        );
    }

    #[test]
    fn recognize_edit_distance_check() {
        let e = Expr::call(
            "edit-distance-check",
            vec![Expr::col(0), Expr::lit("x"), Expr::lit(3i64)],
        );
        assert_eq!(
            recognize_similarity(&e).unwrap().measure,
            SearchMeasure::EditDistance { k: 3 }
        );
    }

    #[test]
    fn non_similarity_not_recognized() {
        assert!(recognize_similarity(&Expr::eq(Expr::col(0), Expr::col(1))).is_none());
        // Wrong direction: jaccard <= c is not an index-friendly predicate.
        let e = Expr::cmp(
            CmpOp::Le,
            Expr::call("similarity-jaccard", vec![Expr::col(0), Expr::col(1)]),
            Expr::lit(0.5f64),
        );
        assert!(recognize_similarity(&e).is_none());
    }

    #[test]
    fn constant_detection_and_folding() {
        let reg = FunctionRegistry::with_builtins();
        let c = Expr::call("word-tokens", vec![Expr::lit("a b")]);
        assert!(is_constant(&c));
        let v = const_fold(&c, &reg).unwrap();
        assert_eq!(v.len(), Some(2));
        assert!(!is_constant(&Expr::col(0)));
        assert!(const_fold(&Expr::col(0), &reg).is_none());
    }

    #[test]
    fn indexed_field_shapes() {
        assert_eq!(
            indexed_field_of(&Expr::Column(1).field("summary")),
            Some((1, "summary".into()))
        );
        assert_eq!(
            indexed_field_of(&Expr::call(
                "word-tokens",
                vec![Expr::Column(3).field("user.name")]
            )),
            Some((3, "user.name".into()))
        );
        assert_eq!(
            indexed_field_of(&Expr::Column(1).field("user").field("name")),
            Some((1, "user.name".into()))
        );
        assert!(indexed_field_of(&Expr::lit("x")).is_none());
    }

    #[test]
    fn probe_strips_tokenizer() {
        let probe = probe_expr_of(&Expr::call(
            "word-tokens",
            vec![Expr::Column(1).field("summary")],
        ));
        assert_eq!(probe, Expr::Column(1).field("summary"));
        assert_eq!(probe_expr_of(&Expr::lit("q")), Expr::lit("q"));
    }

    #[test]
    fn corner_case_detection() {
        // "marla" has 4 distinct 2-grams; k=1 → T=2 usable; k=2 → T=0 not.
        assert!(edit_distance_index_usable(&Value::from("marla"), 1, 2));
        assert!(!edit_distance_index_usable(&Value::from("marla"), 2, 2));
        assert!(!edit_distance_index_usable(&Value::Int64(5), 1, 2));
    }
}
