//! The rule-driver: sequential rule sets applied bottom-up to fixpoint,
//! mirroring Algebricks' rewriting framework and the dedicated similarity
//! rule set of §5.3 ("we create a new rule set for the AQL+ framework and
//! similarity queries ... we need to ensure that the similarity-join rule
//! set is only applied to similarity-join queries").

use crate::catalog::Catalog;
use crate::plan::{LogicalNode, PlanRef, VarGen};
use crate::rules::common::{ExtractJoinKeysRule, SelectIntoJoinRule, SimilarityOperatorRule};
use crate::rules::join_index::IndexJoinRule;
use crate::rules::select_index::IndexSelectionRule;
use crate::rules::three_stage::ThreeStageJoinRule;
use crate::rules::{OptContext, RewriteRule};
use asterix_simfn::{FunctionRegistry, SimilarityMeasure};
use std::collections::HashMap;
use std::sync::Arc;

/// Optimizer configuration: the session `set` statements plus feature
/// toggles used by the paper's experiments and our ablations.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// The measure `~=` desugars to (`set simfunction` /
    /// `set simthreshold`, §3.2).
    pub simfunction: SimilarityMeasure,
    /// Rewrite selections to secondary-index plans (Fig 7).
    pub enable_index_select: bool,
    /// Rewrite joins to index-nested-loop plans (Fig 10/14).
    pub enable_index_join: bool,
    /// Rewrite index-less Jaccard joins to the three-stage plan (Fig 12).
    pub enable_three_stage: bool,
    /// Use the surrogate index-nested-loop variant (Fig 19, §5.4.1).
    pub enable_surrogate: bool,
    /// Share identical physical subplans during job generation (Fig 20,
    /// §5.4.2).
    pub enable_subplan_reuse: bool,
    /// Sort primary keys before primary-index lookups (§4.1.1).
    pub sort_pks: bool,
    /// Tokenize constant search keys once at optimize time, so every
    /// partition's index-search operator reuses the same token list
    /// instead of re-tokenizing per probe.
    pub pre_tokenize: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            simfunction: SimilarityMeasure::Jaccard { delta: 0.5 },
            enable_index_select: true,
            enable_index_join: true,
            enable_three_stage: true,
            enable_surrogate: false,
            enable_subplan_reuse: true,
            sort_pks: true,
            pre_tokenize: true,
        }
    }
}

/// A named, ordered rule set; each set runs to fixpoint before the next.
struct RuleSet {
    name: &'static str,
    rules: Vec<Box<dyn RewriteRule>>,
    /// Rules in this set fire at most once per node (structural rewrites
    /// that must not reapply to their own output).
    once: bool,
}

/// Optimize a plan: normalization set, then the similarity set.
/// Returns the rewritten plan and a log of `(rule, fire count)`.
pub fn optimize(
    root: &PlanRef,
    catalog: &dyn Catalog,
    registry: &FunctionRegistry,
    config: &OptimizerConfig,
    vargen: &VarGen,
) -> (PlanRef, Vec<(&'static str, usize)>) {
    let ctx = OptContext {
        catalog,
        registry,
        config,
        vargen,
    };
    let rule_sets = vec![
        RuleSet {
            name: "normalization",
            rules: vec![
                Box::new(SimilarityOperatorRule),
                Box::new(SelectIntoJoinRule),
                Box::new(ExtractJoinKeysRule),
            ],
            once: false,
        },
        RuleSet {
            name: "similarity",
            rules: vec![
                Box::new(IndexSelectionRule),
                Box::new(IndexJoinRule),
                Box::new(ThreeStageJoinRule),
            ],
            once: true,
        },
    ];

    let mut plan = root.clone();
    let mut log: Vec<(&'static str, usize)> = Vec::new();
    for set in &rule_sets {
        let _ = set.name;
        // Each set runs to fixpoint (bounded), as in Algebricks.
        for _round in 0..8 {
            let mut round_fires = 0usize;
            for rule in &set.rules {
                let mut fires = 0usize;
                let mut memo: HashMap<*const LogicalNode, PlanRef> = HashMap::new();
                plan =
                    rewrite_bottom_up(&plan, rule.as_ref(), &ctx, &mut memo, &mut fires, set.once);
                if fires > 0 {
                    log.push((rule.name(), fires));
                }
                round_fires += fires;
            }
            if round_fires == 0 {
                break;
            }
        }
    }
    (plan, log)
}

/// Bottom-up rewrite preserving DAG sharing (a shared subtree is rewritten
/// once and stays shared).
fn rewrite_bottom_up(
    node: &PlanRef,
    rule: &dyn RewriteRule,
    ctx: &OptContext<'_>,
    memo: &mut HashMap<*const LogicalNode, PlanRef>,
    fires: &mut usize,
    once: bool,
) -> PlanRef {
    let ptr = Arc::as_ptr(node);
    if let Some(done) = memo.get(&ptr) {
        return done.clone();
    }
    // Rewrite children first.
    let new_inputs: Vec<PlanRef> = node
        .inputs
        .iter()
        .map(|i| rewrite_bottom_up(i, rule, ctx, memo, fires, once))
        .collect();
    let changed = node
        .inputs
        .iter()
        .zip(&new_inputs)
        .any(|(a, b)| !Arc::ptr_eq(a, b));
    let mut cur = if changed {
        LogicalNode::new(node.op.clone(), new_inputs)
    } else {
        node.clone()
    };
    // Apply the rule at this node (repeatedly unless `once`).
    let mut guard = 0;
    while let Some(replacement) = rule.apply(&cur, ctx) {
        *fires += 1;
        cur = replacement;
        guard += 1;
        if once || guard > 16 {
            break;
        }
    }
    memo.insert(ptr, cur.clone());
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SimpleCatalog;
    use crate::plan::{build, explain};
    use asterix_adm::{DatasetDef, IndexDef, IndexKind};
    use asterix_hyracks::{CmpOp, Expr};

    fn catalog() -> SimpleCatalog {
        let mut ds = DatasetDef::new("ARevs", "id");
        ds.add_index(IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        let mut c = SimpleCatalog::new();
        c.add(ds);
        c
    }

    #[test]
    fn tilde_selection_end_to_end() {
        // `~=` desugars in set 1, then the index selection rule fires in
        // set 2 — the two-step pipeline of §5.3.
        let vg = VarGen::new();
        let (scan, _, rec) = build::scan("ARevs", &vg);
        let sel = build::select(
            scan,
            Expr::call(
                "~=",
                vec![
                    Expr::call("word-tokens", vec![build::v(rec).field("summary")]),
                    Expr::call("word-tokens", vec![Expr::lit("great product")]),
                ],
            ),
        );
        let root = build::write(sel);
        let reg = FunctionRegistry::with_builtins();
        let cfg = OptimizerConfig::default();
        let cat = catalog();
        let (plan, log) = optimize(&root, &cat, &reg, &cfg, &vg);
        let text = explain(&plan);
        assert!(text.contains("index-search ARevs.smix"), "{text}");
        let names: Vec<&str> = log.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"desugar-similarity-operator"), "{names:?}");
        assert!(names.contains(&"introduce-index-for-selection"), "{names:?}");
    }

    #[test]
    fn multiway_joins_rewritten_iteratively() {
        // (L ⋈ M) ⋈ R with two jaccard conditions and no indexes: both
        // joins become three-stage plans (Fig 18).
        let vg = VarGen::new();
        let mut cat = SimpleCatalog::new();
        cat.add(DatasetDef::new("A", "id"));
        let (l, _, lrec) = build::scan("A", &vg);
        let (m, _, mrec) = build::scan("A", &vg);
        let (r, _, rrec) = build::scan("A", &vg);
        let jac = |a: usize, b: usize| {
            Expr::cmp(
                CmpOp::Ge,
                Expr::call(
                    "similarity-jaccard",
                    vec![
                        Expr::call("word-tokens", vec![build::v(a).field("t")]),
                        Expr::call("word-tokens", vec![build::v(b).field("t")]),
                    ],
                ),
                Expr::lit(0.8f64),
            )
        };
        let j1 = build::join(l, m, jac(lrec, mrec), Default::default());
        let j2 = build::join(j1, r, jac(lrec, rrec), Default::default());
        let root = build::write(j2);
        let reg = FunctionRegistry::with_builtins();
        let cfg = OptimizerConfig::default();
        let (plan, log) = optimize(&root, &cat, &reg, &cfg, &vg);
        let fires = log
            .iter()
            .find(|(n, _)| *n == "three-stage-similarity-join")
            .map(|(_, c)| *c);
        assert_eq!(fires, Some(2), "{log:?}\n{}", explain(&plan));
    }

    #[test]
    fn non_similarity_plans_untouched() {
        let vg = VarGen::new();
        let cat = catalog();
        let (scan, pk, _) = build::scan("ARevs", &vg);
        let sel = build::select(scan, Expr::cmp(CmpOp::Gt, build::v(pk), Expr::lit(5i64)));
        let root = build::write(sel);
        let reg = FunctionRegistry::with_builtins();
        let cfg = OptimizerConfig::default();
        let (plan, log) = optimize(&root, &cat, &reg, &cfg, &vg);
        assert!(log.is_empty(), "{log:?}");
        assert!(Arc::ptr_eq(&plan, &root));
    }
}
