//! The rewrite rules of §5.
//!
//! Rules are applied bottom-up by the [`crate::optimizer`] driver; a rule
//! inspects one node (with its already-rewritten inputs) and either
//! returns a replacement subplan or `None`.

pub mod common;
pub mod join_index;
pub mod select_index;
pub mod three_stage;

use crate::catalog::Catalog;
use crate::optimizer::OptimizerConfig;
use crate::plan::{LogicalNode, LogicalOp, PlanRef, VarGen, VarId};
use asterix_simfn::FunctionRegistry;
use std::sync::Arc;

/// Everything a rule may consult.
pub struct OptContext<'a> {
    pub catalog: &'a dyn Catalog,
    pub registry: &'a FunctionRegistry,
    pub config: &'a OptimizerConfig,
    pub vargen: &'a VarGen,
}

/// A rewrite rule.
pub trait RewriteRule {
    fn name(&self) -> &'static str;
    /// Return a replacement for `node` if the rule matches.
    fn apply(&self, node: &PlanRef, ctx: &OptContext<'_>) -> Option<PlanRef>;
}

/// Variables that uniquely identify a row of this subplan's output,
/// derived inductively:
///
/// * a scan's rows are keyed by its primary key,
/// * a join's rows by the union of its inputs' keys,
/// * a group-by's rows by its (renamed) group variables,
/// * filters/sorts/assigns/lookups preserve keys; an unnest or plain
///   union duplicates rows and loses them; a *disjoint* union (corner
///   split) keeps keys shared by both branches; a projection keeps a key
///   only if it retains all of its variables.
///
/// Used by the three-stage join (to join record-id pairs back to full
/// records in stage 3) and by the surrogate index-nested-loop join
/// (§5.4.1). Returns the first key still visible in the output schema.
pub fn subtree_row_keys(node: &PlanRef) -> Option<Vec<VarId>> {
    const MAX_ALTS: usize = 16;
    type Alts = Vec<Vec<VarId>>;

    fn norm(mut k: Vec<VarId>) -> Vec<VarId> {
        k.sort_unstable();
        k.dedup();
        k
    }

    /// Equi-join var pairs in a condition's top-level conjuncts.
    fn equi_pairs(e: &asterix_hyracks::Expr) -> Vec<(VarId, VarId)> {
        use asterix_hyracks::{CmpOp, Expr};
        crate::analysis::split_conjuncts(e)
            .into_iter()
            .filter_map(|c| match c {
                Expr::Cmp(CmpOp::Eq, a, b) => match (*a, *b) {
                    (Expr::Column(x), Expr::Column(y)) => Some((x, y)),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    fn keys(node: &PlanRef, memo: &mut Vec<(*const LogicalNode, Alts)>) -> Alts {
        let ptr = Arc::as_ptr(node);
        if let Some((_, k)) = memo.iter().find(|(p, _)| *p == ptr) {
            return k.clone();
        }
        let result: Alts = match &node.op {
            LogicalOp::DataSourceScan { pk_var, .. } => vec![vec![*pk_var]],
            LogicalOp::GroupBy { group_vars, .. } => {
                vec![norm(group_vars.iter().map(|(out, _)| *out).collect())]
            }
            LogicalOp::Join { condition, .. } => {
                let l = keys(&node.inputs[0], memo);
                let r = keys(&node.inputs[1], memo);
                let pairs = equi_pairs(condition);
                let mut alts: Alts = Vec::new();
                for lk in &l {
                    for rk in &r {
                        let mut base = lk.clone();
                        base.extend(rk);
                        let base = norm(base);
                        // The base union is a key; equi-pairs allow
                        // substituting one side of an equality for the
                        // other (functional dependency).
                        let mut frontier = vec![base];
                        for (a, b) in &pairs {
                            let mut next = Vec::new();
                            for k in &frontier {
                                next.push(k.clone());
                                if k.contains(a) {
                                    let swapped: Vec<VarId> = k
                                        .iter()
                                        .map(|v| if v == a { *b } else { *v })
                                        .collect();
                                    next.push(norm(swapped));
                                }
                                if k.contains(b) {
                                    let swapped: Vec<VarId> = k
                                        .iter()
                                        .map(|v| if v == b { *a } else { *v })
                                        .collect();
                                    next.push(norm(swapped));
                                }
                            }
                            next.sort();
                            next.dedup();
                            next.truncate(MAX_ALTS);
                            frontier = next;
                        }
                        alts.extend(frontier);
                    }
                }
                alts.sort();
                alts.dedup();
                alts.truncate(MAX_ALTS);
                alts
            }
            LogicalOp::Select { .. }
            | LogicalOp::Assign { .. }
            | LogicalOp::OrderBy { .. }
            | LogicalOp::Limit { .. }
            | LogicalOp::StreamPos { .. }
            | LogicalOp::PrimaryLookup { .. }
            | LogicalOp::Write => keys(&node.inputs[0], memo),
            LogicalOp::Project { vars } => keys(&node.inputs[0], memo)
                .into_iter()
                .filter(|k| k.iter().all(|v| vars.contains(v)))
                .collect(),
            // A disjoint union (the Fig 14 / three-stage corner splits
            // partition one stream by a predicate) keeps any key that
            // identifies rows in *both* branches: rename each branch's
            // keys positionally into the union's output variables and
            // intersect.
            LogicalOp::UnionAll { vars, disjoint } => {
                if !*disjoint {
                    Vec::new()
                } else {
                    fn renamed(
                        input: &PlanRef,
                        vars: &[VarId],
                        memo: &mut Vec<(*const LogicalNode, Alts)>,
                    ) -> Alts {
                        let schema = &input.schema;
                        keys(input, memo)
                            .into_iter()
                            .filter_map(|k| {
                                k.iter()
                                    .map(|v| {
                                        schema
                                            .iter()
                                            .position(|s| s == v)
                                            .map(|i| vars[i])
                                    })
                                    .collect::<Option<Vec<VarId>>>()
                                    .map(norm)
                            })
                            .collect()
                    }
                    let l = renamed(&node.inputs[0], vars, memo);
                    let r = renamed(&node.inputs[1], vars, memo);
                    l.into_iter().filter(|k| r.contains(k)).collect()
                }
            }
            // Row-multiplying or row-merging operators lose key identity.
            LogicalOp::Unnest { .. }
            | LogicalOp::IndexSearch { .. }
            | LogicalOp::EmptyTupleSource => Vec::new(),
        };
        memo.push((ptr, result.clone()));
        result
    }

    let mut memo = Vec::new();
    keys(node, &mut memo)
        .into_iter()
        .find(|k| !k.is_empty() && k.iter().all(|v| node.schema.contains(v)))
}

/// True if the expression only references variables from `schema`.
pub fn bound_by(e: &asterix_hyracks::Expr, schema: &[VarId]) -> bool {
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    cols.iter().all(|c| schema.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build;
    use asterix_hyracks::{CmpOp, Expr};

    #[test]
    fn row_keys_of_scan_and_join() {
        let vg = VarGen::new();
        let (l, lpk, _) = build::scan("a", &vg);
        assert_eq!(subtree_row_keys(&l), Some(vec![lpk]));
        let (r, rpk, _) = build::scan("b", &vg);
        let j = build::join(
            l,
            r,
            Expr::cmp(CmpOp::Eq, build::v(lpk), build::v(rpk)),
            Default::default(),
        );
        // The equi condition lets either pk alone identify a joined row.
        let k = subtree_row_keys(&j).unwrap();
        assert!(k == vec![lpk] || k == vec![rpk] || k == vec![lpk, rpk], "{k:?}");
    }

    #[test]
    fn row_keys_lost_by_projection() {
        let vg = VarGen::new();
        let (s, _pk, rec) = build::scan("a", &vg);
        let p = build::project(s, vec![rec]);
        assert_eq!(subtree_row_keys(&p), None);
    }

    #[test]
    fn row_keys_from_group_by_are_group_vars() {
        let vg = VarGen::new();
        let (s, pk, rec) = build::scan("a", &vg);
        let out = 99;
        let g = LogicalNode::new(
            LogicalOp::GroupBy {
                group_vars: vec![(out, rec)],
                aggs: vec![],
            },
            vec![s],
        );
        assert_eq!(subtree_row_keys(&g), Some(vec![out]));
        let _ = pk;
    }

    #[test]
    fn bound_by_checks_schema() {
        let e = Expr::eq(Expr::col(1), Expr::col(3));
        assert!(bound_by(&e, &[1, 2, 3]));
        assert!(!bound_by(&e, &[1, 2]));
    }
}
