//! The index-based *selection* rewrite (Fig 7, §5.1.1).
//!
//! Pattern: `SELECT(cond) ← DATA-SCAN(ds)` where `cond` contains a
//! similarity (or exact-match) conjunct with one constant argument and one
//! argument reading an indexed field of the scanned record.
//!
//! Replacement:
//!
//! ```text
//! PROJECT [pk, rec]
//!   SELECT cond                        (false-positive verification)
//!     PRIMARY-LOOKUP ds -> rec
//!       ORDER (local) by pk            (page-cache locality, §4.1.1)
//!         INDEX-SEARCH ds.idx key $K   (broadcast of the constant key)
//!           ASSIGN $K := constant
//!             EMPTY-TUPLE-SOURCE
//! ```
//!
//! Edit-distance corner cases (`T ≤ 0` for the constant key) are detected
//! *at compile time* and the rule declines, leaving the scan plan — §5.1.1:
//! "When detecting a corner case, it simply stops rewriting the plan."

use crate::analysis::{
    const_fold, edit_distance_index_usable, indexed_field_of, is_constant, jaccard_index_usable,
    probe_expr_of, recognize_similarity, split_conjuncts,
};
use crate::catalog::find_applicable_index;
use crate::plan::{build, LogicalNode, LogicalOp, PlanRef};
use crate::rules::{OptContext, RewriteRule};
use asterix_adm::{IndexKind, Value};
use asterix_hyracks::{CmpOp, Expr, PreTokenized, SearchMeasure};

pub struct IndexSelectionRule;

impl RewriteRule for IndexSelectionRule {
    fn name(&self) -> &'static str {
        "introduce-index-for-selection"
    }

    fn apply(&self, node: &PlanRef, ctx: &OptContext<'_>) -> Option<PlanRef> {
        if !ctx.config.enable_index_select {
            return None;
        }
        let LogicalOp::Select { condition } = &node.op else {
            return None;
        };
        let scan = &node.inputs[0];
        let LogicalOp::DataSourceScan {
            dataset,
            pk_var,
            rec_var,
        } = &scan.op
        else {
            return None;
        };
        let ds = ctx.catalog.dataset(dataset)?;

        for conjunct in split_conjuncts(condition) {
            // Similarity conjunct with a constant side?
            let candidate = recognize_similarity(&conjunct)
                .and_then(|p| {
                    let (const_arg, var_arg) = match (
                        is_constant(&p.args[0]),
                        is_constant(&p.args[1]),
                    ) {
                        (true, false) => (&p.args[0], &p.args[1]),
                        (false, true) => (&p.args[1], &p.args[0]),
                        _ => return None,
                    };
                    Some((p.measure.clone(), const_arg.clone(), var_arg.clone()))
                })
                .or_else(|| exact_match_conjunct(&conjunct))
                .or_else(|| contains_conjunct(&conjunct));
            let Some((measure, const_arg, var_arg)) = candidate else {
                continue;
            };
            // The variable side must read a field of the scanned record.
            let Some((var, field)) = indexed_field_of(&var_arg) else {
                continue;
            };
            if var != *rec_var {
                continue;
            }
            let index = match find_applicable_index(ds, &field, &measure) {
                Some(i) => i,
                None => continue,
            };
            // The probe key is the folded constant.
            let Some(probe) = const_fold(&probe_expr_of(&const_arg), ctx.registry) else {
                continue;
            };
            // Compile-time corner-case check for edit distance.
            if let SearchMeasure::EditDistance { k } = &measure {
                let IndexKind::NGram(n) = index.kind else {
                    continue;
                };
                if !edit_distance_index_usable(&probe, *k, n) {
                    // Corner case: stop rewriting; keep the scan plan.
                    return None;
                }
            }
            // Compile-time corner-case check for Jaccard: δ <= 0 or an
            // empty probe token set (J(∅, ∅) = 1 still matches
            // empty-token records the index cannot surface).
            if let SearchMeasure::Jaccard { delta } = &measure {
                if !jaccard_index_usable(&probe, *delta, index.kind) {
                    return None;
                }
            }
            // contains() needs a pattern of at least n characters; shorter
            // patterns produce grams the index does not store.
            if matches!(measure, SearchMeasure::Contains) {
                let IndexKind::NGram(n) = index.kind else {
                    continue;
                };
                if probe.as_str().is_none_or(|s| s.chars().count() < n) {
                    return None;
                }
            }
            // The probe is a query constant: tokenize it once here so the
            // runtime never re-tokenizes it (every partition's search
            // operator shares the same token list).
            let pre_tokens = if ctx.config.pre_tokenize {
                Some(PreTokenized {
                    key: probe.clone(),
                    tokens: asterix_storage::index_tokens(index.kind, &probe).into(),
                })
            } else {
                None
            };
            // Build the index plan.
            let ets = LogicalNode::new(LogicalOp::EmptyTupleSource, vec![]);
            let (keyed, key_var) = build::assign1(ets, ctx.vargen, Expr::Const(probe));
            let searched = LogicalNode::new(
                LogicalOp::IndexSearch {
                    dataset: dataset.clone(),
                    index: index.name.clone(),
                    key_var,
                    measure,
                    pk_var: *pk_var,
                    pre_tokens,
                },
                vec![keyed],
            );
            let sorted = if ctx.config.sort_pks {
                LogicalNode::new(
                    LogicalOp::OrderBy {
                        keys: vec![crate::plan::OrderKey {
                            var: *pk_var,
                            desc: false,
                        }],
                        global: false,
                    },
                    vec![searched],
                )
            } else {
                searched
            };
            let looked_up = LogicalNode::new(
                LogicalOp::PrimaryLookup {
                    dataset: dataset.clone(),
                    pk_var: *pk_var,
                    rec_var: *rec_var,
                },
                vec![sorted],
            );
            let verified = build::select(looked_up, condition.clone());
            return Some(build::project(verified, vec![*pk_var, *rec_var]));
        }
        None
    }
}

/// `contains(field, constant)` → n-gram index search requiring every
/// pattern gram (Fig 13's second n-gram function).
fn contains_conjunct(conjunct: &Expr) -> Option<(SearchMeasure, Expr, Expr)> {
    let Expr::Call(name, args) = conjunct else {
        return None;
    };
    if name != "contains" || args.len() != 2 {
        return None;
    }
    // contains(haystack_field, needle_const)
    if is_constant(&args[1]) && !is_constant(&args[0]) {
        Some((SearchMeasure::Contains, args[1].clone(), args[0].clone()))
    } else {
        None
    }
}

/// `field = constant` (either side) → exact B+-tree search.
fn exact_match_conjunct(conjunct: &Expr) -> Option<(SearchMeasure, Expr, Expr)> {
    let Expr::Cmp(CmpOp::Eq, l, r) = conjunct else {
        return None;
    };
    let (c, v) = match (is_constant(l), is_constant(r)) {
        (true, false) => (l, r),
        (false, true) => (r, l),
        _ => return None,
    };
    // Exclude unknown constants (null = x never matches an index entry).
    if matches!(c.as_ref(), Expr::Const(Value::Null | Value::Missing)) {
        return None;
    }
    Some((SearchMeasure::Exact, (**c).clone(), (**v).clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SimpleCatalog;
    use crate::optimizer::OptimizerConfig;
    use crate::plan::{explain, VarGen};
    use asterix_adm::{DatasetDef, IndexDef};
    use asterix_simfn::FunctionRegistry;

    fn catalog() -> SimpleCatalog {
        let mut ds = DatasetDef::new("ARevs", "id");
        ds.add_index(IndexDef {
            name: "nix".into(),
            field: "reviewerName".into(),
            kind: IndexKind::NGram(2),
        })
        .unwrap();
        ds.add_index(IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        let mut c = SimpleCatalog::new();
        c.add(ds);
        c
    }

    fn try_rule(cond: impl Fn(usize) -> Expr) -> (Option<PlanRef>, VarGen) {
        let vg = VarGen::starting_at(100);
        let cat = catalog();
        let reg = FunctionRegistry::with_builtins();
        let cfg = OptimizerConfig::default();
        let (scan, _pk, rec) = build::scan("ARevs", &vg);
        let sel = build::select(scan, cond(rec));
        let ctx = OptContext {
            catalog: &cat,
            registry: &reg,
            config: &cfg,
            vargen: &vg,
        };
        (IndexSelectionRule.apply(&sel, &ctx), vg)
    }

    fn ed_cond(rec: usize, query: &str, k: i64) -> Expr {
        Expr::cmp(
            CmpOp::Le,
            Expr::call(
                "edit-distance",
                vec![Expr::Column(rec).field("reviewerName"), Expr::lit(query)],
            ),
            Expr::lit(k),
        )
    }

    #[test]
    fn edit_distance_selection_rewritten() {
        let (out, _) = try_rule(|rec| ed_cond(rec, "marla", 1));
        let plan = out.expect("must rewrite");
        let text = explain(&plan);
        assert!(text.contains("index-search ARevs.nix"), "{text}");
        assert!(text.contains("primary-lookup"), "{text}");
        assert!(text.contains("order (local)"), "{text}");
    }

    #[test]
    fn corner_case_not_rewritten() {
        // "marla" with k=2 → T = 4 - 4 = 0: must keep the scan plan.
        let (out, _) = try_rule(|rec| ed_cond(rec, "marla", 2));
        assert!(out.is_none());
    }

    #[test]
    fn jaccard_selection_rewritten() {
        let (out, _) = try_rule(|rec| {
            Expr::cmp(
                CmpOp::Ge,
                Expr::call(
                    "similarity-jaccard",
                    vec![
                        Expr::call("word-tokens", vec![Expr::Column(rec).field("summary")]),
                        Expr::call("word-tokens", vec![Expr::lit("great product")]),
                    ],
                ),
                Expr::lit(0.5f64),
            )
        });
        let plan = out.expect("must rewrite");
        assert!(explain(&plan).contains("index-search ARevs.smix"));
    }

    #[test]
    fn no_index_no_rewrite() {
        // Similarity on a field without a compatible index.
        let (out, _) = try_rule(|rec| {
            Expr::cmp(
                CmpOp::Ge,
                Expr::call(
                    "similarity-jaccard",
                    vec![
                        Expr::call("word-tokens", vec![Expr::Column(rec).field("other")]),
                        Expr::call("word-tokens", vec![Expr::lit("x")]),
                    ],
                ),
                Expr::lit(0.5f64),
            )
        });
        assert!(out.is_none());
    }

    #[test]
    fn both_sides_variable_no_rewrite() {
        let (out, _) = try_rule(|rec| {
            Expr::cmp(
                CmpOp::Le,
                Expr::call(
                    "edit-distance",
                    vec![
                        Expr::Column(rec).field("reviewerName"),
                        Expr::Column(rec).field("summary"),
                    ],
                ),
                Expr::lit(1i64),
            )
        });
        assert!(out.is_none());
    }

    #[test]
    fn contains_selection_uses_ngram_index() {
        let (out, _) = try_rule(|rec| {
            Expr::call(
                "contains",
                vec![Expr::Column(rec).field("reviewerName"), Expr::lit("arl")],
            )
        });
        let plan = out.expect("must rewrite");
        let text = explain(&plan);
        assert!(text.contains("index-search ARevs.nix"), "{text}");
        assert!(text.contains("Contains"), "{text}");
    }

    #[test]
    fn contains_short_pattern_not_rewritten() {
        // A 1-char pattern cannot use a 2-gram index.
        let (out, _) = try_rule(|rec| {
            Expr::call(
                "contains",
                vec![Expr::Column(rec).field("reviewerName"), Expr::lit("a")],
            )
        });
        assert!(out.is_none());
    }

    #[test]
    fn extra_conjuncts_preserved_in_verification() {
        let (out, _) = try_rule(|rec| {
            Expr::And(vec![
                ed_cond(rec, "marla", 1),
                Expr::cmp(CmpOp::Gt, Expr::Column(rec).field("score"), Expr::lit(3i64)),
            ])
        });
        let plan = out.expect("must rewrite");
        let text = explain(&plan);
        assert!(text.contains("score"), "verification select must keep residual: {text}");
    }
}
