//! The index-nested-loop *join* rewrite (Figs 10, 14, 19; §5.1.2, §5.4.1).
//!
//! Pattern: `JOIN(cond)` whose **inner** (right) input is a dataset scan
//! and whose condition contains a similarity conjunct with two
//! non-constant arguments, the inner one reading an indexed field of the
//! scanned record.
//!
//! Basic replacement (Fig 10): the outer subtree feeds (broadcast) into a
//! secondary-index search on the inner dataset, then a local pk sort, the
//! primary-index lookup, and a verification SELECT of the original join
//! condition.
//!
//! Similarity corner cases are runtime events here — the search keys come
//! from outer records (§5.1.2) — so the plan splits the outer stream with
//! a `*-can-use-index(key, ...)` predicate: usable rows go through the
//! index, corner rows take a broadcast nested-loop join against the same
//! scan, and a UNION combines both (Fig 14). Edit distance corners on
//! `T ≤ 0` keys; Jaccard corners on empty-token keys (`J(∅, ∅) = 1`, so
//! they can still match empty-token inner records that appear on no
//! inverted list). Only exact-match and contains joins are corner-free.
//!
//! The surrogate variant (Fig 19, §5.4.1) broadcasts only the search key
//! plus a compact surrogate (the outer subtree's scan primary keys),
//! resolves candidates through the index path, and re-joins survivors to
//! the full outer stream with a parallel hash join on the surrogates.

use crate::analysis::{is_constant, probe_expr_of, recognize_similarity, split_conjuncts};
use crate::catalog::find_applicable_index;
use crate::plan::{build, JoinHint, LogicalNode, LogicalOp, OrderKey, PlanRef, VarId};
use crate::rules::{bound_by, subtree_row_keys, OptContext, RewriteRule};
use asterix_adm::IndexKind;
use asterix_hyracks::{Expr, SearchMeasure};

pub struct IndexJoinRule;

struct Match {
    measure: SearchMeasure,
    outer_arg: Expr,
    dataset: String,
    index_name: String,
    index_kind: IndexKind,
    inner_pk: VarId,
    inner_rec: VarId,
}

impl RewriteRule for IndexJoinRule {
    fn name(&self) -> &'static str {
        "introduce-index-nested-loop-join"
    }

    fn apply(&self, node: &PlanRef, ctx: &OptContext<'_>) -> Option<PlanRef> {
        if !ctx.config.enable_index_join {
            return None;
        }
        let LogicalOp::Join { condition, hint } = &node.op else {
            return None;
        };
        if *hint == JoinHint::BroadcastLeftNl {
            return None; // explicitly hinted NL join (e.g. our corner path)
        }
        let outer = node.inputs[0].clone();
        let inner = node.inputs[1].clone();
        let LogicalOp::DataSourceScan {
            dataset,
            pk_var: inner_pk,
            rec_var: inner_rec,
        } = &inner.op
        else {
            return None;
        };
        let ds = ctx.catalog.dataset(dataset)?;

        let mut matched: Option<Match> = None;
        for conjunct in split_conjuncts(condition) {
            let Some(p) = recognize_similarity(&conjunct) else {
                continue;
            };
            if is_constant(&p.args[0]) || is_constant(&p.args[1]) {
                continue; // selection-shaped; not a join predicate
            }
            // δ <= 0 matches every pair; no index path can produce that.
            if matches!(p.measure, SearchMeasure::Jaccard { delta } if delta <= 0.0) {
                continue;
            }
            // Which side reads the inner record's indexed field?
            for (inner_arg, outer_arg) in [(&p.args[0], &p.args[1]), (&p.args[1], &p.args[0])] {
                let Some((var, field)) = crate::analysis::indexed_field_of(inner_arg) else {
                    continue;
                };
                if var != *inner_rec || !bound_by(outer_arg, &outer.schema) {
                    continue;
                }
                let Some(index) = find_applicable_index(ds, &field, &p.measure) else {
                    continue;
                };
                matched = Some(Match {
                    measure: p.measure.clone(),
                    outer_arg: outer_arg.clone(),
                    dataset: dataset.clone(),
                    index_name: index.name.clone(),
                    index_kind: index.kind,
                    inner_pk: *inner_pk,
                    inner_rec: *inner_rec,
                });
                break;
            }
            if matched.is_some() {
                break;
            }
        }
        let m = matched?;

        if ctx.config.enable_surrogate {
            if let Some(plan) = build_surrogate_join(node, &outer, &inner, &m, condition, ctx) {
                return Some(plan);
            }
        }
        Some(build_basic_join(node, &outer, &inner, &m, condition, ctx))
    }
}

/// The index path shared by all variants: probe-key assign is already
/// done; takes the keyed stream and returns the verified+projected stream.
fn index_path(
    keyed: PlanRef,
    key_var: VarId,
    m: &Match,
    verify: &Expr,
    out_schema: &[VarId],
    ctx: &OptContext<'_>,
) -> PlanRef {
    let searched = LogicalNode::new(
        LogicalOp::IndexSearch {
            dataset: m.dataset.clone(),
            index: m.index_name.clone(),
            key_var,
            measure: m.measure.clone(),
            pk_var: m.inner_pk,
            // Join probes vary per outer tuple; tokenization is memoized
            // at runtime instead (the operator's probe-token LRU).
            pre_tokens: None,
        },
        vec![keyed],
    );
    let sorted = if ctx.config.sort_pks {
        LogicalNode::new(
            LogicalOp::OrderBy {
                keys: vec![OrderKey {
                    var: m.inner_pk,
                    desc: false,
                }],
                global: false,
            },
            vec![searched],
        )
    } else {
        searched
    };
    let looked_up = LogicalNode::new(
        LogicalOp::PrimaryLookup {
            dataset: m.dataset.clone(),
            pk_var: m.inner_pk,
            rec_var: m.inner_rec,
        },
        vec![sorted],
    );
    let verified = build::select(looked_up, verify.clone());
    build::project(verified, out_schema.to_vec())
}

/// The runtime corner-split predicate for a measure, or `None` when the
/// measure has no runtime corner cases (§5.1.1): `true` rows can use the
/// index, `false` rows must take the nested-loop path (Fig 14).
fn corner_usable_expr(m: &Match, key_var: VarId) -> Option<Expr> {
    match &m.measure {
        SearchMeasure::Exact | SearchMeasure::Contains => None,
        SearchMeasure::Jaccard { .. } => {
            // Empty-token keys corner out: J(∅, ∅) = 1 can still match
            // inner records that appear on no inverted list.
            let n = match m.index_kind {
                IndexKind::NGram(n) => n as i64,
                _ => 0,
            };
            Some(Expr::call(
                "jaccard-can-use-index",
                vec![build::v(key_var), Expr::lit(n)],
            ))
        }
        SearchMeasure::EditDistance { k } => {
            let IndexKind::NGram(n) = m.index_kind else {
                unreachable!("compatibility table guarantees an ngram index");
            };
            Some(Expr::call(
                "edit-distance-can-use-index",
                vec![build::v(key_var), Expr::lit(*k as i64), Expr::lit(n as i64)],
            ))
        }
    }
}

/// Fig 10 / Fig 14.
fn build_basic_join(
    node: &PlanRef,
    outer: &PlanRef,
    inner: &PlanRef,
    m: &Match,
    condition: &Expr,
    ctx: &OptContext<'_>,
) -> PlanRef {
    let probe = probe_expr_of(&m.outer_arg);
    let (keyed, key_var) = build::assign1(outer.clone(), ctx.vargen, probe);
    let out_schema: Vec<VarId> = node.schema.clone();

    match corner_usable_expr(m, key_var) {
        None => index_path(keyed, key_var, m, condition, &out_schema, ctx),
        Some(usable) => {
            // Runtime split (Fig 14): replicate the keyed outer stream.
            let non_corner = build::select(keyed.clone(), usable.clone());
            let index_branch = index_path(non_corner, key_var, m, condition, &out_schema, ctx);
            let corner = build::select(keyed, Expr::Not(Box::new(usable)));
            let nl = build::join(
                corner,
                inner.clone(),
                condition.clone(),
                JoinHint::BroadcastLeftNl,
            );
            let nl_projected = build::project(nl, out_schema.clone());
            // Disjoint: the branches split the outer stream by `usable`.
            LogicalNode::new(
                LogicalOp::UnionAll {
                    vars: out_schema,
                    disjoint: true,
                },
                vec![index_branch, nl_projected],
            )
        }
    }
}

/// Fig 19: broadcast only (surrogates, key); hash-join survivors back.
fn build_surrogate_join(
    node: &PlanRef,
    outer: &PlanRef,
    inner: &PlanRef,
    m: &Match,
    condition: &Expr,
    ctx: &OptContext<'_>,
) -> Option<PlanRef> {
    // Surrogates: the outer subtree's row-identifying scan pks.
    let surrogates = subtree_row_keys(outer)?;
    let probe = probe_expr_of(&m.outer_arg);
    let (keyed, key_var) = build::assign1(outer.clone(), ctx.vargen, probe.clone());
    // The verification condition must be evaluable from (key, inner rec)
    // alone once the outer record is projected away: substitute the probe
    // expression by the key variable; a conjunct that still references
    // outer variables afterwards is re-checked at the top join instead.
    let mut verify_conjuncts = Vec::new();
    let mut residual_conjuncts = Vec::new();
    for c in split_conjuncts(condition) {
        let substituted = substitute(&c, &probe, &build::v(key_var));
        let mut refs = Vec::new();
        substituted.referenced_columns(&mut refs);
        let still_outer = refs.iter().any(|v| outer.schema.contains(v));
        if !still_outer {
            verify_conjuncts.push(substituted);
        } else {
            residual_conjuncts.push(c);
        }
    }
    if verify_conjuncts.is_empty() {
        return None; // nothing could be verified inside; surrogate useless
    }
    // Fresh surrogate names on the inner path, so the top hash join has
    // distinct variables on its two sides.
    let fresh_surrogates: Vec<VarId> =
        surrogates.iter().map(|_| ctx.vargen.fresh()).collect();
    let renamed = build::assign(
        keyed.clone(),
        fresh_surrogates.clone(),
        surrogates.iter().map(|v| build::v(*v)).collect(),
    );
    let mut slim_cols = fresh_surrogates.clone();
    slim_cols.push(key_var);
    let slim = build::project(renamed, slim_cols);

    // Verification references the key var (already substituted above).
    let verify = crate::analysis::and_of(verify_conjuncts);
    let mut inner_out = fresh_surrogates.clone();
    inner_out.push(m.inner_pk);
    inner_out.push(m.inner_rec);

    let right = match corner_usable_expr(m, key_var) {
        None => index_path(slim, key_var, m, &verify, &inner_out, ctx),
        Some(usable) => {
            let non_corner = build::select(slim.clone(), usable.clone());
            let index_branch = index_path(non_corner, key_var, m, &verify, &inner_out, ctx);
            let corner = build::select(slim, Expr::Not(Box::new(usable)));
            let nl = build::join(corner, inner.clone(), verify.clone(), JoinHint::BroadcastLeftNl);
            let nl_projected = build::project(nl, inner_out.clone());
            // Disjoint: the branches split the outer stream by `usable`.
            LogicalNode::new(
                LogicalOp::UnionAll {
                    vars: inner_out.clone(),
                    disjoint: true,
                },
                vec![index_branch, nl_projected],
            )
        }
    };

    // Top-level parallel hash join on the surrogates (left = original
    // outer subtree, shared).
    let eqs: Vec<Expr> = surrogates
        .iter()
        .zip(&fresh_surrogates)
        .map(|(a, b)| Expr::eq(build::v(*a), build::v(*b)))
        .collect();
    let top = build::join(
        outer.clone(),
        right,
        crate::analysis::and_of(eqs),
        JoinHint::Auto,
    );
    let resolved = if residual_conjuncts.is_empty() {
        top
    } else {
        build::select(top, crate::analysis::and_of(residual_conjuncts))
    };
    Some(build::project(resolved, node.schema.clone()))
}

/// Structural substitution of `from` by `to` within an expression.
fn substitute(e: &Expr, from: &Expr, to: &Expr) -> Expr {
    if e == from {
        return to.clone();
    }
    match e {
        Expr::Field(inner, name) => Expr::Field(Box::new(substitute(inner, from, to)), name.clone()),
        Expr::Call(n, args) => Expr::Call(
            n.clone(),
            args.iter().map(|a| substitute(a, from, to)).collect(),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(substitute(a, from, to)),
            Box::new(substitute(b, from, to)),
        ),
        Expr::And(parts) => Expr::And(parts.iter().map(|p| substitute(p, from, to)).collect()),
        Expr::Or(parts) => Expr::Or(parts.iter().map(|p| substitute(p, from, to)).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(substitute(inner, from, to))),
        Expr::RecordCtor(fs) => Expr::RecordCtor(
            fs.iter()
                .map(|(k, v)| (k.clone(), substitute(v, from, to)))
                .collect(),
        ),
        Expr::ListCtor(items) => {
            Expr::ListCtor(items.iter().map(|i| substitute(i, from, to)).collect())
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SimpleCatalog;
    use crate::optimizer::OptimizerConfig;
    use crate::plan::{explain, VarGen};
    use asterix_adm::{DatasetDef, IndexDef};
    use asterix_hyracks::CmpOp;
    use asterix_simfn::FunctionRegistry;

    fn catalog() -> SimpleCatalog {
        let mut ds = DatasetDef::new("ARevs", "id");
        ds.add_index(IndexDef {
            name: "smix".into(),
            field: "summary".into(),
            kind: IndexKind::Keyword,
        })
        .unwrap();
        ds.add_index(IndexDef {
            name: "nix".into(),
            field: "reviewerName".into(),
            kind: IndexKind::NGram(2),
        })
        .unwrap();
        let mut c = SimpleCatalog::new();
        c.add(ds);
        c
    }

    fn setup(cfg: OptimizerConfig, jaccard: bool) -> Option<PlanRef> {
        let vg = VarGen::starting_at(100);
        let cat = catalog();
        let reg = FunctionRegistry::with_builtins();
        let (outer, _opk, orec) = build::scan("ARevs", &vg);
        let (inner, _ipk, irec) = build::scan("ARevs", &vg);
        let cond = if jaccard {
            Expr::cmp(
                CmpOp::Ge,
                Expr::call(
                    "similarity-jaccard",
                    vec![
                        Expr::call("word-tokens", vec![Expr::Column(orec).field("summary")]),
                        Expr::call("word-tokens", vec![Expr::Column(irec).field("summary")]),
                    ],
                ),
                Expr::lit(0.8f64),
            )
        } else {
            Expr::cmp(
                CmpOp::Le,
                Expr::call(
                    "edit-distance",
                    vec![
                        Expr::Column(orec).field("reviewerName"),
                        Expr::Column(irec).field("reviewerName"),
                    ],
                ),
                Expr::lit(1i64),
            )
        };
        let join = build::join(outer, inner, cond, JoinHint::Auto);
        let ctx = OptContext {
            catalog: &cat,
            registry: &reg,
            config: &cfg,
            vargen: &vg,
        };
        IndexJoinRule.apply(&join, &ctx)
    }

    #[test]
    fn jaccard_join_has_empty_token_corner_union() {
        let plan = setup(OptimizerConfig::default(), true).expect("rewrite");
        let text = explain(&plan);
        assert!(text.contains("index-search ARevs.smix"), "{text}");
        // Empty-token outer keys must take the NL path (J(∅, ∅) = 1 still
        // matches inner records that appear on no inverted list).
        assert!(text.contains("union-all"), "{text}");
        assert!(text.contains("jaccard-can-use-index"), "{text}");
        assert!(text.contains("join[BroadcastLeftNl]"), "{text}");
    }

    #[test]
    fn edit_distance_join_has_corner_union() {
        let plan = setup(OptimizerConfig::default(), false).expect("rewrite");
        let text = explain(&plan);
        assert!(text.contains("index-search ARevs.nix"), "{text}");
        assert!(text.contains("union-all"), "{text}");
        assert!(text.contains("edit-distance-can-use-index"), "{text}");
        // The corner path joins against the shared inner scan.
        assert!(text.contains("join[BroadcastLeftNl]"), "{text}");
    }

    #[test]
    fn disabled_rule_no_rewrite() {
        let cfg = OptimizerConfig {
            enable_index_join: false,
            ..OptimizerConfig::default()
        };
        assert!(setup(cfg, true).is_none());
    }

    #[test]
    fn surrogate_variant_joins_back() {
        let cfg = OptimizerConfig {
            enable_surrogate: true,
            ..OptimizerConfig::default()
        };
        let plan = setup(cfg, true).expect("rewrite");
        let text = explain(&plan);
        // The outer subtree appears twice (shared) and a top-level hash
        // join resolves the surrogates.
        assert!(text.contains("@shared-"), "{text}");
        assert!(text.contains("index-search"), "{text}");
    }

    #[test]
    fn substitution_replaces_subexpr() {
        let probe = Expr::Column(1).field("summary");
        let cond = Expr::call(
            "similarity-jaccard",
            vec![
                Expr::call("word-tokens", vec![probe.clone()]),
                Expr::col(5),
            ],
        );
        let out = substitute(&cond, &probe, &Expr::col(9));
        let expected = Expr::call(
            "similarity-jaccard",
            vec![Expr::call("word-tokens", vec![Expr::col(9)]), Expr::col(5)],
        );
        assert_eq!(out, expected);
    }
}
