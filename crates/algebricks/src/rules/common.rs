//! Normalization rules that run before the similarity rule set:
//!
//! * [`SimilarityOperatorRule`] — desugars the `~=` similarity operator
//!   (§3.2, Fig 4(a)) into the configured similarity function + threshold
//!   ("During query parsing and compilation, it is easy for the optimizer
//!   to detect this syntactic sugar and generate a desired optimized
//!   plan").

use crate::plan::{build, LogicalNode, LogicalOp, PlanRef};
use crate::rules::{OptContext, RewriteRule};
use asterix_hyracks::{CmpOp, Expr};
use asterix_simfn::SimilarityMeasure;

pub struct SimilarityOperatorRule;

/// Rewrite every `~=`, i.e. `Call("~=", [a, b])`, according to the session
/// measure.
fn desugar(e: &Expr, measure: &SimilarityMeasure) -> Expr {
    let rec = |x: &Expr| desugar(x, measure);
    match e {
        Expr::Call(name, args) if name == "~=" && args.len() == 2 => {
            let a = rec(&args[0]);
            let b = rec(&args[1]);
            match measure {
                SimilarityMeasure::Jaccard { delta } => Expr::cmp(
                    CmpOp::Ge,
                    Expr::call("similarity-jaccard", vec![a, b]),
                    Expr::lit(*delta),
                ),
                SimilarityMeasure::EditDistance { k } => Expr::cmp(
                    CmpOp::Le,
                    Expr::call("edit-distance", vec![a, b]),
                    Expr::lit(*k as i64),
                ),
            }
        }
        Expr::Call(n, args) => Expr::Call(n.clone(), args.iter().map(rec).collect()),
        Expr::Field(inner, name) => Expr::Field(Box::new(rec(inner)), name.clone()),
        Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(rec(a)), Box::new(rec(b))),
        Expr::And(parts) => Expr::And(parts.iter().map(rec).collect()),
        Expr::Or(parts) => Expr::Or(parts.iter().map(rec).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(rec(inner))),
        Expr::RecordCtor(fs) => {
            Expr::RecordCtor(fs.iter().map(|(k, v)| (k.clone(), rec(v))).collect())
        }
        Expr::ListCtor(items) => Expr::ListCtor(items.iter().map(rec).collect()),
        other => other.clone(),
    }
}

fn contains_tilde(e: &Expr) -> bool {
    match e {
        Expr::Call(name, args) => name == "~=" || args.iter().any(contains_tilde),
        Expr::Field(inner, _) | Expr::Not(inner) => contains_tilde(inner),
        Expr::Cmp(_, a, b) => contains_tilde(a) || contains_tilde(b),
        Expr::And(parts) | Expr::Or(parts) | Expr::ListCtor(parts) => {
            parts.iter().any(contains_tilde)
        }
        Expr::RecordCtor(fs) => fs.iter().any(|(_, v)| contains_tilde(v)),
        _ => false,
    }
}

impl RewriteRule for SimilarityOperatorRule {
    fn name(&self) -> &'static str {
        "desugar-similarity-operator"
    }

    fn apply(&self, node: &PlanRef, ctx: &OptContext<'_>) -> Option<PlanRef> {
        let measure = &ctx.config.simfunction;
        match &node.op {
            LogicalOp::Select { condition } if contains_tilde(condition) => {
                Some(LogicalNode::new(
                    LogicalOp::Select {
                        condition: desugar(condition, measure),
                    },
                    node.inputs.clone(),
                ))
            }
            LogicalOp::Join { condition, hint } if contains_tilde(condition) => {
                Some(LogicalNode::new(
                    LogicalOp::Join {
                        condition: desugar(condition, measure),
                        hint: *hint,
                    },
                    node.inputs.clone(),
                ))
            }
            LogicalOp::Assign { vars, exprs } if exprs.iter().any(contains_tilde) => {
                Some(LogicalNode::new(
                    LogicalOp::Assign {
                        vars: vars.clone(),
                        exprs: exprs.iter().map(|e| desugar(e, measure)).collect(),
                    },
                    node.inputs.clone(),
                ))
            }
            _ => None,
        }
    }
}

/// Merge a SELECT into the JOIN below it (and push single-side conjuncts
/// into the join's inputs). The translator emits cross joins
/// (`Join(true)`) for multiple `for` clauses and a SELECT for the `where`;
/// this rule restores real join conditions so the similarity rules and
/// the job generator can see them.
pub struct SelectIntoJoinRule;

impl RewriteRule for SelectIntoJoinRule {
    fn name(&self) -> &'static str {
        "push-select-into-join"
    }

    fn apply(&self, node: &PlanRef, _ctx: &OptContext<'_>) -> Option<PlanRef> {
        use crate::analysis::{and_of, split_conjuncts};
        use crate::rules::bound_by;
        let LogicalOp::Select { condition } = &node.op else {
            return None;
        };
        let join = &node.inputs[0];
        let LogicalOp::Join {
            condition: jcond,
            hint,
        } = &join.op
        else {
            return None;
        };
        let left = &join.inputs[0];
        let right = &join.inputs[1];
        let mut into_left = Vec::new();
        let mut into_right = Vec::new();
        let mut into_join = Vec::new();
        for c in split_conjuncts(condition) {
            if bound_by(&c, &left.schema) {
                into_left.push(c);
            } else if bound_by(&c, &right.schema) {
                into_right.push(c);
            } else {
                into_join.push(c);
            }
        }
        if into_left.is_empty() && into_right.is_empty() && into_join.is_empty() {
            return None;
        }
        let new_left = if into_left.is_empty() {
            left.clone()
        } else {
            build::select(left.clone(), and_of(into_left))
        };
        let new_right = if into_right.is_empty() {
            right.clone()
        } else {
            build::select(right.clone(), and_of(into_right))
        };
        // Merge the remaining conjuncts with the existing join condition,
        // dropping a trivial `true`.
        let mut conj = split_conjuncts(jcond)
            .into_iter()
            .filter(|c| !matches!(c, Expr::Const(asterix_adm::Value::Boolean(true))))
            .collect::<Vec<_>>();
        conj.extend(into_join);
        Some(build::join(new_left, new_right, and_of(conj), *hint))
    }
}

/// Turn computed equi-join keys into variables: a conjunct `e_l = e_r`
/// (with `e_l` over the left schema and `e_r` over the right) becomes an
/// ASSIGN on each input plus a plain variable equality, so the job
/// generator can hash-repartition on them instead of falling back to a
/// nested-loop join.
pub struct ExtractJoinKeysRule;

impl RewriteRule for ExtractJoinKeysRule {
    fn name(&self) -> &'static str {
        "extract-computed-join-keys"
    }

    fn apply(&self, node: &PlanRef, ctx: &OptContext<'_>) -> Option<PlanRef> {
        use crate::analysis::{and_of, split_conjuncts};
        use crate::rules::bound_by;
        let LogicalOp::Join { condition, hint } = &node.op else {
            return None;
        };
        // Leave similarity joins alone: the similarity rules need their
        // inner branch to stay a bare dataset scan.
        let conjs = crate::analysis::split_conjuncts(condition);
        if conjs.iter().any(|c| {
            crate::analysis::recognize_similarity(c).is_some_and(|p| {
                !crate::analysis::is_constant(&p.args[0])
                    && !crate::analysis::is_constant(&p.args[1])
            })
        }) {
            return None;
        }
        let left = &node.inputs[0];
        let right = &node.inputs[1];
        let mut l_assigns: Vec<Expr> = Vec::new();
        let mut l_vars: Vec<usize> = Vec::new();
        let mut r_assigns: Vec<Expr> = Vec::new();
        let mut r_vars: Vec<usize> = Vec::new();
        let mut changed = false;
        let mut out_conjuncts = Vec::new();
        for c in split_conjuncts(condition) {
            if let Expr::Cmp(CmpOp::Eq, a, b) = &c {
                let plain =
                    matches!(a.as_ref(), Expr::Column(_)) && matches!(b.as_ref(), Expr::Column(_));
                if !plain {
                    let (le, re) = if bound_by(a, &left.schema) && bound_by(b, &right.schema) {
                        (a.as_ref().clone(), b.as_ref().clone())
                    } else if bound_by(b, &left.schema) && bound_by(a, &right.schema) {
                        (b.as_ref().clone(), a.as_ref().clone())
                    } else {
                        out_conjuncts.push(c);
                        continue;
                    };
                    let lv = match le {
                        Expr::Column(v) => v,
                        e => {
                            let v = ctx.vargen.fresh();
                            l_assigns.push(e);
                            l_vars.push(v);
                            v
                        }
                    };
                    let rv = match re {
                        Expr::Column(v) => v,
                        e => {
                            let v = ctx.vargen.fresh();
                            r_assigns.push(e);
                            r_vars.push(v);
                            v
                        }
                    };
                    out_conjuncts.push(Expr::eq(Expr::Column(lv), Expr::Column(rv)));
                    changed = true;
                    continue;
                }
            }
            out_conjuncts.push(c);
        }
        if !changed {
            return None;
        }
        let new_left = if l_assigns.is_empty() {
            left.clone()
        } else {
            build::assign(left.clone(), l_vars, l_assigns)
        };
        let new_right = if r_assigns.is_empty() {
            right.clone()
        } else {
            build::assign(right.clone(), r_vars, r_assigns)
        };
        // The original node's schema loses nothing (assigns append), but
        // downstream operators expect exactly the old schema; keep the
        // extra key columns — they are harmless — and preserve var order
        // by projecting back to the original join schema.
        let joined = build::join(new_left, new_right, and_of(out_conjuncts), *hint);
        Some(build::project(joined, node.schema.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SimpleCatalog;
    use crate::optimizer::OptimizerConfig;
    use crate::plan::{build, VarGen};
    use asterix_simfn::FunctionRegistry;

    fn ctx_with<'a>(
        cat: &'a SimpleCatalog,
        reg: &'a FunctionRegistry,
        cfg: &'a OptimizerConfig,
        vg: &'a VarGen,
    ) -> OptContext<'a> {
        OptContext {
            catalog: cat,
            registry: reg,
            config: cfg,
            vargen: vg,
        }
    }

    #[test]
    fn tilde_desugars_to_jaccard() {
        let vg = VarGen::new();
        let cat = SimpleCatalog::new();
        let reg = FunctionRegistry::with_builtins();
        let cfg = OptimizerConfig {
            simfunction: SimilarityMeasure::Jaccard { delta: 0.7 },
            ..OptimizerConfig::default()
        };
        let (scan, _, rec) = build::scan("d", &vg);
        let sel = build::select(
            scan,
            Expr::call("~=", vec![build::v(rec).field("a"), Expr::lit("x")]),
        );
        let out = SimilarityOperatorRule
            .apply(&sel, &ctx_with(&cat, &reg, &cfg, &vg))
            .expect("rewrite");
        let LogicalOp::Select { condition } = &out.op else {
            panic!()
        };
        let printed = format!("{condition:?}");
        assert!(printed.contains("similarity-jaccard"), "{printed}");
        assert!(printed.contains("0.7"), "{printed}");
    }

    #[test]
    fn tilde_desugars_to_edit_distance() {
        let vg = VarGen::new();
        let cat = SimpleCatalog::new();
        let reg = FunctionRegistry::with_builtins();
        let cfg = OptimizerConfig {
            simfunction: SimilarityMeasure::EditDistance { k: 2 },
            ..OptimizerConfig::default()
        };
        let (l, _, _) = build::scan("d", &vg);
        let (r, _, _) = build::scan("d", &vg);
        let join = build::join(
            l,
            r,
            Expr::call("~=", vec![Expr::col(1), Expr::col(3)]),
            Default::default(),
        );
        let out = SimilarityOperatorRule
            .apply(&join, &ctx_with(&cat, &reg, &cfg, &vg))
            .expect("rewrite");
        let printed = format!("{:?}", out.op);
        assert!(printed.contains("edit-distance"), "{printed}");
    }

    #[test]
    fn no_tilde_no_change() {
        let vg = VarGen::new();
        let cat = SimpleCatalog::new();
        let reg = FunctionRegistry::with_builtins();
        let cfg = OptimizerConfig::default();
        let (scan, _, _) = build::scan("d", &vg);
        let sel = build::select(scan, Expr::lit(true));
        assert!(SimilarityOperatorRule
            .apply(&sel, &ctx_with(&cat, &reg, &cfg, &vg))
            .is_none());
    }
}
