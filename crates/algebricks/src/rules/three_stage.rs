//! The three-stage set-similarity join (§4.2.2, Figs 11/12), instantiated
//! as an AQL+-style template (§5.2).
//!
//! The paper's AQL+ framework re-parses a parameterized AQL query whose
//! meta clauses (`##LEFT`, `##RIGHT`) and meta variables (`$$LEFTPK`, ...)
//! are bound to pieces of the incoming logical plan, and whose
//! placeholders (`TOKENIZER`, `SIMILARITY`, `THRESHOLD`) are filled from
//! the join predicate. [`ThreeStageParams`] is exactly that binding
//! structure, and [`instantiate_three_stage`] is the template: given the
//! two input branches (arbitrary subplans, like meta clauses), their
//! row-key meta variables, the tokenizer expressions, and the threshold,
//! it emits the full three-stage plan. The textual face of the same
//! template lives in the `asterix-aql` crate (`aqlplus` module), which
//! parses an AQL+ string into these parameters — the paper's two-step
//! rewrite.
//!
//! Stage 1 — token ordering: count token frequencies over both branches'
//! tokens, order ascending by (count, token), assign global ranks.
//! Stage 2 — rid-pair generation: per branch, map tokens to sorted rank
//! lists per row, extract the Jaccard prefix, hash-repartition on prefix
//! tokens, join, verify the threshold on the full rank sets, and
//! deduplicate rid pairs. Stage 3 — record join: hash-join the rid pairs
//! back to both branches to recover full records.

use crate::analysis::{and_of, is_constant, recognize_similarity, split_conjuncts};
use crate::plan::{
    build, AggFn, JoinHint, LogicalNode, LogicalOp, OrderKey, PlanRef, VarGen, VarId,
};
use crate::rules::{bound_by, subtree_row_keys, OptContext, RewriteRule};
use asterix_hyracks::{CmpOp, Expr, SearchMeasure};

/// The bindings an AQL+ three-stage template instantiation needs — the
/// analogue of the meta clauses / meta variables / placeholders of §5.2.
pub struct ThreeStageParams {
    /// `##LEFT` — the outer branch subplan.
    pub left: PlanRef,
    /// `##RIGHT` — the inner branch subplan.
    pub right: PlanRef,
    /// `$$LEFTPK` — variables identifying a row of the left branch.
    pub left_keys: Vec<VarId>,
    /// `$$RIGHTPK`.
    pub right_keys: Vec<VarId>,
    /// `TOKENIZER(left)` — list-valued expression over the left schema.
    pub left_tokens: Expr,
    /// `TOKENIZER(right)`.
    pub right_tokens: Expr,
    /// `THRESHOLD`.
    pub delta: f64,
}

/// Instantiate the three-stage-similarity-join template. The result's
/// schema is `left.schema ++ right.schema` — a drop-in replacement for the
/// original JOIN node.
pub fn instantiate_three_stage(p: &ThreeStageParams, vg: &VarGen) -> PlanRef {
    let delta = Expr::lit(p.delta);

    // ---- Stage 1: global token order over both branches' tokens -------
    let tok_l = vg.fresh();
    let l_unnest = LogicalNode::new(
        LogicalOp::Unnest {
            var: tok_l,
            expr: p.left_tokens.clone(),
            pos_var: None,
        },
        vec![p.left.clone()],
    );
    let l_tokens = build::project(l_unnest, vec![tok_l]);
    let tok_r = vg.fresh();
    let r_unnest = LogicalNode::new(
        LogicalOp::Unnest {
            var: tok_r,
            expr: p.right_tokens.clone(),
            pos_var: None,
        },
        vec![p.right.clone()],
    );
    let r_tokens = build::project(r_unnest, vec![tok_r]);
    let tok_u = vg.fresh();
    let all_tokens = LogicalNode::new(
        LogicalOp::UnionAll {
            vars: vec![tok_u],
            disjoint: false,
        },
        vec![l_tokens, r_tokens],
    );
    // `/*+ hash */ group by` of Fig 11 line 15-16.
    let cnt = vg.fresh();
    let tok_g = vg.fresh();
    let counted = LogicalNode::new(
        LogicalOp::GroupBy {
            group_vars: vec![(tok_g, tok_u)],
            aggs: vec![(cnt, AggFn::Count)],
        },
        vec![all_tokens],
    );
    // `order by count($id), $tokenGrouped` (global).
    let ordered = LogicalNode::new(
        LogicalOp::OrderBy {
            keys: vec![
                OrderKey { var: cnt, desc: false },
                OrderKey { var: tok_g, desc: false },
            ],
            global: true,
        },
        vec![counted],
    );
    let rank = vg.fresh();
    let ranked_full = LogicalNode::new(LogicalOp::StreamPos { var: rank }, vec![ordered]);
    // (token, rank) — broadcast to every partition via the rank joins.
    let ranked = build::project(ranked_full, vec![tok_g, rank]);

    // ---- Stage 2: rid-pair generation ---------------------------------
    let side = |input: &PlanRef,
                keys: &[VarId],
                tokens_expr: &Expr|
     -> (PlanRef, VarId, VarId, Vec<VarId>) {
        let tok = vg.fresh();
        let unnested = LogicalNode::new(
            LogicalOp::Unnest {
                var: tok,
                expr: tokens_expr.clone(),
                pos_var: None,
            },
            vec![input.clone()],
        );
        // `where $tokenUnranked = /*+ bcast */ $tokenRanked` — broadcast
        // the (small) ranked-token table and hash-join.
        let with_rank = build::join(
            ranked.clone(),
            unnested,
            Expr::eq(build::v(tok_g), build::v(tok)),
            JoinHint::BroadcastLeftHash,
        );
        // Per row: sorted set of token ranks.
        let ranks = vg.fresh();
        let fresh_keys: Vec<VarId> = keys.iter().map(|_| vg.fresh()).collect();
        let grouped = LogicalNode::new(
            LogicalOp::GroupBy {
                group_vars: fresh_keys.iter().copied().zip(keys.iter().copied()).collect(),
                aggs: vec![(ranks, AggFn::CollectSortedSet(rank))],
            },
            vec![with_rank],
        );
        // Prefix length: prefix-len-jaccard(len(ranks), δ).
        let (with_plen, plen) = build::assign1(
            grouped,
            vg,
            Expr::call(
                "prefix-len-jaccard",
                vec![Expr::call("len", vec![build::v(ranks)]), delta.clone()],
            ),
        );
        // Unnest the prefix tokens: subset-collection(ranks, 0, plen).
        let prefix_tok = vg.fresh();
        let prefixed = LogicalNode::new(
            LogicalOp::Unnest {
                var: prefix_tok,
                expr: Expr::call(
                    "subset-collection",
                    vec![build::v(ranks), Expr::lit(0i64), build::v(plen)],
                ),
                pos_var: None,
            },
            vec![with_plen],
        );
        (prefixed, ranks, prefix_tok, fresh_keys)
    };

    let (l_prefixed, l_ranks, l_prefix_tok, l_side_keys) =
        side(&p.left, &p.left_keys, &p.left_tokens);
    let (r_prefixed, r_ranks, r_prefix_tok, r_side_keys) =
        side(&p.right, &p.right_keys, &p.right_tokens);
    // Hash-repartition both sides on the prefix token and join.
    let pair_join = build::join(
        l_prefixed,
        r_prefixed,
        Expr::eq(build::v(l_prefix_tok), build::v(r_prefix_tok)),
        JoinHint::Auto,
    );
    // Verify on the full rank sets (exact: the global order covers both
    // branches' tokens) — `similarity-jaccard($tokensLeft, $tokensRight,
    // .5f)` with early termination, then the threshold check.
    let sim = vg.fresh();
    let with_sim = build::assign(
        pair_join,
        vec![sim],
        vec![Expr::call(
            "similarity-jaccard",
            vec![build::v(l_ranks), build::v(r_ranks), delta.clone()],
        )],
    );
    let verified = build::select(
        with_sim,
        Expr::cmp(CmpOp::Ge, build::v(sim), delta.clone()),
    );
    // A pair sharing several prefix tokens appears several times:
    // deduplicate by grouping on the rid pair (Fig 11 lines 47-49).
    let l_key_fresh: Vec<VarId> = p.left_keys.iter().map(|_| vg.fresh()).collect();
    let r_key_fresh: Vec<VarId> = p.right_keys.iter().map(|_| vg.fresh()).collect();
    let sim_out = vg.fresh();
    let rid_pairs = LogicalNode::new(
        LogicalOp::GroupBy {
            group_vars: l_key_fresh
                .iter()
                .copied()
                .zip(l_side_keys.iter().copied())
                .chain(r_key_fresh.iter().copied().zip(r_side_keys.iter().copied()))
                .collect(),
            aggs: vec![(sim_out, AggFn::First(sim))],
        },
        vec![verified],
    );

    // ---- Stage 3: record join ------------------------------------------
    let left_back = build::join(
        rid_pairs,
        p.left.clone(),
        and_of(
            l_key_fresh
                .iter()
                .zip(&p.left_keys)
                .map(|(a, b)| Expr::eq(build::v(*a), build::v(*b)))
                .collect(),
        ),
        JoinHint::Auto,
    );
    let both_back = build::join(
        left_back,
        p.right.clone(),
        and_of(
            r_key_fresh
                .iter()
                .zip(&p.right_keys)
                .map(|(a, b)| Expr::eq(build::v(*a), build::v(*b)))
                .collect(),
        ),
        JoinHint::Auto,
    );
    // Restore the original JOIN schema.
    let mut out_schema = p.left.schema.clone();
    out_schema.extend(&p.right.schema);
    let main = build::project(both_back, out_schema.clone());

    // ---- Corner branch: empty-token rows --------------------------------
    // A row with no tokens never survives the stage-2 unnest, yet
    // J(∅, ∅) = 1, so two empty-token rows can still satisfy the
    // threshold. Join the (tiny) empty-token subsets of both branches
    // under the original predicate and union the pairs in.
    let empty = |input: &PlanRef, tokens: &Expr| {
        build::select(
            input.clone(),
            Expr::eq(Expr::call("len", vec![tokens.clone()]), Expr::lit(0i64)),
        )
    };
    let l_empty = empty(&p.left, &p.left_tokens);
    let r_empty = empty(&p.right, &p.right_tokens);
    let vacuous = Expr::cmp(
        CmpOp::Ge,
        Expr::call(
            "similarity-jaccard",
            vec![p.left_tokens.clone(), p.right_tokens.clone()],
        ),
        delta,
    );
    let empty_pairs = build::join(l_empty, r_empty, vacuous, JoinHint::BroadcastLeftNl);
    let empty_projected = build::project(empty_pairs, out_schema.clone());
    // Disjoint: the main branch only emits pairs whose sides both have
    // tokens; the corner branch only pairs whose sides both have none.
    LogicalNode::new(
        LogicalOp::UnionAll {
            vars: out_schema,
            disjoint: true,
        },
        vec![main, empty_projected],
    )
}

/// The rewrite rule wrapping the template: fires on a Jaccard join with no
/// applicable index (or with index joins disabled).
pub struct ThreeStageJoinRule;

impl RewriteRule for ThreeStageJoinRule {
    fn name(&self) -> &'static str {
        "three-stage-similarity-join"
    }

    fn apply(&self, node: &PlanRef, ctx: &OptContext<'_>) -> Option<PlanRef> {
        if !ctx.config.enable_three_stage {
            return None;
        }
        let LogicalOp::Join { condition, hint } = &node.op else {
            return None;
        };
        if *hint == JoinHint::BroadcastLeftNl {
            return None;
        }
        let left = node.inputs[0].clone();
        let right = node.inputs[1].clone();

        let mut sim = None;
        let mut residual = Vec::new();
        for conjunct in split_conjuncts(condition) {
            if sim.is_none() {
                if let Some(p) = recognize_similarity(&conjunct) {
                    // δ <= 0 matches token-disjoint pairs too; the
                    // prefix-filter plan cannot produce those — leave the
                    // join for the nested-loop fallback.
                    if matches!(p.measure, SearchMeasure::Jaccard { delta } if delta > 0.0)
                        && !is_constant(&p.args[0])
                        && !is_constant(&p.args[1])
                    {
                        sim = Some(p);
                        continue;
                    }
                }
            }
            residual.push(conjunct);
        }
        let sim = sim?;
        let SearchMeasure::Jaccard { delta } = sim.measure else {
            return None;
        };
        // Which argument belongs to which branch?
        let (left_tokens, right_tokens) = if bound_by(&sim.args[0], &left.schema)
            && bound_by(&sim.args[1], &right.schema)
        {
            (sim.args[0].clone(), sim.args[1].clone())
        } else if bound_by(&sim.args[1], &left.schema) && bound_by(&sim.args[0], &right.schema) {
            (sim.args[1].clone(), sim.args[0].clone())
        } else {
            return None;
        };
        let left_keys = subtree_row_keys(&left)?;
        let right_keys = subtree_row_keys(&right)?;

        let params = ThreeStageParams {
            left,
            right,
            left_keys,
            right_keys,
            left_tokens,
            right_tokens,
            delta,
        };
        let joined = instantiate_three_stage(&params, ctx.vargen);
        Some(if residual.is_empty() {
            joined
        } else {
            build::select(joined, and_of(residual))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SimpleCatalog;
    use crate::optimizer::OptimizerConfig;
    use crate::plan::{explain, operator_counts, total_operators, VarGen};
    use asterix_adm::DatasetDef;
    use asterix_simfn::FunctionRegistry;

    fn jaccard_join(vg: &VarGen) -> (PlanRef, VarId, VarId) {
        let (l, _lpk, lrec) = build::scan("ARevs", vg);
        let (r, _rpk, rrec) = build::scan("ARevs", vg);
        let cond = Expr::cmp(
            CmpOp::Ge,
            Expr::call(
                "similarity-jaccard",
                vec![
                    Expr::call("word-tokens", vec![Expr::Column(lrec).field("summary")]),
                    Expr::call("word-tokens", vec![Expr::Column(rrec).field("summary")]),
                ],
            ),
            Expr::lit(0.5f64),
        );
        (build::join(l, r, cond, JoinHint::Auto), lrec, rrec)
    }

    fn apply(node: &PlanRef) -> Option<PlanRef> {
        let vg = VarGen::starting_at(1000);
        let cat = {
            let mut c = SimpleCatalog::new();
            c.add(DatasetDef::new("ARevs", "id"));
            c
        };
        let reg = FunctionRegistry::with_builtins();
        let cfg = OptimizerConfig::default();
        let ctx = OptContext {
            catalog: &cat,
            registry: &reg,
            config: &cfg,
            vargen: &vg,
        };
        ThreeStageJoinRule.apply(node, &ctx)
    }

    #[test]
    fn rewrites_jaccard_join() {
        let vg = VarGen::new();
        let (join, lrec, rrec) = jaccard_join(&vg);
        let original_schema = join.schema.clone();
        let plan = apply(&join).expect("must rewrite");
        // Drop-in: same output schema.
        assert_eq!(plan.schema, original_schema);
        assert!(plan.schema.contains(&lrec));
        assert!(plan.schema.contains(&rrec));
        let text = explain(&plan);
        assert!(text.contains("stream-pos"), "stage 1 rank: {text}");
        assert!(text.contains("prefix-len-jaccard"), "stage 2: {text}");
        assert!(text.contains("subset-collection"), "stage 2: {text}");
    }

    #[test]
    fn plan_is_large_fig15() {
        // Fig 15: the three-stage plan has dozens of operators vs ~6 for
        // the nested-loop plan.
        let vg = VarGen::new();
        let (join, ..) = jaccard_join(&vg);
        let before = total_operators(&join);
        let plan = apply(&join).expect("rewrite");
        let after = total_operators(&plan);
        assert!(before <= 4, "NL-side plan is small: {before}");
        assert!(after >= 20, "three-stage plan is large: {after}");
        let counts = operator_counts(&plan);
        let joins = counts.iter().find(|(n, _)| *n == "join").map(|(_, c)| *c);
        assert!(joins.unwrap_or(0) >= 5, "{counts:?}");
    }

    #[test]
    fn shares_scan_subtrees() {
        let vg = VarGen::new();
        let (join, ..) = jaccard_join(&vg);
        let plan = apply(&join).expect("rewrite");
        let text = explain(&plan);
        // Each input branch is consumed by stage 1, stage 2, and stage 3:
        // shared, not recomputed (§5.4.2).
        assert!(text.contains("(reused)"), "{text}");
    }

    #[test]
    fn residual_conjuncts_become_select() {
        let vg = VarGen::new();
        let (l, lpk, lrec) = build::scan("ARevs", &vg);
        let (r, rpk, rrec) = build::scan("ARevs", &vg);
        let cond = Expr::And(vec![
            Expr::cmp(
                CmpOp::Ge,
                Expr::call(
                    "similarity-jaccard",
                    vec![
                        Expr::call("word-tokens", vec![Expr::Column(lrec).field("summary")]),
                        Expr::call("word-tokens", vec![Expr::Column(rrec).field("summary")]),
                    ],
                ),
                Expr::lit(0.5f64),
            ),
            Expr::cmp(CmpOp::Lt, build::v(lpk), build::v(rpk)),
        ]);
        let join = build::join(l, r, cond, JoinHint::Auto);
        let plan = apply(&join).expect("rewrite");
        assert!(matches!(plan.op, LogicalOp::Select { .. }));
    }

    #[test]
    fn edit_distance_join_not_rewritten() {
        let vg = VarGen::new();
        let (l, _, lrec) = build::scan("ARevs", &vg);
        let (r, _, rrec) = build::scan("ARevs", &vg);
        let cond = Expr::cmp(
            CmpOp::Le,
            Expr::call(
                "edit-distance",
                vec![
                    Expr::Column(lrec).field("name"),
                    Expr::Column(rrec).field("name"),
                ],
            ),
            Expr::lit(1i64),
        );
        let join = build::join(l, r, cond, JoinHint::Auto);
        assert!(apply(&join).is_none());
    }
}
