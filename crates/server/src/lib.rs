//! # asterix-server
//!
//! The client-facing HTTP/JSON service of the engine: the process a user
//! talks to with `curl` instead of linking `asterix-core` as a library.
//! Everything rides on the dependency-free [`asterix_core::HttpServer`]
//! foundation (bounded request parsing, chunked responses, one thread
//! per `Connection: close` connection).
//!
//! Surface (see `docs/API.md` for the full reference):
//!
//! * `POST /query` — run an AQL statement. Result rows stream back as
//!   chunked NDJSON in production order; a large similarity-join result
//!   is never materialized server-side. Compile-time and admission
//!   failures map to stable HTTP statuses ([`error_parts`]); failures
//!   after the first row arrive as a final in-band `{"error": ...}`
//!   line.
//! * `POST /ingest/<dataset>` — bulk NDJSON ingestion with
//!   backpressure: in-flight batch bytes are bounded by the same
//!   per-query memory budget queries run under ([`FeedController`]),
//!   and a saturated feed answers `429` + `Retry-After` instead of
//!   buffering without bound. On a durable instance, `200` means every
//!   record in the batch is on disk (WAL group-commit), so an acked
//!   batch survives `kill -9`.
//! * `POST /datasets`, `POST /datasets/<dataset>/indexes`,
//!   `GET /datasets` — DDL (the AQL dialect has no DDL statements).
//! * `GET /feed` — ingestion feed counters.
//! * `/admin/*` — the complete read-only admin surface of
//!   [`asterix_core::AdminServer`], mounted under one prefix
//!   ([`asterix_core::admin_response`]).
//!
//! ```no_run
//! use asterix_core::{Instance, InstanceConfig};
//! use asterix_server::{AsterixServer, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(Instance::new(InstanceConfig::default()));
//! let server = AsterixServer::start(db, ServerConfig::default()).unwrap();
//! println!("listening on {}", server.url());
//! ```

#![warn(missing_docs)]

mod errors;
mod feed;
mod router;

pub use errors::{error_parts, error_response, ndjson_error_line};
pub use feed::{FeedController, FeedPermit, FeedRejection, FeedSnapshot};

use asterix_core::{HttpLimits, HttpServer, Instance};
use router::Router;
use std::sync::Arc;
use std::time::Duration;

/// Every route the service dispatches, as `(method, path, summary)`.
///
/// `<...>` segments are path parameters; the `/admin/*` entry stands for
/// the whole mounted admin table. `tests/docs.rs` checks `docs/API.md`
/// documents every row, so the reference cannot silently fall behind
/// the router.
pub const ROUTES: &[(&str, &str, &str)] = &[
    ("GET", "/", "service index: name, version, route table"),
    (
        "POST",
        "/query",
        "run an AQL statement; result rows stream back as chunked NDJSON",
    ),
    (
        "POST",
        "/ingest/<dataset>",
        "bulk NDJSON ingestion with backpressure (429 + Retry-After when saturated)",
    ),
    ("GET", "/datasets", "list datasets, record counts, and indexes"),
    ("POST", "/datasets", "create a dataset"),
    (
        "POST",
        "/datasets/<dataset>/indexes",
        "create and backfill a secondary index (keyword / ngram / btree)",
    ),
    ("GET", "/feed", "ingestion feed counters and in-flight bytes"),
    (
        "*",
        "/admin/*",
        "read-only admin surface (health, metrics, queries, slow log, traces, cancel)",
    ),
];

/// Configuration of one [`AsterixServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:7654"`; port `0` asks the OS.
    pub listen: String,
    /// HTTP parsing limits. The body bound is what caps a single ingest
    /// batch (default 8 MiB).
    pub http: HttpLimits,
    /// Ceiling on ingest batch bytes admitted but not yet durable,
    /// across all concurrent feed connections. `None` uses the
    /// instance's per-query memory budget
    /// ([`asterix_hyracks::SchedulerConfig::memory_budget_bytes`]), or
    /// 64 MiB when that is unlimited — ingest buffers what one query is
    /// allowed to hold, no more.
    pub max_inflight_ingest_bytes: Option<u64>,
    /// `Retry-After` value sent with `429`/`503` rejections.
    pub retry_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:7654".to_string(),
            http: HttpLimits::default(),
            max_inflight_ingest_bytes: None,
            retry_after: Duration::from_secs(1),
        }
    }
}

impl ServerConfig {
    /// A config binding an OS-assigned port — what tests use.
    pub fn ephemeral() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        }
    }
}

/// The running service: a bound [`HttpServer`] routing to one
/// [`Instance`].
pub struct AsterixServer {
    server: HttpServer,
    db: Arc<Instance>,
}

impl AsterixServer {
    /// Bind `config.listen` and serve `db`. Queries, ingestion, DDL and
    /// admin requests all run against this one instance, concurrently —
    /// admission control (PR 5's scheduler) arbitrates between them.
    pub fn start(db: Arc<Instance>, config: ServerConfig) -> std::io::Result<AsterixServer> {
        let router = Arc::new(Router::new(Arc::clone(&db), &config));
        let server = HttpServer::bind(
            &config.listen,
            "asterix-server",
            config.http.clone(),
            move |req, w| router.handle(req, w),
        )?;
        Ok(AsterixServer { server, db })
    }

    /// The bound socket address (resolves port-`0` binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Base URL, e.g. `http://127.0.0.1:7654`.
    pub fn url(&self) -> String {
        self.server.url()
    }

    /// The instance this server fronts.
    pub fn instance(&self) -> &Arc<Instance> {
        &self.db
    }

    /// Stop accepting connections. In-flight handler threads finish
    /// their current request. Called automatically on drop; idempotent.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}
