//! Ingestion backpressure: a byte-bounded admission gate for in-flight
//! feed batches.
//!
//! The HTTP body of a `POST /ingest/<dataset>` batch sits in memory from
//! parse until the last record is durably inserted. The
//! [`FeedController`] bounds the total of those resident bytes across
//! all concurrent feed connections by the same per-query memory budget
//! queries run under — ingestion is allowed to hold what one query may
//! hold, no more. A batch that does not fit *right now* is rejected
//! with `429` (`Retry-After` tells the client when to resend); a batch
//! that could *never* fit is rejected with `413` so the client splits
//! it instead of retrying forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why [`FeedController::try_admit`] refused a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedRejection {
    /// In-flight bytes plus this batch would exceed the cap; retry once
    /// current batches drain (HTTP `429`).
    Saturated,
    /// The batch alone exceeds the cap; it can never be admitted and
    /// must be split (HTTP `413`).
    TooLarge,
}

/// Counters shared between the controller and its permits.
#[derive(Debug, Default)]
struct FeedState {
    inflight_bytes: AtomicU64,
    inflight_batches: AtomicU64,
    accepted_batches: AtomicU64,
    rejected_batches: AtomicU64,
    ingested_records: AtomicU64,
}

/// The byte-bounded admission gate for feed batches.
#[derive(Clone, Debug)]
pub struct FeedController {
    max_inflight_bytes: u64,
    state: Arc<FeedState>,
}

impl FeedController {
    /// A controller admitting at most `max_inflight_bytes` of batch
    /// bytes at once (at least one minimal batch is always admissible —
    /// a zero cap would deadlock the feed).
    pub fn new(max_inflight_bytes: u64) -> FeedController {
        FeedController {
            max_inflight_bytes: max_inflight_bytes.max(1),
            state: Arc::new(FeedState::default()),
        }
    }

    /// Try to admit a `bytes`-sized batch. `Ok` returns a permit that
    /// releases the bytes when dropped (after the batch's inserts are
    /// durable); `Err` says whether to retry ([`FeedRejection::Saturated`])
    /// or split ([`FeedRejection::TooLarge`]).
    pub fn try_admit(&self, bytes: u64) -> Result<FeedPermit, FeedRejection> {
        if bytes > self.max_inflight_bytes {
            self.state.rejected_batches.fetch_add(1, Ordering::Relaxed);
            return Err(FeedRejection::TooLarge);
        }
        // Optimistic charge; undo on overshoot. Concurrent arrivals can
        // both fail even when one would fit — acceptable for a gate
        // whose clients retry.
        let charged = self.state.inflight_bytes.fetch_add(bytes, Ordering::SeqCst) + bytes;
        if charged > self.max_inflight_bytes {
            self.state.inflight_bytes.fetch_sub(bytes, Ordering::SeqCst);
            self.state.rejected_batches.fetch_add(1, Ordering::Relaxed);
            return Err(FeedRejection::Saturated);
        }
        self.state.inflight_batches.fetch_add(1, Ordering::SeqCst);
        self.state.accepted_batches.fetch_add(1, Ordering::Relaxed);
        Ok(FeedPermit {
            state: Arc::clone(&self.state),
            bytes,
        })
    }

    /// Record `n` durably-inserted records (drives the `GET /feed`
    /// counter).
    pub fn record_ingested(&self, n: u64) {
        self.state.ingested_records.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of the feed counters.
    pub fn snapshot(&self) -> FeedSnapshot {
        FeedSnapshot {
            max_inflight_bytes: self.max_inflight_bytes,
            inflight_bytes: self.state.inflight_bytes.load(Ordering::SeqCst),
            inflight_batches: self.state.inflight_batches.load(Ordering::SeqCst),
            accepted_batches: self.state.accepted_batches.load(Ordering::Relaxed),
            rejected_batches: self.state.rejected_batches.load(Ordering::Relaxed),
            ingested_records: self.state.ingested_records.load(Ordering::Relaxed),
        }
    }
}

/// An admitted batch's charge; dropping releases its bytes.
#[derive(Debug)]
pub struct FeedPermit {
    state: Arc<FeedState>,
    bytes: u64,
}

impl Drop for FeedPermit {
    fn drop(&mut self) {
        self.state
            .inflight_bytes
            .fetch_sub(self.bytes, Ordering::SeqCst);
        self.state.inflight_batches.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What `GET /feed` reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeedSnapshot {
    /// The configured in-flight byte cap.
    pub max_inflight_bytes: u64,
    /// Batch bytes currently admitted and not yet durable.
    pub inflight_bytes: u64,
    /// Batches currently admitted.
    pub inflight_batches: u64,
    /// Batches admitted over the server's lifetime.
    pub accepted_batches: u64,
    /// Batches rejected (saturated or too large) over the lifetime.
    pub rejected_batches: u64,
    /// Records durably inserted through the feed.
    pub ingested_records: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_saturated_and_releases_on_drop() {
        let feed = FeedController::new(100);
        let a = feed.try_admit(60).unwrap();
        assert!(matches!(
            feed.try_admit(60),
            Err(FeedRejection::Saturated)
        ));
        let snap = feed.snapshot();
        assert_eq!(snap.inflight_bytes, 60);
        assert_eq!(snap.inflight_batches, 1);
        assert_eq!(snap.rejected_batches, 1);

        drop(a);
        assert_eq!(feed.snapshot().inflight_bytes, 0);
        let _b = feed.try_admit(60).unwrap();
    }

    #[test]
    fn oversized_batches_are_permanently_rejected() {
        let feed = FeedController::new(100);
        assert!(matches!(feed.try_admit(101), Err(FeedRejection::TooLarge)));
        // Nothing stays charged after a rejection.
        assert_eq!(feed.snapshot().inflight_bytes, 0);
        assert!(feed.try_admit(100).is_ok());
    }
}
