//! `asterix-server` — the engine as a network service.
//!
//! Boots one [`Instance`] (durable when `--data-dir` is given: existing
//! data recovers from the WAL on startup) and serves the full HTTP API
//! on `--listen`: streaming `POST /query`, `POST /ingest/<dataset>`
//! feeds with backpressure, DDL routes, and the `/admin/*` surface.
//!
//! ```text
//! cargo run --release -p asterix-server -- --listen 127.0.0.1:7654 --data-dir ./data
//! curl -s http://127.0.0.1:7654/ | python3 -m json.tool
//! curl -s -X POST http://127.0.0.1:7654/query \
//!      -d '{"statement": "for $r in dataset Reviews return $r.id"}'
//! ```
//!
//! Arguments:
//!
//! * `--listen <addr>` — bind address (default `127.0.0.1:7654`; port
//!   `0` for OS-assigned, printed on startup).
//! * `--data-dir <path>` — durable storage directory; omitted means
//!   in-memory only.
//! * `--partitions <n>` — simulated cluster partitions (default 4).
//! * `--duration <secs>` — exit after a fixed time (CI smoke tests);
//!   without it the server runs until killed.

use asterix_core::{DurabilityConfig, Instance, InstanceConfig};
use asterix_server::{AsterixServer, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    data_dir: Option<String>,
    partitions: usize,
    duration: Option<Duration>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7654".to_string(),
        data_dir: None,
        partitions: 4,
        duration: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--partitions" => {
                args.partitions = value("--partitions")?
                    .parse()
                    .map_err(|e| format!("--partitions: {e}"))?
            }
            "--duration" => {
                let secs: u64 = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
                args.duration = Some(Duration::from_secs(secs));
            }
            "--help" | "-h" => {
                println!(
                    "usage: asterix-server [--listen <addr>] [--data-dir <path>] \
                     [--partitions <n>] [--duration <secs>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("asterix-server: {e}");
            std::process::exit(2);
        }
    };

    let mut config = InstanceConfig::with_partitions(args.partitions);
    if let Some(dir) = &args.data_dir {
        config.durability = DurabilityConfig::at(dir);
    }
    let db = match Instance::open(config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("asterix-server: cannot open instance: {e}");
            std::process::exit(1);
        }
    };
    if let Some(stats) = db.recovery_stats() {
        eprintln!(
            "recovered {} partitions, {} wal records replayed",
            stats.partitions_recovered, stats.wal_records_replayed
        );
    }

    let server_config = ServerConfig {
        listen: args.listen.clone(),
        ..ServerConfig::default()
    };
    let server = match AsterixServer::start(Arc::new(db), server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("asterix-server: cannot bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!("asterix-server listening on {}", server.url());
    println!("  durable: {}", server.instance().is_durable());
    println!("  try: curl -s {}/ | python3 -m json.tool", server.url());

    match args.duration {
        Some(d) => std::thread::sleep(d),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}
