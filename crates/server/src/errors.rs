//! The engine-error → HTTP mapping: every [`CoreError`] a query can end
//! with has one stable status code and machine-readable error code, used
//! both for full responses (failure before the first result row) and for
//! the in-band NDJSON error line (failure mid-stream, after the `200`
//! status line is already on the wire).

use asterix_adm::Value;
use asterix_core::http::Response;
use asterix_core::CoreError;
use asterix_hyracks::ExecError;
use std::time::Duration;

/// Map an engine error to `(http_status, error_code, retryable)`.
///
/// | error                                | status | code                     | retryable |
/// |--------------------------------------|--------|--------------------------|-----------|
/// | `Parse`                              | 400    | `parse_error`            | no  |
/// | `Translate`                          | 400    | `translate_error`        | no  |
/// | `Schema`                             | 400    | `schema_error`           | no  |
/// | `Execution(QueueFull)`               | 429    | `queue_full`             | yes |
/// | `Execution(AdmissionTimeout)`        | 503    | `admission_timeout`      | yes |
/// | `Execution(MemoryBudgetExceeded)`    | 507    | `memory_budget_exceeded` | no  |
/// | `Execution(other)`                   | 500    | `execution_error`        | no  |
/// | `Timeout`                            | 504    | `timeout`                | no  |
/// | `Cancelled`                          | 499    | `cancelled`              | no  |
/// | `Io`                                 | 500    | `io_error`               | no  |
///
/// `retryable` means the request was rejected by admission control
/// without running — resending the identical request later can succeed.
pub fn error_parts(e: &CoreError) -> (u16, &'static str, bool) {
    match e {
        CoreError::Parse(_) => (400, "parse_error", false),
        CoreError::Translate(_) => (400, "translate_error", false),
        CoreError::Schema(_) => (400, "schema_error", false),
        CoreError::Execution(ExecError::QueueFull { .. }) => (429, "queue_full", true),
        CoreError::Execution(ExecError::AdmissionTimeout(_)) => (503, "admission_timeout", true),
        CoreError::Execution(ExecError::MemoryBudgetExceeded { .. }) => {
            (507, "memory_budget_exceeded", false)
        }
        CoreError::Execution(_) => (500, "execution_error", false),
        CoreError::Timeout(_) => (504, "timeout", false),
        CoreError::Cancelled => (499, "cancelled", false),
        CoreError::Io(_) => (500, "io_error", false),
    }
}

/// The error payload both delivery paths share:
/// `{"error": {"code", "message", "status", "retryable"}}`.
fn error_value(e: &CoreError) -> Value {
    let (status, code, retryable) = error_parts(e);
    Value::record(vec![(
        "error".to_string(),
        Value::record(vec![
            ("code".to_string(), Value::from(code)),
            ("message".to_string(), Value::from(e.to_string())),
            ("status".to_string(), Value::from(status as i64)),
            ("retryable".to_string(), Value::from(retryable)),
        ]),
    )])
}

/// A complete HTTP response for an error discovered before anything was
/// streamed. Retryable rejections carry `Retry-After: <retry_after>`.
pub fn error_response(e: &CoreError, retry_after: Duration) -> Response {
    let (status, _, retryable) = error_parts(e);
    let response = Response::json(status, error_value(e));
    if retryable {
        response.with_header("Retry-After", retry_after.as_secs().max(1).to_string())
    } else {
        response
    }
}

/// The final NDJSON line for an error discovered mid-stream, newline
/// included. The `status` field carries the code the response *would*
/// have had — the actual status line (`200`) is long gone by then.
pub fn ndjson_error_line(e: &CoreError) -> String {
    let mut line = asterix_adm::json::to_string(&error_value(e));
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_are_stable() {
        let cases: Vec<(CoreError, u16, &str)> = vec![
            (CoreError::Parse("x".into()), 400, "parse_error"),
            (CoreError::Translate("x".into()), 400, "translate_error"),
            (CoreError::Schema("x".into()), 400, "schema_error"),
            (
                CoreError::Execution(ExecError::QueueFull {
                    queued: 4,
                    queue_depth: 4,
                }),
                429,
                "queue_full",
            ),
            (
                CoreError::Execution(ExecError::AdmissionTimeout(Duration::from_secs(1))),
                503,
                "admission_timeout",
            ),
            (
                CoreError::Execution(ExecError::MemoryBudgetExceeded { used: 2, limit: 1 }),
                507,
                "memory_budget_exceeded",
            ),
            (
                CoreError::Execution(ExecError::InvalidJob("x".into())),
                500,
                "execution_error",
            ),
            (CoreError::Timeout(Duration::from_secs(1)), 504, "timeout"),
            (CoreError::Cancelled, 499, "cancelled"),
            (CoreError::Io("x".into()), 500, "io_error"),
        ];
        for (e, status, code) in cases {
            let (s, c, _) = error_parts(&e);
            assert_eq!((s, c), (status, code), "{e}");
        }
    }

    #[test]
    fn retryable_rejections_carry_retry_after() {
        let e = CoreError::Execution(ExecError::QueueFull {
            queued: 1,
            queue_depth: 1,
        });
        let r = error_response(&e, Duration::from_secs(2));
        assert_eq!(r.status, 429);
        assert!(r
            .extra_headers
            .iter()
            .any(|(n, v)| *n == "Retry-After" && v == "2"));

        let r = error_response(&CoreError::Parse("x".into()), Duration::from_secs(2));
        assert_eq!(r.status, 400);
        assert!(r.extra_headers.is_empty());
    }

    #[test]
    fn ndjson_line_is_one_json_object() {
        let line = ndjson_error_line(&CoreError::Cancelled);
        assert!(line.ends_with('\n'));
        let v = asterix_adm::json::parse(line.trim()).unwrap();
        assert_eq!(v.field("error").field("code").as_str(), Some("cancelled"));
        assert_eq!(v.field("error").field("status").as_i64(), Some(499));
    }
}
