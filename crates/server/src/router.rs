//! The route table and handlers of the service.
//!
//! Routing is a plain match over `(method, path)` — the full table is
//! [`crate::ROUTES`]. Every handler except `POST /query` returns a
//! complete [`Response`]; the query handler streams chunked NDJSON
//! through the [`ResponseWriter`] so result sets never materialize
//! server-side.

use crate::errors::{error_parts, error_response, ndjson_error_line};
use crate::feed::{FeedController, FeedRejection};
use crate::ServerConfig;
use asterix_adm::{json, IndexKind, Value};
use asterix_core::http::{Request, Response, ResponseWriter};
use asterix_core::{admin_response, CoreError, Instance, QueryClass, QueryOptions, QueryResult};
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub(crate) struct Router {
    db: Arc<Instance>,
    feed: FeedController,
    retry_after: Duration,
}

impl Router {
    pub(crate) fn new(db: Arc<Instance>, config: &ServerConfig) -> Router {
        let cap = config.max_inflight_ingest_bytes.unwrap_or_else(|| {
            // Ingest may hold in flight what one query is allowed to
            // hold under the admission controller's memory budget.
            match db.config().scheduler.memory_budget_bytes {
                0 => 64 * 1024 * 1024,
                budget => budget,
            }
        });
        Router {
            db,
            feed: FeedController::new(cap),
            retry_after: config.retry_after,
        }
    }

    /// Dispatch one request. `Some` is a complete response; `None`
    /// means the handler streamed the body itself.
    pub(crate) fn handle(&self, req: &Request, w: &mut ResponseWriter<'_>) -> Option<Response> {
        let path = req.route_path().to_string();

        // The whole admin surface mounts under /admin/*.
        if let Some(rest) = path.strip_prefix("/admin") {
            if rest.is_empty() || rest.starts_with('/') {
                let sub = if rest.is_empty() { "/" } else { rest };
                return Some(admin_response(&self.db, &req.method, sub));
            }
        }

        match (req.method.as_str(), path.as_str()) {
            ("GET", "/") => Some(self.index_response()),
            ("POST", "/query") => self.handle_query(req, w),
            ("GET", "/datasets") => Some(self.list_datasets()),
            ("POST", "/datasets") => Some(self.create_dataset(req)),
            ("GET", "/feed") => Some(self.feed_response()),
            (method, p) => {
                if let Some(ds) = p.strip_prefix("/ingest/") {
                    if !ds.is_empty() && !ds.contains('/') {
                        return Some(match method {
                            "POST" => self.handle_ingest(ds, req),
                            _ => method_not_allowed("POST"),
                        });
                    }
                }
                if let Some(ds) = p
                    .strip_prefix("/datasets/")
                    .and_then(|rest| rest.strip_suffix("/indexes"))
                {
                    if !ds.is_empty() && !ds.contains('/') {
                        return Some(match method {
                            "POST" => self.create_index(ds, req),
                            _ => method_not_allowed("POST"),
                        });
                    }
                }
                Some(match p {
                    "/" | "/datasets" | "/feed" => method_not_allowed("GET, POST"),
                    "/query" => method_not_allowed("POST"),
                    _ => Response::error(404, &format!("no route {method} {p}")),
                })
            }
        }
    }

    /// `GET /` — service name, version, and the route table.
    fn index_response(&self) -> Response {
        let routes: Vec<Value> = crate::ROUTES
            .iter()
            .map(|(method, path, summary)| {
                Value::record(vec![
                    ("method".to_string(), Value::from(*method)),
                    ("path".to_string(), Value::from(*path)),
                    ("summary".to_string(), Value::from(*summary)),
                ])
            })
            .collect();
        Response::json(
            200,
            Value::record(vec![
                ("service".to_string(), Value::from("asterix-server")),
                (
                    "version".to_string(),
                    Value::from(env!("CARGO_PKG_VERSION")),
                ),
                ("routes".to_string(), Value::OrderedList(routes)),
            ]),
        )
    }

    /// `POST /query` — body `{"statement": "...", "options": {...}}`.
    ///
    /// The statement runs on this connection's thread; the executor's
    /// result sink writes each frame straight to the socket through a
    /// detached [`asterix_core::http::StreamHandle`] whose status line
    /// goes out lazily with the first frame. That decides the status
    /// honestly with no extra thread or queue per query: an error
    /// *before* the first result frame (parse, schema, admission
    /// rejection, ...) still has the full HTTP status vocabulary; an
    /// error *after* rows have streamed arrives as the final in-band
    /// NDJSON line. A client that disconnects mid-stream fails the
    /// sink's socket write, which cancels the query cooperatively —
    /// and a slow client backpressures the executor naturally.
    fn handle_query(&self, req: &Request, w: &mut ResponseWriter<'_>) -> Option<Response> {
        let body = match json::parse(&req.body_str()) {
            Ok(v) => v,
            Err(e) => return Some(Response::error(400, &format!("invalid JSON body: {e}"))),
        };
        let statement = match body.field("statement").as_str() {
            Some(s) => s.to_string(),
            None => {
                return Some(Response::error(
                    400,
                    "body must be {\"statement\": \"<AQL>\", \"options\": {...}?}",
                ))
            }
        };
        let mut options = QueryOptions::default();
        let opts = body.field("options");
        if let Some(ms) = opts.field("timeout_ms").as_i64() {
            options.timeout = Some(Duration::from_millis(ms.max(0) as u64));
        }
        if let Some(profile) = opts.field("profile").as_bool() {
            options.profile = profile;
        }
        if let Some(class) = opts.field("class").as_str() {
            match QueryClass::from_name(class) {
                Some(c) => options.admission_class = Some(c),
                None => {
                    return Some(Response::error(
                        400,
                        &format!("unknown query class '{class}' (scan, index-select, index-join)"),
                    ))
                }
            }
        }

        let handle = match w.detach(200, "application/x-ndjson", &[]) {
            Ok(h) => h,
            Err(e) => return Some(Response::error(500, &format!("cannot stream: {e}"))),
        };
        let shared = Arc::new(Mutex::new(handle));
        let sink = Arc::clone(&shared);
        let outcome = self.db.query_streaming(&statement, &options, move |rows| {
            let mut buf = String::new();
            for row in rows {
                buf.push_str("{\"row\":");
                buf.push_str(&json::to_string(&row));
                buf.push_str("}\n");
            }
            sink.lock()
                .unwrap()
                .write_chunk(buf.as_bytes())
                .map_err(|_| "client disconnected".to_string())
        });

        // The executor is done delivering; this lock cannot contend.
        let mut handle = shared.lock().unwrap();
        match outcome {
            Ok(result) => {
                // A zero-row result still streams: 200, done line only.
                let _ = handle.write_chunk(done_line(&result).as_bytes());
                let _ = handle.finish();
                w.mark_streamed();
                None
            }
            Err(e) if handle.started() => {
                // Rows are already on the wire under a 200 status; the
                // error becomes the final in-band NDJSON line.
                let _ = handle.write_chunk(ndjson_error_line(&e).as_bytes());
                let _ = handle.finish();
                w.mark_streamed();
                None
            }
            Err(e) => Some(error_response(&e, self.retry_after)),
        }
    }

    /// `POST /ingest/<dataset>` — NDJSON body, one record per line.
    ///
    /// The whole batch parses up front (line-precise `400`s, nothing
    /// half-applied on malformed input), is admitted against the
    /// in-flight byte cap, then inserts record by record.
    /// [`Instance::insert`] on a durable instance returns only after
    /// the WAL group-commit fsync, so `200` means every record survives
    /// `kill -9`.
    fn handle_ingest(&self, dataset: &str, req: &Request) -> Response {
        let text = req.body_str();
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match json::parse(line) {
                Ok(v) => records.push(v),
                Err(e) => return Response::error(400, &format!("line {}: {e}", i + 1)),
            }
        }
        if records.is_empty() {
            return Response::error(400, "empty batch: body must be NDJSON, one record per line");
        }

        let permit = match self.feed.try_admit(req.body.len() as u64) {
            Ok(p) => p,
            Err(FeedRejection::Saturated) => {
                let snap = self.feed.snapshot();
                return Response::json(
                    429,
                    Value::record(vec![(
                        "error".to_string(),
                        Value::record(vec![
                            ("code".to_string(), Value::from("feed_saturated")),
                            (
                                "message".to_string(),
                                Value::from(format!(
                                    "ingest feed saturated: {} of {} in-flight bytes",
                                    snap.inflight_bytes, snap.max_inflight_bytes
                                )),
                            ),
                            ("status".to_string(), Value::from(429i64)),
                            ("retryable".to_string(), Value::from(true)),
                        ]),
                    )]),
                )
                .with_header("Retry-After", self.retry_after.as_secs().max(1).to_string());
            }
            Err(FeedRejection::TooLarge) => {
                return Response::error(
                    413,
                    &format!(
                        "batch of {} bytes exceeds the {}-byte in-flight cap; split it",
                        req.body.len(),
                        self.feed.snapshot().max_inflight_bytes
                    ),
                )
            }
        };

        let total = records.len() as u64;
        let mut ingested = 0u64;
        for record in records {
            if let Err(e) = self.db.insert(dataset, record) {
                drop(permit);
                // Records before the failure are in (and durable); say
                // exactly how many.
                let (status, code, retryable) = error_parts(&e);
                let status = if status == 400 { 400 } else { status };
                return Response::json(
                    status,
                    Value::record(vec![
                        (
                            "error".to_string(),
                            Value::record(vec![
                                ("code".to_string(), Value::from(code)),
                                ("message".to_string(), Value::from(e.to_string())),
                                ("status".to_string(), Value::from(status as i64)),
                                ("retryable".to_string(), Value::from(retryable)),
                            ]),
                        ),
                        ("ingested".to_string(), Value::from(ingested as i64)),
                    ]),
                );
            }
            ingested += 1;
        }
        self.feed.record_ingested(ingested);
        drop(permit);
        Response::json(
            200,
            Value::record(vec![
                ("dataset".to_string(), Value::from(dataset)),
                ("ingested".to_string(), Value::from(ingested as i64)),
                ("batch".to_string(), Value::from(total as i64)),
                ("durable".to_string(), Value::from(self.db.is_durable())),
            ]),
        )
    }

    /// `GET /datasets` — names, primary keys, record counts, indexes.
    fn list_datasets(&self) -> Response {
        let catalog = self.db.catalog();
        let mut defs: Vec<_> = catalog.datasets().cloned().collect();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        let datasets: Vec<Value> = defs
            .iter()
            .map(|ds| {
                let indexes: Vec<Value> = ds
                    .indexes
                    .iter()
                    .map(|ix| {
                        Value::record(vec![
                            ("name".to_string(), Value::from(ix.name.as_str())),
                            ("field".to_string(), Value::from(ix.field.as_str())),
                            ("kind".to_string(), Value::from(ix.kind.name())),
                        ])
                    })
                    .collect();
                Value::record(vec![
                    ("name".to_string(), Value::from(ds.name.as_str())),
                    (
                        "primary_key".to_string(),
                        Value::from(ds.primary_key.as_str()),
                    ),
                    (
                        "records".to_string(),
                        Value::from(self.db.count_records(&ds.name).unwrap_or(0) as i64),
                    ),
                    ("indexes".to_string(), Value::OrderedList(indexes)),
                ])
            })
            .collect();
        Response::json(
            200,
            Value::record(vec![(
                "datasets".to_string(),
                Value::OrderedList(datasets),
            )]),
        )
    }

    /// `POST /datasets` — body `{"name": "...", "primary_key": "..."}`.
    fn create_dataset(&self, req: &Request) -> Response {
        let body = match json::parse(&req.body_str()) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
        };
        let (name, pk) = match (
            body.field("name").as_str(),
            body.field("primary_key").as_str(),
        ) {
            (Some(n), Some(k)) => (n.to_string(), k.to_string()),
            _ => {
                return Response::error(
                    400,
                    "body must be {\"name\": \"...\", \"primary_key\": \"...\"}",
                )
            }
        };
        match self.db.create_dataset(&name, &pk) {
            Ok(()) => Response::json(
                201,
                Value::record(vec![
                    ("dataset".to_string(), Value::from(name)),
                    ("primary_key".to_string(), Value::from(pk)),
                ]),
            ),
            Err(e) => ddl_error(&e),
        }
    }

    /// `POST /datasets/<dataset>/indexes` — body
    /// `{"name": "...", "field": "...", "kind": "keyword"|"ngram"|"btree", "gram": n?}`.
    fn create_index(&self, dataset: &str, req: &Request) -> Response {
        let body = match json::parse(&req.body_str()) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
        };
        let (name, field) = match (body.field("name").as_str(), body.field("field").as_str()) {
            (Some(n), Some(f)) => (n.to_string(), f.to_string()),
            _ => {
                return Response::error(
                    400,
                    "body must be {\"name\", \"field\", \"kind\": \"keyword\"|\"ngram\"|\"btree\", \"gram\"?}",
                )
            }
        };
        let kind = match body.field("kind").as_str() {
            Some("keyword") => IndexKind::Keyword,
            Some("btree") => IndexKind::BTree,
            Some("ngram") => {
                let gram = body.field("gram").as_i64().unwrap_or(2);
                if !(1..=8).contains(&gram) {
                    return Response::error(400, "\"gram\" must be between 1 and 8");
                }
                IndexKind::NGram(gram as usize)
            }
            Some(other) => {
                return Response::error(
                    400,
                    &format!("unknown index kind '{other}' (keyword, ngram, btree)"),
                )
            }
            None => return Response::error(400, "missing \"kind\" (keyword, ngram, btree)"),
        };
        match self.db.create_index(dataset, &name, &field, kind) {
            Ok(stats) => Response::json(
                201,
                Value::record(vec![
                    ("index".to_string(), Value::from(stats.index)),
                    (
                        "records_indexed".to_string(),
                        Value::from(stats.records_indexed as i64),
                    ),
                    (
                        "build_us".to_string(),
                        Value::from(stats.build_time.as_micros() as i64),
                    ),
                    (
                        "size_bytes".to_string(),
                        Value::from(stats.size_bytes as i64),
                    ),
                ]),
            ),
            Err(e) => ddl_error(&e),
        }
    }

    /// `GET /feed` — the [`FeedController`] counters.
    fn feed_response(&self) -> Response {
        let snap = self.feed.snapshot();
        Response::json(
            200,
            Value::record(vec![
                (
                    "max_inflight_bytes".to_string(),
                    Value::from(snap.max_inflight_bytes as i64),
                ),
                (
                    "inflight_bytes".to_string(),
                    Value::from(snap.inflight_bytes as i64),
                ),
                (
                    "inflight_batches".to_string(),
                    Value::from(snap.inflight_batches as i64),
                ),
                (
                    "accepted_batches".to_string(),
                    Value::from(snap.accepted_batches as i64),
                ),
                (
                    "rejected_batches".to_string(),
                    Value::from(snap.rejected_batches as i64),
                ),
                (
                    "ingested_records".to_string(),
                    Value::from(snap.ingested_records as i64),
                ),
            ]),
        )
    }
}

/// The final `{"done": {...}}` NDJSON line of a successful stream.
fn done_line(result: &QueryResult) -> String {
    let mut fields = vec![
        (
            "query_id".to_string(),
            Value::from(result.query_id as i64),
        ),
        (
            "rows".to_string(),
            Value::from(result.streamed_rows as i64),
        ),
        (
            "class".to_string(),
            Value::from(QueryClass::classify(&result.plan).name()),
        ),
        (
            "compile_us".to_string(),
            Value::from(result.compile_time.as_micros() as i64),
        ),
        (
            "execute_us".to_string(),
            Value::from(result.execution_time.as_micros() as i64),
        ),
    ];
    if let Some(profile) = &result.profile {
        fields.push(("profile".to_string(), profile.to_json()));
    }
    let mut line = json::to_string(&Value::record(vec![(
        "done".to_string(),
        Value::record(fields),
    )]));
    line.push('\n');
    line
}

/// DDL-specific error mapping: "already exists" schema violations are
/// conflicts (`409`), everything else follows [`error_parts`].
fn ddl_error(e: &CoreError) -> Response {
    if let CoreError::Schema(message) = e {
        if message.contains("already exists") {
            return Response::error(409, message);
        }
    }
    error_response(e, Duration::from_secs(1))
}

fn method_not_allowed(allow: &str) -> Response {
    Response::error(405, "method not allowed").with_header("Allow", allow.to_string())
}
