//! # asterix-datagen
//!
//! Seeded synthetic generators standing in for the paper's three real
//! datasets (Table 3) with field characteristics matched to Table 4:
//!
//! | Field                     | avg chars | avg words |
//! |---------------------------|-----------|-----------|
//! | AmazonReview.reviewerName | 10.3      | 1.7       |
//! | Reddit.author             | 24.3      | 4.1       |
//! | Twitter.user.name         | 10.6      | 1.7       |
//! | AmazonReview.summary      | 22.8      | 4.0       |
//! | Reddit.title              | larger    | larger    |
//! | Twitter.text              | 62.5      | 9.7       |
//!
//! Token frequencies are Zipf-distributed (real text is), which is what
//! gives prefix filtering and T-occurrence their selectivity behaviour;
//! names are drawn from a pool with *edit-distance-close variants*
//! injected so edit-distance experiments have non-trivial answers.
//!
//! Substitution note (DESIGN.md #2): the paper used 83.7M–196M record
//! crawls; these generators produce arbitrarily many records with the
//! same field shapes at laptop scale. Everything is deterministic in the
//! seed.

pub mod profile;
pub mod text;

pub use profile::{profile_field, FieldProfile};
pub use text::{TextGen, Vocabulary};

use asterix_adm::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate Amazon-review-like records:
/// `{id, reviewerName, summary, score}`.
pub fn amazon_reviews(n: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::synthetic(2_000, seed ^ 0xA1);
    let names = text::NamePool::new(400, seed ^ 0xA2);
    let gen = TextGen::new(vocab);
    (0..n)
        .map(|i| {
            Value::record(vec![
                ("id".into(), Value::Int64(i as i64)),
                ("reviewerName".into(), Value::String(names.name(&mut rng))),
                (
                    "summary".into(),
                    Value::String(gen.sentence(&mut rng, 4.0, 44)),
                ),
                ("score".into(), Value::Int64(rng.gen_range(1..=5))),
            ])
        })
        .collect()
}

/// Generate Reddit-submission-like records: `{id, author, title}`.
pub fn reddit_submissions(n: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::synthetic(4_000, seed ^ 0xB1);
    let names = text::NamePool::new(600, seed ^ 0xB2);
    let gen = TextGen::new(vocab);
    (0..n)
        .map(|i| {
            // Reddit authors are longer handles: name + digits.
            let author = format!("{}_{}", names.name(&mut rng), rng.gen_range(0..10_000));
            Value::record(vec![
                ("id".into(), Value::Int64(i as i64)),
                ("author".into(), Value::String(author)),
                ("title".into(), Value::String(gen.sentence(&mut rng, 9.0, 60))),
            ])
        })
        .collect()
}

/// Generate tweet-like records: `{id, user: {name}, text}`.
pub fn tweets(n: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::synthetic(3_000, seed ^ 0xC1);
    let names = text::NamePool::new(500, seed ^ 0xC2);
    let gen = TextGen::new(vocab);
    (0..n)
        .map(|i| {
            Value::record(vec![
                ("id".into(), Value::Int64(i as i64)),
                (
                    "user".into(),
                    Value::record(vec![("name".into(), Value::String(names.name(&mut rng)))]),
                ),
                ("text".into(), Value::String(gen.sentence(&mut rng, 9.7, 70))),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(amazon_reviews(50, 7), amazon_reviews(50, 7));
        assert_ne!(amazon_reviews(50, 7), amazon_reviews(50, 8));
    }

    #[test]
    fn amazon_shape() {
        let rows = amazon_reviews(200, 42);
        assert_eq!(rows.len(), 200);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.field("id"), &Value::Int64(i as i64));
            assert!(r.field("reviewerName").as_str().is_some());
            assert!(r.field("summary").as_str().is_some());
        }
    }

    #[test]
    fn tweets_have_nested_user_name() {
        let rows = tweets(20, 1);
        for r in &rows {
            assert!(r.field_path("user.name").as_str().is_some());
        }
    }

    #[test]
    fn summaries_match_table4_shape() {
        let rows = amazon_reviews(2_000, 3);
        let summaries: Vec<&str> = rows
            .iter()
            .filter_map(|r| r.field("summary").as_str())
            .collect();
        let p = profile_field(summaries.iter().copied());
        // Table 4: avg 4.0 words, max 44 words.
        assert!((3.0..=5.5).contains(&p.avg_words), "avg words {p:?}");
        assert!(p.max_words <= 44, "{p:?}");
        assert!(p.avg_chars > 10.0, "{p:?}");
    }

    #[test]
    fn names_include_similar_variants() {
        use asterix_simfn::edit_distance;
        let rows = amazon_reviews(800, 5);
        let names: Vec<&str> = rows
            .iter()
            .filter_map(|r| r.field("reviewerName").as_str())
            .collect();
        // There must exist pairs of distinct names within edit distance 2
        // (typo variants), or edit-distance experiments would return
        // nothing.
        let mut found = false;
        'outer: for (i, a) in names.iter().enumerate().take(200) {
            for b in names.iter().skip(i + 1).take(200) {
                if a != b && edit_distance(a, b) <= 2 {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no near-duplicate names generated");
    }

    #[test]
    fn token_frequencies_are_skewed() {
        use std::collections::HashMap;
        let rows = amazon_reviews(2_000, 11);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for r in &rows {
            if let Some(s) = r.field("summary").as_str() {
                for t in asterix_simfn::word_tokens(s) {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf: the most common token is much more frequent than the
        // median one.
        let top = freqs[0];
        let median = freqs[freqs.len() / 2];
        assert!(top >= median * 10, "top {top} median {median}");
    }
}
