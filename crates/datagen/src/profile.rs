//! Field profiling — regenerating Table 4's characteristics from data.

/// Character/word statistics of a text field (one row of Table 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FieldProfile {
    pub avg_chars: f64,
    pub max_chars: usize,
    pub avg_words: f64,
    pub max_words: usize,
    pub count: usize,
}

/// Profile an iterator of field values.
pub fn profile_field<'a>(values: impl IntoIterator<Item = &'a str>) -> FieldProfile {
    let mut total_chars = 0usize;
    let mut total_words = 0usize;
    let mut max_chars = 0usize;
    let mut max_words = 0usize;
    let mut count = 0usize;
    for v in values {
        let chars = v.chars().count();
        let words = v.split_whitespace().count();
        total_chars += chars;
        total_words += words;
        max_chars = max_chars.max(chars);
        max_words = max_words.max(words);
        count += 1;
    }
    FieldProfile {
        avg_chars: if count == 0 {
            0.0
        } else {
            total_chars as f64 / count as f64
        },
        max_chars,
        avg_words: if count == 0 {
            0.0
        } else {
            total_words as f64 / count as f64
        },
        max_words,
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_basic() {
        let p = profile_field(["one two", "three"]);
        assert_eq!(p.count, 2);
        assert_eq!(p.max_words, 2);
        assert_eq!(p.max_chars, 7);
        assert!((p.avg_words - 1.5).abs() < 1e-12);
        assert!((p.avg_chars - 6.0).abs() < 1e-12);
    }

    #[test]
    fn profile_empty() {
        let p = profile_field(std::iter::empty());
        assert_eq!(p.count, 0);
        assert_eq!(p.avg_chars, 0.0);
    }
}
