//! Synthetic vocabularies, Zipf sampling, sentence and name generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CONSONANTS: &[char] = &[
    'b', 'c', 'd', 'f', 'g', 'h', 'j', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'w', 'z',
];
const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];

/// Build a pronounceable pseudo-word of `syllables` CV syllables.
fn syllable_word(rng: &mut StdRng, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables {
        w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
        w.push(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    w
}

/// A fixed vocabulary with Zipf-distributed sampling weights
/// (`weight(rank) ∝ 1/(rank+1)`), the standard model for natural-language
/// token frequencies.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    words: Vec<String>,
    /// Cumulative weights for inverse-CDF sampling.
    cumulative: Vec<f64>,
}

impl Vocabulary {
    /// `size` distinct pseudo-words, deterministic in `seed`.
    pub fn synthetic(size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::new();
        while words.len() < size {
            let s = 1 + (words.len() % 4).min(3); // 1-4 syllables, mixed
            let w = syllable_word(&mut rng, s + 1);
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0.0;
        for rank in 0..size {
            acc += 1.0 / (rank as f64 + 1.0);
            cumulative.push(acc);
        }
        Vocabulary { words, cumulative }
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Sample one word with Zipf weights.
    pub fn sample(&self, rng: &mut StdRng) -> &str {
        let total = *self.cumulative.last().expect("non-empty vocabulary");
        let x = rng.gen_range(0.0..total);
        let idx = self
            .cumulative
            .partition_point(|c| *c < x)
            .min(self.words.len() - 1);
        &self.words[idx]
    }
}

/// Sentence generator over a vocabulary.
#[derive(Clone, Debug)]
pub struct TextGen {
    vocab: Vocabulary,
}

impl TextGen {
    pub fn new(vocab: Vocabulary) -> Self {
        TextGen { vocab }
    }

    /// A sentence with a geometric-ish word count averaging `avg_words`,
    /// capped at `max_words`.
    pub fn sentence(&self, rng: &mut StdRng, avg_words: f64, max_words: usize) -> String {
        // Geometric distribution with mean `avg_words` (p = 1/avg).
        let p = (1.0 / avg_words.max(1.0)).clamp(0.001, 1.0);
        let mut n = 1usize;
        while n < max_words && rng.gen_range(0.0..1.0) > p {
            n += 1;
        }
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.vocab.sample(rng));
        }
        out
    }
}

/// A pool of person-like names; 30% of draws are *typo variants* of a base
/// name (1-2 character edits), so edit-distance queries have answers.
#[derive(Clone, Debug)]
pub struct NamePool {
    base: Vec<String>,
}

impl NamePool {
    pub fn new(size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut base = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::new();
        while base.len() < size {
            let syllables = rng.gen_range(2..=4);
            let n = syllable_word(&mut rng, syllables);
            if seen.insert(n.clone()) {
                base.push(n);
            }
        }
        NamePool { base }
    }

    /// Draw a name: either a base name or a near-duplicate variant;
    /// ~60% of names carry a second word (matching Table 4's avg 1.7
    /// words per reviewer name).
    pub fn name(&self, rng: &mut StdRng) -> String {
        let first = self.single(rng);
        if rng.gen_range(0.0..1.0) < 0.6 {
            format!("{first} {}", self.single(rng))
        } else {
            first
        }
    }

    /// One name word (base or typo variant).
    pub fn single(&self, rng: &mut StdRng) -> String {
        let base = &self.base[rng.gen_range(0..self.base.len())];
        if rng.gen_range(0.0..1.0) < 0.7 {
            return base.clone();
        }
        // Apply 1-2 random single-character edits.
        let mut chars: Vec<char> = base.chars().collect();
        let edits = rng.gen_range(1..=2);
        for _ in 0..edits {
            if chars.is_empty() {
                break;
            }
            let pos = rng.gen_range(0..chars.len());
            match rng.gen_range(0..3) {
                0 => chars[pos] = VOWELS[rng.gen_range(0..VOWELS.len())], // substitute
                1 => {
                    chars.insert(pos, CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
                    // insert
                }
                _ => {
                    chars.remove(pos); // delete
                }
            }
        }
        if chars.is_empty() {
            base.clone()
        } else {
            chars.into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_distinct_and_deterministic() {
        let v1 = Vocabulary::synthetic(500, 9);
        let v2 = Vocabulary::synthetic(500, 9);
        assert_eq!(v1.words, v2.words);
        let set: std::collections::HashSet<&String> = v1.words.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn zipf_sampling_prefers_low_ranks() {
        let v = Vocabulary::synthetic(100, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut first = 0;
        for _ in 0..2000 {
            if v.sample(&mut rng) == v.words[0] {
                first += 1;
            }
        }
        // Rank 0 should appear far more than 1/100 of the time.
        assert!(first > 100, "rank-0 count {first}");
    }

    #[test]
    fn sentence_word_counts_bounded() {
        let gen = TextGen::new(Vocabulary::synthetic(200, 5));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = gen.sentence(&mut rng, 4.0, 10);
            let words = s.split(' ').count();
            assert!((1..=10).contains(&words), "{s}");
        }
    }

    #[test]
    fn name_pool_nonempty_names() {
        let pool = NamePool::new(50, 4);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            assert!(!pool.name(&mut rng).is_empty());
        }
    }
}
