//! The AQL/AQL+ abstract syntax tree.

use asterix_adm::Value;
use asterix_hyracks::CmpOp;

/// A full query: prologue statements + body expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    pub statements: Vec<Stmt>,
    pub body: AstExpr,
}

impl Query {
    /// The body as a FLWOR expression, unwrapping a top-level aggregate
    /// call like `count( for ... )`.
    pub fn body_flwor(&self) -> Option<&Flwor> {
        match &self.body {
            AstExpr::Subquery(f) => Some(f),
            AstExpr::Call(_, args) if args.len() == 1 => match &args[0] {
                AstExpr::Subquery(f) => Some(f),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Prologue statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `use dataverse X;`
    UseDataverse(String),
    /// `set simfunction 'jaccard';` / `set simthreshold '0.5f';`
    Set(String, String),
}

/// A FLWOR expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Flwor {
    pub clauses: Vec<Clause>,
    pub ret: AstExpr,
}

/// FLWOR clauses.
#[derive(Clone, Debug, PartialEq)]
pub enum Clause {
    /// `for $v (at $p)? in <expr>`
    For {
        var: String,
        pos: Option<String>,
        source: AstExpr,
    },
    /// `let $v := <expr>`
    Let { var: String, expr: AstExpr },
    /// `where <expr>`
    Where(AstExpr),
    /// `group by $k := e, ... with $w, ...` (hints recorded).
    GroupBy {
        keys: Vec<(String, AstExpr)>,
        with: Vec<String>,
        hints: Vec<String>,
    },
    /// `order by e (asc|desc), ...`
    OrderBy(Vec<(AstExpr, bool)>),
    /// `limit n`
    Limit(usize),
    /// AQL+ meta clause used as a source clause: `##LEFT_3` (its schema's
    /// variables are reachable through `$$` meta variables).
    MetaSource(String),
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// `$x`
    Var(String),
    /// `$$x` — AQL+ meta variable (resolved through bindings).
    MetaVar(String),
    /// `##x` — AQL+ meta clause (a bound subplan).
    MetaClause(String),
    Lit(Value),
    /// `dataset X` / `dataset('X')`
    Dataset(String),
    /// `f(args...)`, including `~=` as `Call("~=", ...)` after parsing.
    Call(String, Vec<AstExpr>),
    /// `e.field`
    Field(Box<AstExpr>, String),
    /// `e[i]` — positional access into an ordered list.
    Index(Box<AstExpr>, usize),
    Cmp(CmpOp, Box<AstExpr>, Box<AstExpr>),
    And(Vec<AstExpr>),
    Or(Vec<AstExpr>),
    Not(Box<AstExpr>),
    /// `{ 'k': e, ... }`
    Record(Vec<(String, AstExpr)>),
    /// `[e, ...]`
    List(Vec<AstExpr>),
    /// A nested FLWOR.
    Subquery(Box<Flwor>),
    /// AQL+ explicit `join((l), (r), cond)`.
    JoinClause {
        left: Box<AstExpr>,
        right: Box<AstExpr>,
        condition: Box<AstExpr>,
    },
    /// An expression preceded by a compiler hint (e.g. `/*+ bcast */ $x`).
    Hinted(String, Box<AstExpr>),
}

impl AstExpr {
    /// Strip hint wrappers.
    pub fn unhinted(&self) -> &AstExpr {
        match self {
            AstExpr::Hinted(_, inner) => inner.unhinted(),
            other => other,
        }
    }

    /// Free variables of the expression (bound FLWOR variables inside
    /// subqueries excluded).
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            AstExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            AstExpr::MetaVar(_) | AstExpr::MetaClause(_) | AstExpr::Lit(_) | AstExpr::Dataset(_) => {}
            AstExpr::Call(_, args) | AstExpr::And(args) | AstExpr::Or(args) | AstExpr::List(args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            AstExpr::Field(e, _) | AstExpr::Index(e, _) | AstExpr::Not(e) => e.free_vars(out),
            AstExpr::Cmp(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            AstExpr::Record(fields) => {
                for (_, e) in fields {
                    e.free_vars(out);
                }
            }
            AstExpr::Subquery(f) => {
                let mut inner = Vec::new();
                let mut bound: Vec<String> = Vec::new();
                for c in &f.clauses {
                    match c {
                        Clause::For { var, pos, source } => {
                            source.free_vars(&mut inner);
                            bound.push(var.clone());
                            if let Some(p) = pos {
                                bound.push(p.clone());
                            }
                        }
                        Clause::Let { var, expr } => {
                            expr.free_vars(&mut inner);
                            bound.push(var.clone());
                        }
                        Clause::Where(e) => e.free_vars(&mut inner),
                        Clause::GroupBy { keys, with, .. } => {
                            for (k, e) in keys {
                                e.free_vars(&mut inner);
                                bound.push(k.clone());
                            }
                            bound.extend(with.iter().cloned());
                        }
                        Clause::OrderBy(keys) => {
                            for (e, _) in keys {
                                e.free_vars(&mut inner);
                            }
                        }
                        Clause::Limit(_) => {}
                        Clause::MetaSource(_) => {}
                    }
                }
                f.ret.free_vars(&mut inner);
                for v in inner {
                    if !bound.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            AstExpr::JoinClause {
                left,
                right,
                condition,
            } => {
                left.free_vars(out);
                right.free_vars(out);
                condition.free_vars(out);
            }
            AstExpr::Hinted(_, e) => e.free_vars(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_of_subquery() {
        // for $x in $outer.list return $x  — free: outer
        let f = Flwor {
            clauses: vec![Clause::For {
                var: "x".into(),
                pos: None,
                source: AstExpr::Field(Box::new(AstExpr::Var("outer".into())), "list".into()),
            }],
            ret: AstExpr::Var("x".into()),
        };
        let mut vars = Vec::new();
        AstExpr::Subquery(Box::new(f)).free_vars(&mut vars);
        assert_eq!(vars, vec!["outer".to_string()]);
    }

    #[test]
    fn unhinted_strips_nested() {
        let e = AstExpr::Hinted(
            "bcast".into(),
            Box::new(AstExpr::Hinted("hash".into(), Box::new(AstExpr::Var("x".into())))),
        );
        assert_eq!(e.unhinted(), &AstExpr::Var("x".into()));
    }
}
