//! Recursive-descent parser for the AQL subset + AQL+ extensions.

use crate::ast::{AstExpr, Clause, Flwor, Query, Stmt};
use crate::lexer::{lex, LexError, Token};
use asterix_adm::Value;
use asterix_hyracks::CmpOp;
use std::fmt;

/// Parse error with a token index.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: e.offset,
            message: e.message,
        }
    }
}

/// Parse a full query (prologue statements + body).
pub fn parse_query(text: &str) -> Result<Query, ParseError> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    loop {
        match p.peek_keyword() {
            Some("use") => {
                p.next();
                p.expect_keyword("dataverse")?;
                let name = p.expect_ident()?;
                p.expect(&Token::Semi)?;
                statements.push(Stmt::UseDataverse(name));
            }
            Some("set") => {
                p.next();
                let key = p.expect_ident()?;
                let value = match p.next() {
                    Some(Token::Str(s)) => s,
                    Some(t) => return Err(p.err(&format!("expected string, got {t}"))),
                    None => return Err(p.err("expected string")),
                };
                p.expect(&Token::Semi)?;
                statements.push(Stmt::Set(key, value));
            }
            _ => break,
        }
    }
    let body = p.parse_expr()?;
    // Allow a trailing semicolon.
    if p.peek() == Some(&Token::Semi) {
        p.next();
    }
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after query body"));
    }
    Ok(Query { statements, body })
}

/// Parse a standalone expression.
pub fn parse_expr(text: &str) -> Result<AstExpr, ParseError> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_keyword(&self) -> Option<&str> {
        match self.peek() {
            Some(Token::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(got) if &got == t => Ok(()),
            Some(got) => Err(ParseError {
                at: self.pos - 1,
                message: format!("expected {t}, got {got}"),
            }),
            None => Err(self.err(&format!("expected {t}, got end of input"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected '{kw}', got {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected identifier, got {other:?}"),
            }),
        }
    }

    fn expect_var(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Var(s)) => Ok(s),
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected $variable, got {other:?}"),
            }),
        }
    }

    fn at_flwor_start(&self) -> bool {
        if matches!(self.peek_keyword(), Some("for" | "let")) {
            return true;
        }
        // A meta clause starts a FLWOR unless it stands alone as a branch
        // expression (e.g. inside `join((##LEFT), ...)`).
        if matches!(self.peek(), Some(Token::MetaClause(_))) {
            return !matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::RParen) | Some(Token::Comma) | None
            );
        }
        false
    }

    fn parse_expr(&mut self) -> Result<AstExpr, ParseError> {
        if self.at_flwor_start() {
            let f = self.parse_flwor()?;
            return Ok(AstExpr::Subquery(Box::new(f)));
        }
        self.parse_or()
    }

    fn parse_flwor(&mut self) -> Result<Flwor, ParseError> {
        let mut clauses = Vec::new();
        let mut pending_hints: Vec<String> = Vec::new();
        loop {
            // Hints may precede a clause (Fig 11's `/*+ hash */ group by`).
            while let Some(Token::Hint(h)) = self.peek() {
                pending_hints.push(h.clone());
                self.next();
            }
            if let Some(Token::MetaClause(name)) = self.peek() {
                let name = name.clone();
                self.next();
                clauses.push(Clause::MetaSource(name));
                continue;
            }
            match self.peek_keyword() {
                Some("for") => {
                    self.next();
                    let var = self.expect_var()?;
                    let pos = if self.peek_keyword() == Some("at") {
                        self.next();
                        Some(self.expect_var()?)
                    } else {
                        None
                    };
                    self.expect_keyword("in")?;
                    let source = self.parse_expr()?;
                    clauses.push(Clause::For { var, pos, source });
                }
                Some("let") => {
                    self.next();
                    let var = self.expect_var()?;
                    self.expect(&Token::Assign)?;
                    let expr = self.parse_expr()?;
                    clauses.push(Clause::Let { var, expr });
                }
                Some("where") => {
                    self.next();
                    let e = self.parse_expr()?;
                    clauses.push(Clause::Where(e));
                }
                Some("group") => {
                    self.next();
                    self.expect_keyword("by")?;
                    let mut keys = Vec::new();
                    loop {
                        let k = self.expect_var()?;
                        self.expect(&Token::Assign)?;
                        let e = self.parse_or()?;
                        keys.push((k, e));
                        if self.peek() == Some(&Token::Comma) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                    self.expect_keyword("with")?;
                    let mut with = vec![self.expect_var()?];
                    while self.peek() == Some(&Token::Comma) {
                        self.next();
                        with.push(self.expect_var()?);
                    }
                    clauses.push(Clause::GroupBy {
                        keys,
                        with,
                        hints: std::mem::take(&mut pending_hints),
                    });
                }
                Some("order") => {
                    self.next();
                    self.expect_keyword("by")?;
                    let mut keys = Vec::new();
                    loop {
                        let e = self.parse_or()?;
                        let desc = match self.peek_keyword() {
                            Some("desc") => {
                                self.next();
                                true
                            }
                            Some("asc") => {
                                self.next();
                                false
                            }
                            _ => false,
                        };
                        keys.push((e, desc));
                        if self.peek() == Some(&Token::Comma) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                    clauses.push(Clause::OrderBy(keys));
                }
                Some("limit") => {
                    self.next();
                    match self.next() {
                        Some(Token::Int(n)) if n >= 0 => clauses.push(Clause::Limit(n as usize)),
                        other => {
                            return Err(self.err(&format!("expected limit count, got {other:?}")))
                        }
                    }
                }
                Some("return") => {
                    self.next();
                    let ret = self.parse_expr()?;
                    if clauses.is_empty() {
                        return Err(self.err("FLWOR requires at least one clause"));
                    }
                    return Ok(Flwor { clauses, ret });
                }
                other => {
                    return Err(self.err(&format!(
                        "expected FLWOR clause or 'return', got {other:?}"
                    )))
                }
            }
            pending_hints.clear();
        }
    }

    fn parse_or(&mut self) -> Result<AstExpr, ParseError> {
        let first = self.parse_and()?;
        let mut rest = Vec::new();
        while self.peek_keyword() == Some("or") {
            self.next();
            rest.push(self.parse_and()?);
        }
        Ok(if rest.is_empty() {
            first
        } else {
            let mut parts = vec![first];
            parts.extend(rest);
            AstExpr::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<AstExpr, ParseError> {
        let first = self.parse_cmp()?;
        let mut rest = Vec::new();
        while self.peek_keyword() == Some("and") {
            self.next();
            rest.push(self.parse_cmp()?);
        }
        Ok(if rest.is_empty() {
            first
        } else {
            let mut parts = vec![first];
            parts.extend(rest);
            AstExpr::And(parts)
        })
    }

    fn parse_cmp(&mut self) -> Result<AstExpr, ParseError> {
        let left = self.parse_postfix()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            Some(Token::SimEq) => None, // handled below
            _ => return Ok(left),
        };
        match op {
            Some(op) => {
                self.next();
                let right = self.parse_postfix()?;
                Ok(AstExpr::Cmp(op, Box::new(left), Box::new(right)))
            }
            None => {
                self.next(); // ~=
                let right = self.parse_postfix()?;
                Ok(AstExpr::Call("~=".into(), vec![left, right]))
            }
        }
    }

    fn parse_postfix(&mut self) -> Result<AstExpr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.next();
                    let field = self.expect_ident()?;
                    e = AstExpr::Field(Box::new(e), field);
                }
                Some(Token::LBracket) => {
                    self.next();
                    match self.next() {
                        Some(Token::Int(i)) if i >= 0 => {
                            e = AstExpr::Index(Box::new(e), i as usize);
                        }
                        other => {
                            return Err(self.err(&format!("expected list index, got {other:?}")))
                        }
                    }
                    self.expect(&Token::RBracket)?;
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.next() {
            Some(Token::Var(v)) => Ok(AstExpr::Var(v)),
            Some(Token::MetaVar(v)) => Ok(AstExpr::MetaVar(v)),
            Some(Token::MetaClause(v)) => Ok(AstExpr::MetaClause(v)),
            Some(Token::Str(s)) => Ok(AstExpr::Lit(Value::String(s))),
            Some(Token::Int(i)) => Ok(AstExpr::Lit(Value::Int64(i))),
            Some(Token::Float(x)) => Ok(AstExpr::Lit(Value::double(x))),
            Some(Token::Hint(h)) => {
                let inner = self.parse_postfix()?;
                Ok(AstExpr::Hinted(h, Box::new(inner)))
            }
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::LBrace) => {
                let mut fields = Vec::new();
                if self.peek() != Some(&Token::RBrace) {
                    loop {
                        let name = match self.next() {
                            Some(Token::Str(s)) => s,
                            Some(Token::Ident(s)) => s,
                            other => {
                                return Err(self.err(&format!(
                                    "expected field name, got {other:?}"
                                )))
                            }
                        };
                        self.expect(&Token::Assign)?; // ':'
                        let e = self.parse_expr()?;
                        fields.push((name, e));
                        if self.peek() == Some(&Token::Comma) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(AstExpr::Record(fields))
            }
            Some(Token::LBracket) => {
                let mut items = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.peek() == Some(&Token::Comma) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(AstExpr::List(items))
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "true" => Ok(AstExpr::Lit(Value::Boolean(true))),
                "false" => Ok(AstExpr::Lit(Value::Boolean(false))),
                "null" => Ok(AstExpr::Lit(Value::Null)),
                "dataset" => match self.peek() {
                    Some(Token::LParen) => {
                        self.next();
                        let ds = match self.next() {
                            Some(Token::Str(s)) => s,
                            Some(Token::Ident(s)) => s,
                            other => {
                                return Err(
                                    self.err(&format!("expected dataset name, got {other:?}"))
                                )
                            }
                        };
                        self.expect(&Token::RParen)?;
                        Ok(AstExpr::Dataset(ds))
                    }
                    Some(Token::Ident(_)) => {
                        let ds = self.expect_ident()?;
                        Ok(AstExpr::Dataset(ds))
                    }
                    other => Err(self.err(&format!("expected dataset name, got {other:?}"))),
                },
                "join" => {
                    // AQL+: join((left), (right), condition)
                    self.expect(&Token::LParen)?;
                    self.expect(&Token::LParen)?;
                    let left = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    self.expect(&Token::Comma)?;
                    self.expect(&Token::LParen)?;
                    let right = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    self.expect(&Token::Comma)?;
                    let condition = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(AstExpr::JoinClause {
                        left: Box::new(left),
                        right: Box::new(right),
                        condition: Box::new(condition),
                    })
                }
                _ => {
                    if self.peek() == Some(&Token::LParen) {
                        self.next();
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            loop {
                                args.push(self.parse_expr()?);
                                if self.peek() == Some(&Token::Comma) {
                                    self.next();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Token::RParen)?;
                        Ok(AstExpr::Call(name, args))
                    } else {
                        Err(ParseError {
                            at: self.pos - 1,
                            message: format!("bare identifier '{name}' is not an expression"),
                        })
                    }
                }
            },
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_tilde_query() {
        let q = parse_query(
            r#"
            use dataverse TextStore;
            set simfunction 'jaccard';
            set simthreshold '0.5';
            for $t1 in dataset AmazonReview
            for $t2 in dataset AmazonReview
            where word-tokens($t1.summary) ~= word-tokens($t2.summary)
            return { 'summary1': $t1, 'summary2': $t2 }
            "#,
        )
        .unwrap();
        assert_eq!(q.statements.len(), 3);
        let f = q.body_flwor().unwrap();
        assert_eq!(f.clauses.len(), 3);
        let Clause::Where(w) = &f.clauses[2] else {
            panic!("expected where");
        };
        assert!(matches!(w, AstExpr::Call(n, _) if n == "~="));
    }

    #[test]
    fn fig5_selection() {
        let q = parse_query(
            r#"
            for $t1 in dataset bar
            where edit-distance($t1.V, 'C') < 2
            return {"id": $t1.id, "field": $t1.V}
            "#,
        )
        .unwrap();
        let f = q.body_flwor().unwrap();
        assert_eq!(f.clauses.len(), 2);
        assert!(matches!(&f.ret, AstExpr::Record(fields) if fields.len() == 2));
    }

    #[test]
    fn fig21_count_template() {
        let q = parse_query(
            r#"
            count( for $o in dataset X
                   where similarity-jaccard(word-tokens($o.V), word-tokens('q w')) >= 0.5
                   return {"oid": $o.id, "v": $o.V} );
            "#,
        )
        .unwrap();
        assert!(matches!(&q.body, AstExpr::Call(n, _) if n == "count"));
        assert!(q.body_flwor().is_some());
    }

    #[test]
    fn group_by_with_hint() {
        let q = parse_query(
            r#"
            for $t in dataset ARevs
            for $token in word-tokens($t.summary)
            /*+ hash */
            group by $tokenGrouped := $token with $id
            order by count($id), $tokenGrouped
            return $tokenGrouped
            "#,
        )
        .unwrap();
        let f = q.body_flwor().unwrap();
        let Clause::GroupBy { hints, keys, with } = &f.clauses[2] else {
            panic!("expected group by, got {:?}", f.clauses[2]);
        };
        assert_eq!(hints, &vec!["hash".to_string()]);
        assert_eq!(keys.len(), 1);
        assert_eq!(with, &vec!["id".to_string()]);
    }

    #[test]
    fn nested_subquery_with_positional() {
        let q = parse_query(
            r#"
            for $t in dataset A
            for $r at $i in ( for $x in dataset B order by $x.c return $x.tok )
            where $r = $t.tok
            return $i
            "#,
        )
        .unwrap();
        let f = q.body_flwor().unwrap();
        let Clause::For { pos, source, .. } = &f.clauses[1] else {
            panic!()
        };
        assert_eq!(pos.as_deref(), Some("i"));
        assert!(matches!(source, AstExpr::Subquery(_)));
    }

    #[test]
    fn aqlplus_join_and_meta() {
        let e = parse_expr("join((##LEFT_1), (##RIGHT_1), $$LEFTPK = $$RIGHTPK)").unwrap();
        let AstExpr::JoinClause { left, condition, .. } = e else {
            panic!()
        };
        assert!(matches!(*left, AstExpr::MetaClause(ref n) if n == "LEFT_1"));
        assert!(matches!(*condition, AstExpr::Cmp(CmpOp::Eq, _, _)));
    }

    #[test]
    fn bcast_hint_on_expr() {
        let q = parse_query(
            r#"
            for $a in dataset X
            for $b in dataset Y
            where $a.tok = /*+ bcast */ $b.tok
            return $a
            "#,
        )
        .unwrap();
        let f = q.body_flwor().unwrap();
        let Clause::Where(AstExpr::Cmp(_, _, rhs)) = &f.clauses[2] else {
            panic!()
        };
        assert!(matches!(rhs.as_ref(), AstExpr::Hinted(h, _) if h == "bcast"));
    }

    #[test]
    fn index_access() {
        let e = parse_expr("$sim[0]").unwrap();
        assert!(matches!(e, AstExpr::Index(_, 0)));
    }

    #[test]
    fn errors_have_positions() {
        assert!(parse_query("for $t in return $t").is_err());
        assert!(parse_query("return").is_err());
        assert!(parse_query("for $t in dataset A return $t extra").is_err());
        assert!(parse_expr("{ 'a' $b }").is_err());
    }

    #[test]
    fn limit_clause() {
        let q = parse_query("for $t in dataset A limit 10 return $t").unwrap();
        let f = q.body_flwor().unwrap();
        assert!(matches!(f.clauses[1], Clause::Limit(10)));
    }

    /// Malformed-input corpus: every entry must produce `Err`, never a
    /// panic. Grown from fuzz-style probing of each grammar production —
    /// truncations, unbalanced delimiters, misplaced keywords, bad
    /// literals, and degenerate boolean chains (the spots where a pop/
    /// unwrap-style parser shortcut would blow up).
    #[test]
    fn malformed_corpus_errors_never_panic() {
        let corpus: &[&str] = &[
            "",
            "   ",
            "for",
            "for $",
            "for $t",
            "for $t in",
            "for $t in dataset",
            "for $t in dataset A",
            "for $t in dataset A where",
            "for $t in dataset A where and return $t",
            "for $t in dataset A where $t.x and return $t",
            "for $t in dataset A where or $t.x return $t",
            "for $t in dataset A where $t.x or or $t.y return $t",
            "for $t in dataset A where $t.x and and $t.y return $t",
            "for $t in dataset A where $t.x = return $t",
            "for $t in dataset A where = $t.x return $t",
            "for $t in dataset A where $t.x ~= return $t",
            "for $t in dataset A order by return $t",
            "for $t in dataset A group by return $t",
            "for $t in dataset A limit return $t",
            "for $t in dataset A limit -3 return $t",
            "for $t in dataset A limit ten return $t",
            "return }",
            "return {",
            "return { 'a': }",
            "return { 'a' 1 }",
            "return [1, 2",
            "return (1",
            "return 'unterminated",
            "return $t.",
            "return $t[",
            "return $t[0",
            "return $t[$x]",
            "return word-tokens(",
            "return word-tokens($t.x",
            "return word-tokens($t.x,,)",
            "let := 1 return $x",
            "let $x 1 return $x",
            "let $x := return $x",
            "use dataverse; return 1",
            "set simfunction return 1",
            "set simthreshold 0.5 for $t in dataset A return $t",
            "for $t in dataset A return $t;;",
            "for $t in dataset A return $t garbage",
            "where $t.x return $t",
            "for $t in dataset A for return $t",
            "for $t in dataset A at return $t",
        ];
        for (i, src) in corpus.iter().enumerate() {
            let res = std::panic::catch_unwind(|| parse_query(src));
            match res {
                Ok(parsed) => assert!(
                    parsed.is_err(),
                    "corpus[{i}] {src:?}: malformed input parsed successfully"
                ),
                Err(_) => panic!("corpus[{i}] {src:?}: parser panicked"),
            }
        }
    }
}
