//! # asterix-aql
//!
//! The query-language substrate: an AQL subset sufficient for every query
//! in the paper's figures and evaluation templates (Figs 4, 5, 8, 21, 23,
//! 26), plus the AQL+ extensions of §5.2:
//!
//! * **meta variables** `$$NAME` — references to logical-plan variables,
//! * **meta clauses** `##NAME` — references to logical subplans,
//! * **explicit `join` clauses** — `join((left), (right), condition)`,
//! * **placeholders** `@NAME@` — textual template parameters (e.g.
//!   `@THRESHOLD@`, `@TOKENIZER@`) substituted before parsing.
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`translate`]
//! (logical plan in `asterix-algebricks`). [`aqlplus`] carries the
//! AQL+ template machinery used by the three-stage-join rewrite.
//!
//! Example (the paper's Fig 4(b) join):
//!
//! ```
//! use asterix_aql::parse_query;
//! let q = parse_query(r#"
//!     for $t1 in dataset AmazonReview
//!     for $t2 in dataset AmazonReview
//!     where similarity-jaccard(word-tokens($t1.summary),
//!                              word-tokens($t2.summary)) >= 0.5
//!     return { 'summary1': $t1, 'summary2': $t2 }
//! "#).unwrap();
//! assert_eq!(q.body_flwor().unwrap().clauses.len(), 3);
//! ```

pub mod aqlplus;
pub mod ast;
pub mod lexer;
pub mod parser;
pub mod translate;

pub use ast::{AstExpr, Clause, Flwor, Query, Stmt};
pub use parser::{parse_query, ParseError};
pub use translate::{translate, Bindings, TranslateError};
