//! The AQL+ framework (§5.2): template-driven plan rewriting.
//!
//! AQL+ extends AQL with meta variables (`$$NAME`), meta clauses
//! (`##NAME`), an explicit `join` clause, and placeholders (`@NAME@`).
//! A rewrite takes the *two-step* path of Fig 16: the optimizer extracts
//! information from the incoming logical plan (the join's branches, their
//! primary keys, the tokenizer, the threshold), fills an AQL+ query
//! template, re-parses it with the AQL+ parser, and re-translates it —
//! with the meta clauses bound to the original plan's subtrees — yielding
//! the transformed logical plan.
//!
//! [`THREE_STAGE_SELF_JOIN`] is the faithful textual rendition of the
//! paper's Fig 11/17 template: the full three-stage set-similarity
//! self-join, expressed in AQL+ over two meta-clause branches. The
//! `asterix-algebricks` crate carries the equivalent *typed* template
//! (`instantiate_three_stage`) used by the general rewrite rule (it also
//! handles non-self joins and composite row keys); this module
//! demonstrates — and tests verify — that the textual two-step path
//! produces an equivalent executable plan.

use crate::parser::parse_query;
use crate::translate::{translate, Bindings, TranslateError};
use asterix_algebricks::plan::PlanRef;
use asterix_algebricks::{VarGen, VarId};
use std::collections::HashMap;

/// The textual AQL+ template for the three-stage similarity self join
/// (Fig 11 expressed over meta clauses/variables as in Fig 17).
///
/// Placeholders:
/// * `@LTOKENS@` / `@RTOKENS@` — tokenizer expression for each branch
///   (e.g. `word-tokens($$LEFTREC.summary)`),
/// * `@THRESHOLD@` — the Jaccard threshold.
///
/// Meta clauses: `##LEFT_1` (stage 1 source), `##LEFT_2`/`##RIGHT_2`
/// (stage 2 branches), `##LEFT_3`/`##RIGHT_3` (stage 3 record joins) —
/// all typically bound to the same two scan subplans. Meta variables:
/// `$$LEFTPK`, `$$RIGHTPK`, `$$LEFTREC`, `$$RIGHTREC`.
pub const THREE_STAGE_SELF_JOIN: &str = r#"
for $ridpair in (
    // --- Stage 2: RID-pair generation ---
    for $l in (
        ##LEFT_2
        let $lid := $$LEFTPK
        for $tokenUnranked in @LTOKENS@
        for $tokenRanked at $i in (
            // --- Stage 1: token ordering ---
            ##LEFT_1
            let $sid := $$LEFTPK
            for $token in @LTOKENS@
            /*+ hash */
            group by $tokenGrouped := $token with $sid
            order by count($sid), $tokenGrouped
            return $tokenGrouped
        )
        where $tokenUnranked = /*+ bcast */ $tokenRanked
        group by $gid := $lid with $i
        let $plen := prefix-len-jaccard(len($i), @THRESHOLD@)
        for $prefixToken in subset-collection($i, 0, $plen)
        return { 'id': $gid, 'ranks': $i, 'prefix': $prefixToken }
    )
    for $r in (
        ##RIGHT_2
        let $rid := $$RIGHTPK
        for $tokenUnranked in @RTOKENS@
        for $tokenRanked at $i in (
            // --- Stage 1 (detected as a common subplan and executed once,
            // Fig 20) ---
            ##LEFT_1
            let $sid := $$LEFTPK
            for $token in @LTOKENS@
            /*+ hash */
            group by $tokenGrouped := $token with $sid
            order by count($sid), $tokenGrouped
            return $tokenGrouped
        )
        where $tokenUnranked = /*+ bcast */ $tokenRanked
        group by $gid := $rid with $i
        let $plen := prefix-len-jaccard(len($i), @THRESHOLD@)
        for $prefixToken in subset-collection($i, 0, $plen)
        return { 'id': $gid, 'ranks': $i, 'prefix': $prefixToken }
    )
    where $l.prefix = $r.prefix and $l.id < $r.id
    let $sim := similarity-jaccard($l.ranks, $r.ranks, @THRESHOLD@)
    where $sim >= @THRESHOLD@
    group by $idLeft := $l.id, $idRight := $r.id with $sim
    return { 'idLeft': $idLeft, 'idRight': $idRight, 'sim': $sim[0] }
)
// --- Stage 3: record join ---
##LEFT_3
##RIGHT_3
where $ridpair.idLeft = $$LEFTPK and $ridpair.idRight = $$RIGHTPK
order by $$LEFTPK, $$RIGHTPK
return { 'left': $$LEFTREC, 'right': $$RIGHTREC, 'sim': $ridpair.sim }
"#;

/// Substitute `@NAME@` placeholders. Unknown placeholders left in the
/// text are reported as an error (they would not lex).
pub fn render(template: &str, placeholders: &[(&str, String)]) -> Result<String, String> {
    let mut text = template.to_string();
    for (name, value) in placeholders {
        text = text.replace(&format!("@{name}@"), value);
    }
    if let Some(at) = text.find('@') {
        let tail: String = text[at..].chars().take(24).collect();
        return Err(format!("unbound placeholder near '{tail}'"));
    }
    Ok(text)
}

/// The bindings the three-stage template needs (the optimizer extracts
/// these from the logical join it is rewriting — Fig 16's "extracts the
/// information from the logical plan and integrates it into an AQL+ query
/// template").
#[derive(Clone, Debug)]
pub struct ThreeStageTextBindings {
    pub left: PlanRef,
    pub right: PlanRef,
    pub left_pk: VarId,
    pub left_rec: VarId,
    pub right_pk: VarId,
    pub right_rec: VarId,
    /// The tokenized field (dotted path), e.g. `summary`.
    pub field: String,
    pub threshold: f64,
}

/// Two-step rewrite: render the textual AQL+ template, re-parse it, and
/// re-translate it against the bound subplans. The result is a complete
/// logical plan (rooted at `Write`) computing
/// `{left, right, sim}` records for every similar pair.
pub fn instantiate_three_stage_text(
    b: &ThreeStageTextBindings,
    vargen: &VarGen,
) -> Result<PlanRef, TranslateError> {
    let text = render(
        THREE_STAGE_SELF_JOIN,
        &[
            (
                "LTOKENS",
                format!("word-tokens($$LEFTREC.{})", b.field),
            ),
            (
                "RTOKENS",
                format!("word-tokens($$RIGHTREC.{})", b.field),
            ),
            ("THRESHOLD", format!("{:?}", b.threshold)),
        ],
    )
    .map_err(TranslateError)?;
    let query = parse_query(&text).map_err(|e| TranslateError(e.to_string()))?;
    let mut clauses = HashMap::new();
    clauses.insert("LEFT_1".to_string(), b.left.clone());
    clauses.insert("LEFT_2".to_string(), b.left.clone());
    clauses.insert("LEFT_3".to_string(), b.left.clone());
    clauses.insert("RIGHT_2".to_string(), b.right.clone());
    clauses.insert("RIGHT_3".to_string(), b.right.clone());
    let mut vars = HashMap::new();
    vars.insert("LEFTPK".to_string(), b.left_pk);
    vars.insert("LEFTREC".to_string(), b.left_rec);
    vars.insert("RIGHTPK".to_string(), b.right_pk);
    vars.insert("RIGHTREC".to_string(), b.right_rec);
    let bindings = Bindings { clauses, vars };
    let t = translate(&query, vargen, &bindings)?;
    Ok(t.plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_algebricks::plan::{build, explain, operator_counts, total_operators};

    #[test]
    fn render_substitutes_and_rejects_unbound() {
        let out = render("a @X@ b @Y@", &[("X", "1".into()), ("Y", "2".into())]).unwrap();
        assert_eq!(out, "a 1 b 2");
        assert!(render("a @X@", &[]).is_err());
    }

    #[test]
    fn template_parses_after_rendering() {
        let text = render(
            THREE_STAGE_SELF_JOIN,
            &[
                ("LTOKENS", "word-tokens($$LEFTREC.summary)".into()),
                ("RTOKENS", "word-tokens($$RIGHTREC.summary)".into()),
                ("THRESHOLD", "0.5".into()),
            ],
        )
        .unwrap();
        parse_query(&text).expect("template must parse");
    }

    #[test]
    fn two_step_instantiation_builds_large_plan() {
        let vg = VarGen::new();
        let (left, lpk, lrec) = build::scan("ARevs", &vg);
        let (right, rpk, rrec) = build::scan("ARevs", &vg);
        let plan = instantiate_three_stage_text(
            &ThreeStageTextBindings {
                left,
                right,
                left_pk: lpk,
                left_rec: lrec,
                right_pk: rpk,
                right_rec: rrec,
                field: "summary".into(),
                threshold: 0.5,
            },
            &vg,
        )
        .expect("instantiation");
        // Fig 15: the three-stage plan is large (tens of operators, vs ~6
        // for a nested-loop plan).
        let n = total_operators(&plan);
        assert!(n >= 30, "expected a large plan, got {n}:\n{}", explain(&plan));
        let counts = operator_counts(&plan);
        let get = |name: &str| {
            counts
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert!(get("group") >= 3, "{counts:?}"); // token counts ×2 (+dedup)
        assert!(get("unnest") >= 4, "{counts:?}");
        assert!(get("join") >= 5, "{counts:?}");
        // The two branches are shared Arcs: scans appear once each.
        assert_eq!(get("data-scan"), 2, "{counts:?}");
    }

    #[test]
    fn unbound_meta_clause_is_an_error() {
        let vg = VarGen::new();
        let text = "##NOPE\nlet $x := $$X\nreturn $x";
        let query = parse_query(text).unwrap();
        let err = translate(&query, &vg, &Bindings::default()).unwrap_err();
        assert!(err.0.contains("unbound meta clause"), "{err}");
    }
}
