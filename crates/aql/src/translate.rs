//! AST → logical plan translation.
//!
//! A FLWOR over datasets becomes scans joined by cross products (the
//! normalization rules later merge the `where` conjuncts into the joins);
//! a `for` over a record field becomes an unnest; a `for` over an
//! *uncorrelated* subquery becomes a plan branch joined in (with a
//! `StreamPos` when the clause carries `at $i`); `group by ... with $w`
//! becomes a logical group-by whose `with` variables turn into `count` or
//! collect aggregates depending on how they are used downstream — enough
//! to translate every query shape the paper's figures use, including the
//! AQL+ stage templates.

use crate::ast::{AstExpr, Clause, Flwor, Query, Stmt};
use asterix_algebricks::plan::{
    build, AggFn, JoinHint, LogicalNode, LogicalOp, OrderKey, PlanRef,
};
use asterix_algebricks::{VarGen, VarId};
use asterix_hyracks::Expr;
use std::collections::HashMap;
use std::fmt;

/// Translation error.
#[derive(Clone, Debug, PartialEq)]
pub struct TranslateError(pub String);

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translate error: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TranslateError> {
    Err(TranslateError(msg.into()))
}

/// AQL+ bindings: meta clause name → subplan; meta variable name → plan
/// variable (§5.2, Table 1).
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    pub clauses: HashMap<String, PlanRef>,
    pub vars: HashMap<String, VarId>,
}

/// Session settings gathered from the prologue.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Settings {
    pub dataverse: Option<String>,
    pub simfunction: Option<String>,
    pub simthreshold: Option<String>,
}

/// A translated query.
#[derive(Clone, Debug)]
pub struct Translation {
    /// Plan rooted at `Write`; the output schema is a single column with
    /// the `return` value (or the aggregate result).
    pub plan: PlanRef,
    pub settings: Settings,
}

/// How a name in scope maps to plan variables.
#[derive(Clone, Debug)]
enum Binding {
    /// A plain value variable.
    Var(VarId),
    /// A `with` variable aggregated as COUNT: usable only as `count($w)`.
    CountAgg(VarId),
    /// A `with` variable aggregated as a collected sorted set.
    CollectAgg(VarId),
}

type Env = Vec<(String, Binding)>;

fn lookup<'a>(env: &'a Env, name: &str) -> Option<&'a Binding> {
    env.iter().rev().find(|(n, _)| n == name).map(|(_, b)| b)
}

/// Translate a parsed query into a logical plan.
pub fn translate(
    query: &Query,
    vargen: &VarGen,
    bindings: &Bindings,
) -> Result<Translation, TranslateError> {
    let mut settings = Settings::default();
    for stmt in &query.statements {
        match stmt {
            Stmt::UseDataverse(d) => settings.dataverse = Some(d.clone()),
            Stmt::Set(k, v) => match k.as_str() {
                "simfunction" => settings.simfunction = Some(v.clone()),
                "simthreshold" => settings.simthreshold = Some(v.clone()),
                other => return err(format!("unknown set parameter '{other}'")),
            },
        }
    }
    let t = Translator { vargen, bindings };
    // Body: a FLWOR, or `count(<flwor>)`.
    let (plan, _result) = match &query.body {
        AstExpr::Subquery(f) => t.flwor(f)?,
        AstExpr::Call(name, args) if name == "count" && args.len() == 1 => {
            let AstExpr::Subquery(f) = &args[0] else {
                return err("count() at the top level takes a FLWOR argument");
            };
            let (inner, _rv) = t.flwor(f)?;
            let out = vargen.fresh();
            let counted = LogicalNode::new(
                LogicalOp::GroupBy {
                    group_vars: vec![],
                    aggs: vec![(out, AggFn::Count)],
                },
                vec![inner],
            );
            (counted, out)
        }
        _ => return err("query body must be a FLWOR or count(FLWOR)"),
    };
    Ok(Translation {
        plan: build::write(plan),
        settings,
    })
}

struct Translator<'a> {
    vargen: &'a VarGen,
    bindings: &'a Bindings,
}

impl Translator<'_> {
    /// Translate a FLWOR into a plan whose final schema is one column:
    /// the `return` value. Returns (plan, result var).
    fn flwor(&self, f: &Flwor) -> Result<(PlanRef, VarId), TranslateError> {
        let mut env: Env = Vec::new();
        let mut plan: Option<PlanRef> = None;

        let attach = |plan: Option<PlanRef>, branch: PlanRef| -> PlanRef {
            match plan {
                None => branch,
                Some(p) => build::join(p, branch, Expr::lit(true), JoinHint::Auto),
            }
        };

        for (ci, clause) in f.clauses.iter().enumerate() {
            match clause {
                Clause::For { var, pos, source } => match source.unhinted() {
                    AstExpr::Dataset(name) => {
                        if pos.is_some() {
                            return err("`at` is not supported on dataset scans");
                        }
                        let (scan, _pk, rec) = build::scan(name, self.vargen);
                        env.push((var.clone(), Binding::Var(rec)));
                        plan = Some(attach(plan, scan));
                    }
                    AstExpr::MetaClause(name) => {
                        let branch = self
                            .bindings
                            .clauses
                            .get(name)
                            .ok_or_else(|| TranslateError(format!("unbound meta clause ##{name}")))?
                            .clone();
                        // The iteration variable is not bindable for a raw
                        // subplan; meta variables provide access instead.
                        env.push((var.clone(), Binding::Var(*branch.schema.last().unwrap_or(&0))));
                        plan = Some(attach(plan, branch));
                    }
                    AstExpr::Subquery(sub) => {
                        // Correlated subqueries are not supported: the
                        // subquery must not reference in-scope variables.
                        let mut free = Vec::new();
                        source.free_vars(&mut free);
                        if free.iter().any(|v| lookup(&env, v).is_some()) {
                            return err(format!(
                                "correlated subquery in `for ${var}` is not supported"
                            ));
                        }
                        let (sub_plan, rv) = self.flwor(sub)?;
                        let branch = match pos {
                            None => sub_plan,
                            Some(p) => {
                                let pv = self.vargen.fresh();
                                let node = LogicalNode::new(
                                    LogicalOp::StreamPos { var: pv },
                                    vec![sub_plan],
                                );
                                env.push((p.clone(), Binding::Var(pv)));
                                node
                            }
                        };
                        env.push((var.clone(), Binding::Var(rv)));
                        plan = Some(attach(plan, branch));
                    }
                    // A list-valued expression over in-scope variables:
                    // unnest.
                    _ => {
                        let input = plan
                            .clone()
                            .ok_or_else(|| TranslateError("unnest requires a prior `for`".into()))?;
                        let e = self.expr(source, &env)?;
                        let v = self.vargen.fresh();
                        let pos_var = pos.as_ref().map(|_| self.vargen.fresh());
                        let node = LogicalNode::new(
                            LogicalOp::Unnest {
                                var: v,
                                expr: e,
                                pos_var,
                            },
                            vec![input],
                        );
                        env.push((var.clone(), Binding::Var(v)));
                        if let (Some(p), Some(pv)) = (pos, pos_var) {
                            env.push((p.clone(), Binding::Var(pv)));
                        }
                        plan = Some(node);
                    }
                },
                Clause::MetaSource(name) => {
                    let branch = self
                        .bindings
                        .clauses
                        .get(name)
                        .ok_or_else(|| TranslateError(format!("unbound meta clause ##{name}")))?
                        .clone();
                    plan = Some(attach(plan, branch));
                }
                Clause::Let { var, expr } => {
                    let input = plan
                        .clone()
                        .ok_or_else(|| TranslateError("`let` requires a prior `for`".into()))?;
                    let e = self.expr(expr, &env)?;
                    let (node, v) = build::assign1(input, self.vargen, e);
                    env.push((var.clone(), Binding::Var(v)));
                    plan = Some(node);
                }
                Clause::Where(cond) => {
                    let input = plan
                        .clone()
                        .ok_or_else(|| TranslateError("`where` requires a prior `for`".into()))?;
                    let e = self.expr(cond, &env)?;
                    plan = Some(build::select(input, e));
                }
                Clause::GroupBy { keys, with, .. } => {
                    let input = plan
                        .clone()
                        .ok_or_else(|| TranslateError("`group by` requires a prior `for`".into()))?;
                    // Materialize key expressions as variables first.
                    let mut key_in_vars = Vec::new();
                    let mut assigns = Vec::new();
                    let mut assign_vars = Vec::new();
                    for (_, e) in keys {
                        let te = self.expr(e, &env)?;
                        if let Expr::Column(v) = te {
                            key_in_vars.push(v);
                        } else {
                            let v = self.vargen.fresh();
                            assigns.push(te);
                            assign_vars.push(v);
                            key_in_vars.push(v);
                        }
                    }
                    let input = if assigns.is_empty() {
                        input
                    } else {
                        build::assign(input, assign_vars, assigns)
                    };
                    // Decide each `with` variable's aggregate from usage in
                    // the remaining clauses + return.
                    let mut new_env: Env = Vec::new();
                    let mut group_vars = Vec::new();
                    for ((name, _), in_var) in keys.iter().zip(&key_in_vars) {
                        let out = self.vargen.fresh();
                        group_vars.push((out, *in_var));
                        new_env.push((name.clone(), Binding::Var(out)));
                    }
                    let mut aggs = Vec::new();
                    for w in with {
                        let Some(Binding::Var(wv)) = lookup(&env, w) else {
                            return err(format!("`with ${w}` does not name an in-scope variable"));
                        };
                        let out = self.vargen.fresh();
                        if only_counted(w, &f.clauses[ci + 1..], &f.ret) {
                            aggs.push((out, AggFn::Count));
                            new_env.push((w.clone(), Binding::CountAgg(out)));
                        } else {
                            aggs.push((out, AggFn::CollectSortedSet(*wv)));
                            new_env.push((w.clone(), Binding::CollectAgg(out)));
                        }
                    }
                    plan = Some(LogicalNode::new(
                        LogicalOp::GroupBy { group_vars, aggs },
                        vec![input],
                    ));
                    env = new_env;
                }
                Clause::OrderBy(keys) => {
                    let mut input = plan
                        .clone()
                        .ok_or_else(|| TranslateError("`order by` requires a prior `for`".into()))?;
                    let mut order_keys = Vec::new();
                    for (e, desc) in keys {
                        let te = self.expr(e, &env)?;
                        let var = match te {
                            Expr::Column(v) => v,
                            other => {
                                let (node, v) = build::assign1(input.clone(), self.vargen, other);
                                input = node;
                                v
                            }
                        };
                        order_keys.push(OrderKey { var, desc: *desc });
                    }
                    plan = Some(LogicalNode::new(
                        LogicalOp::OrderBy {
                            keys: order_keys,
                            global: true,
                        },
                        vec![input],
                    ));
                }
                Clause::Limit(n) => {
                    let input = plan
                        .clone()
                        .ok_or_else(|| TranslateError("`limit` requires a prior `for`".into()))?;
                    plan = Some(LogicalNode::new(LogicalOp::Limit { n: *n }, vec![input]));
                }
            }
        }

        let input = plan.ok_or_else(|| TranslateError("FLWOR has no source clause".into()))?;
        let ret = self.expr(&f.ret, &env)?;
        let (with_result, rv) = build::assign1(input, self.vargen, ret);
        Ok((build::project(with_result, vec![rv]), rv))
    }

    /// Translate an expression against the environment.
    fn expr(&self, e: &AstExpr, env: &Env) -> Result<Expr, TranslateError> {
        Ok(match e {
            AstExpr::Var(name) => match lookup(env, name) {
                Some(Binding::Var(v)) | Some(Binding::CollectAgg(v)) => Expr::Column(*v),
                Some(Binding::CountAgg(_)) => {
                    return err(format!(
                        "`${name}` was grouped with count semantics; use count(${name})"
                    ))
                }
                None => return err(format!("unbound variable ${name}")),
            },
            AstExpr::MetaVar(name) => match self.bindings.vars.get(name) {
                Some(v) => Expr::Column(*v),
                None => return err(format!("unbound meta variable $${name}")),
            },
            AstExpr::Lit(v) => Expr::Const(v.clone()),
            AstExpr::Call(name, args) if name == "count" && args.len() == 1 => {
                if let AstExpr::Var(w) = &args[0] {
                    if let Some(Binding::CountAgg(v)) = lookup(env, w) {
                        return Ok(Expr::Column(*v));
                    }
                    if let Some(Binding::CollectAgg(v)) = lookup(env, w) {
                        return Ok(Expr::call("len", vec![Expr::Column(*v)]));
                    }
                }
                Expr::call("len", vec![self.expr(&args[0], env)?])
            }
            AstExpr::Call(name, args) => {
                let targs = args
                    .iter()
                    .map(|a| self.expr(a.unhinted(), env))
                    .collect::<Result<Vec<_>, _>>()?;
                Expr::Call(name.clone(), targs)
            }
            AstExpr::Field(inner, field) => self.expr(inner, env)?.field(field.clone()),
            AstExpr::Index(inner, i) => Expr::call(
                "get-item",
                vec![self.expr(inner, env)?, Expr::lit(*i as i64)],
            ),
            AstExpr::Cmp(op, a, b) => Expr::cmp(
                *op,
                self.expr(a.unhinted(), env)?,
                self.expr(b.unhinted(), env)?,
            ),
            AstExpr::And(parts) => Expr::And(
                parts
                    .iter()
                    .map(|p| self.expr(p, env))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            AstExpr::Or(parts) => Expr::Or(
                parts
                    .iter()
                    .map(|p| self.expr(p, env))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            AstExpr::Not(inner) => Expr::Not(Box::new(self.expr(inner, env)?)),
            AstExpr::Record(fields) => Expr::RecordCtor(
                fields
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), self.expr(v, env)?)))
                    .collect::<Result<Vec<_>, TranslateError>>()?,
            ),
            AstExpr::List(items) => Expr::ListCtor(
                items
                    .iter()
                    .map(|i| self.expr(i, env))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            AstExpr::Hinted(_, inner) => self.expr(inner, env)?,
            AstExpr::Dataset(_) => {
                return err("`dataset` is only valid as a `for` source")
            }
            AstExpr::Subquery(_) => {
                return err("nested subqueries are only supported as `for` sources")
            }
            AstExpr::MetaClause(name) => {
                return err(format!("##{name} is only valid as a clause or `for` source"))
            }
            AstExpr::JoinClause { .. } => {
                return err("`join` clauses are only valid at the top level of AQL+ templates")
            }
        })
    }
}

/// Is `$w` used only inside `count($w)` in the given clauses + return?
fn only_counted(w: &str, rest: &[Clause], ret: &AstExpr) -> bool {
    fn expr_ok(w: &str, e: &AstExpr) -> bool {
        match e {
            AstExpr::Var(name) => name != w,
            AstExpr::Call(name, args) if name == "count" && args.len() == 1 => {
                matches!(&args[0], AstExpr::Var(v) if v == w)
                    || args.iter().all(|a| expr_ok(w, a))
            }
            AstExpr::Call(_, args)
            | AstExpr::And(args)
            | AstExpr::Or(args)
            | AstExpr::List(args) => args.iter().all(|a| expr_ok(w, a)),
            AstExpr::Field(inner, _) | AstExpr::Index(inner, _) | AstExpr::Not(inner) => {
                expr_ok(w, inner)
            }
            AstExpr::Cmp(_, a, b) => expr_ok(w, a) && expr_ok(w, b),
            AstExpr::Record(fs) => fs.iter().all(|(_, v)| expr_ok(w, v)),
            AstExpr::Hinted(_, inner) => expr_ok(w, inner),
            AstExpr::Subquery(_) => true, // fresh scope
            _ => true,
        }
    }
    let clause_ok = |c: &Clause| match c {
        Clause::For { source, .. } => expr_ok(w, source),
        Clause::Let { expr, .. } => expr_ok(w, expr),
        Clause::Where(e) => expr_ok(w, e),
        Clause::GroupBy { keys, .. } => keys.iter().all(|(_, e)| expr_ok(w, e)),
        Clause::OrderBy(keys) => keys.iter().all(|(e, _)| expr_ok(w, e)),
        Clause::Limit(_) | Clause::MetaSource(_) => true,
    };
    rest.iter().all(clause_ok) && expr_ok(w, ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use asterix_algebricks::plan::{explain, operator_counts};

    fn tr(text: &str) -> Result<Translation, TranslateError> {
        let q = parse_query(text).map_err(|e| TranslateError(e.to_string()))?;
        translate(&q, &VarGen::new(), &Bindings::default())
    }

    #[test]
    fn selection_query() {
        let t = tr(r#"
            for $t in dataset bar
            where edit-distance($t.V, 'C') < 2
            return {"id": $t.id, "field": $t.V}
        "#)
        .unwrap();
        let text = explain(&t.plan);
        assert!(text.contains("data-scan bar"), "{text}");
        assert!(text.contains("select"), "{text}");
        assert!(text.contains("edit-distance"), "{text}");
        assert_eq!(t.plan.schema.len(), 1);
    }

    #[test]
    fn settings_extracted() {
        let t = tr(r#"
            use dataverse TextStore;
            set simfunction 'jaccard';
            set simthreshold '0.5';
            for $t in dataset X return $t
        "#)
        .unwrap();
        assert_eq!(t.settings.dataverse.as_deref(), Some("TextStore"));
        assert_eq!(t.settings.simfunction.as_deref(), Some("jaccard"));
        assert_eq!(t.settings.simthreshold.as_deref(), Some("0.5"));
    }

    #[test]
    fn join_query_builds_cross_join_plus_select() {
        let t = tr(r#"
            for $t1 in dataset A
            for $t2 in dataset B
            where similarity-jaccard(word-tokens($t1.s), word-tokens($t2.s)) >= 0.5
            return { 'a': $t1, 'b': $t2 }
        "#)
        .unwrap();
        let counts = operator_counts(&t.plan);
        assert!(counts.contains(&("data-scan", 2)), "{counts:?}");
        assert!(counts.contains(&("join", 1)), "{counts:?}");
        assert!(counts.contains(&("select", 1)), "{counts:?}");
    }

    #[test]
    fn count_wrapper_becomes_global_aggregate() {
        let t = tr("count( for $t in dataset A return $t );").unwrap();
        let text = explain(&t.plan);
        assert!(text.contains("group by [] aggs"), "{text}");
    }

    #[test]
    fn unnest_field() {
        let t = tr(r#"
            for $t in dataset A
            for $tok in word-tokens($t.summary)
            return $tok
        "#)
        .unwrap();
        assert!(explain(&t.plan).contains("unnest"));
    }

    #[test]
    fn group_by_count_usage() {
        let t = tr(r#"
            for $t in dataset A
            for $token in word-tokens($t.summary)
            let $id := $t.id
            /*+ hash */
            group by $tokenGrouped := $token with $id
            order by count($id), $tokenGrouped
            return $tokenGrouped
        "#)
        .unwrap();
        let text = explain(&t.plan);
        assert!(text.contains("Count"), "{text}");
        assert!(text.contains("order (global)"), "{text}");
    }

    #[test]
    fn group_by_collect_usage() {
        let t = tr(r#"
            for $t in dataset A
            for $token in word-tokens($t.summary)
            group by $id := $t.id with $token
            return $token
        "#)
        .unwrap();
        assert!(explain(&t.plan).contains("CollectSortedSet"));
    }

    #[test]
    fn uncorrelated_subquery_with_positional() {
        let t = tr(r#"
            for $t in dataset A
            for $tok in word-tokens($t.s)
            for $ranked at $i in (
                for $x in dataset A
                for $xt in word-tokens($x.s)
                group by $g := $xt with $x
                order by count($x), $g
                return $g
            )
            where $tok = $ranked
            return $i
        "#)
        .unwrap();
        let text = explain(&t.plan);
        assert!(text.contains("stream-pos"), "{text}");
    }

    #[test]
    fn correlated_subquery_rejected() {
        let e = tr(r#"
            for $t in dataset A
            for $x in ( for $y in dataset B where $y.id = $t.id return $y )
            return $x
        "#)
        .unwrap_err();
        assert!(e.0.contains("correlated"), "{e}");
    }

    #[test]
    fn unbound_variable_rejected() {
        let e = tr("for $t in dataset A return $nope").unwrap_err();
        assert!(e.0.contains("unbound variable"), "{e}");
    }

    #[test]
    fn limit_and_order() {
        let t = tr(r#"
            for $t in dataset A
            order by $t.score desc
            limit 10
            return $t
        "#)
        .unwrap();
        let text = explain(&t.plan);
        assert!(text.contains("limit 10"), "{text}");
        assert!(text.contains("order (global)"), "{text}");
    }

    #[test]
    fn sim_operator_survives_translation() {
        let t = tr(r#"
            set simfunction 'jaccard';
            set simthreshold '0.8';
            for $t1 in dataset A
            for $t2 in dataset A
            where word-tokens($t1.s) ~= word-tokens($t2.s)
            return { 'a': $t1.id, 'b': $t2.id }
        "#)
        .unwrap();
        assert!(explain(&t.plan).contains("~="));
    }
}
