//! The AQL/AQL+ lexer.

use std::fmt;

/// Lexical tokens. Keywords are case-insensitive identifiers; identifiers
/// may contain `-` (AQL function names like `similarity-jaccard`).
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// `$name`
    Var(String),
    /// `$$name` (AQL+ meta variable)
    MetaVar(String),
    /// `##name` (AQL+ meta clause)
    MetaClause(String),
    /// bare identifier / keyword
    Ident(String),
    /// 'text' or "text"
    Str(String),
    Int(i64),
    Float(f64),
    /// `/*+ hash */`-style compiler hint (§4.2.2); carried through and
    /// recorded by the parser.
    Hint(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Assign, // :=
    Eq,     // =
    Ne,     // !=
    Lt,
    Le,
    Gt,
    Ge,
    SimEq, // ~=
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Var(v) => write!(f, "${v}"),
            Token::MetaVar(v) => write!(f, "$${v}"),
            Token::MetaClause(v) => write!(f, "##{v}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Hint(h) => write!(f, "/*+ {h} */"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, ":="),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::SimEq => write!(f, "~="),
        }
    }
}

/// A lexing error with a character offset.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.offset, self.message)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    // AQL identifiers include '-' (function names); a '-' is part of the
    // identifier only when followed by a letter, so `a-b` lexes as one
    // identifier but `a - 1` does not.
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenize a query text.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    let err = |i: usize, m: &str| LexError {
        offset: i,
        message: m.to_string(),
    };
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Comment or hint: /*+ ... */ is a hint.
                let is_hint = chars.get(i + 2) == Some(&'+');
                let start = i + if is_hint { 3 } else { 2 };
                let mut j = start;
                while j + 1 < chars.len() && !(chars[j] == '*' && chars[j + 1] == '/') {
                    j += 1;
                }
                if j + 1 >= chars.len() {
                    return Err(err(i, "unterminated comment"));
                }
                if is_hint {
                    let text: String = chars[start..j].iter().collect();
                    out.push(Token::Hint(text.trim().to_string()));
                }
                i = j + 2;
            }
            '$' => {
                if chars.get(i + 1) == Some(&'$') {
                    let (name, next) = take_ident(&chars, i + 2);
                    if name.is_empty() {
                        return Err(err(i, "expected name after $$"));
                    }
                    out.push(Token::MetaVar(name));
                    i = next;
                } else {
                    let (name, next) = take_ident(&chars, i + 1);
                    if name.is_empty() {
                        return Err(err(i, "expected name after $"));
                    }
                    out.push(Token::Var(name));
                    i = next;
                }
            }
            '#' if chars.get(i + 1) == Some(&'#') => {
                let (name, next) = take_ident(&chars, i + 2);
                if name.is_empty() {
                    return Err(err(i, "expected name after ##"));
                }
                out.push(Token::MetaClause(name));
                i = next;
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != quote {
                    if chars[j] == '\\' && j + 1 < chars.len() {
                        j += 1;
                    }
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(err(i, "unterminated string"));
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '0'..='9' => {
                let (tok, next) = take_number(&chars, i);
                out.push(tok);
                i = next;
            }
            '.' if chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()) => {
                // `.5f` style float literal.
                let (tok, next) = take_number(&chars, i);
                out.push(tok);
                i = next;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ':' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Assign);
                i += 2;
            }
            ':' => {
                // Record constructors use `'k': v`; treat as field sep —
                // parser handles via expecting it; reuse Assign? Use a
                // dedicated token: we map ':' to Assign for simplicity in
                // record contexts.
                out.push(Token::Assign);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Le);
                i += 2;
            }
            '<' => {
                out.push(Token::Lt);
                i += 1;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Ge);
                i += 2;
            }
            '>' => {
                out.push(Token::Gt);
                i += 1;
            }
            '~' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::SimEq);
                i += 2;
            }
            c if is_ident_start(c) => {
                let (name, next) = take_ident(&chars, i);
                out.push(Token::Ident(name));
                i = next;
            }
            other => return Err(err(i, &format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

fn take_ident(chars: &[char], start: usize) -> (String, usize) {
    let mut j = start;
    let mut s = String::new();
    while j < chars.len() {
        let c = chars[j];
        if c == '-' {
            // '-' joins identifiers only when followed by a letter.
            if j + 1 < chars.len() && chars[j + 1].is_alphabetic() && !s.is_empty() {
                s.push(c);
                j += 1;
                continue;
            }
            break;
        }
        if (j == start && is_ident_start(c)) || (j > start && is_ident_continue(c)) {
            s.push(c);
            j += 1;
        } else {
            break;
        }
    }
    (s, j)
}

fn take_number(chars: &[char], start: usize) -> (Token, usize) {
    let mut j = start;
    let mut text = String::new();
    let mut is_float = false;
    while j < chars.len() {
        match chars[j] {
            '0'..='9' => {
                text.push(chars[j]);
                j += 1;
            }
            '.' if !is_float && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit() || *d == 'f')
                || (j == start && chars[j] == '.') =>
            {
                is_float = true;
                text.push('.');
                j += 1;
            }
            'f' => {
                // Float suffix as in `.5f`.
                is_float = true;
                j += 1;
                break;
            }
            _ => break,
        }
    }
    if is_float {
        (Token::Float(text.parse().unwrap_or(0.0)), j)
    } else {
        (Token::Int(text.parse().unwrap_or(0)), j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks = lex("for $t1 in dataset AmazonReview where $t1.x >= 0.5 return $t1").unwrap();
        assert_eq!(toks[0], Token::Ident("for".into()));
        assert_eq!(toks[1], Token::Var("t1".into()));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Float(0.5)));
    }

    #[test]
    fn hyphenated_function_names() {
        let toks = lex("similarity-jaccard(word-tokens($t.summary), 3)").unwrap();
        assert_eq!(toks[0], Token::Ident("similarity-jaccard".into()));
        assert_eq!(toks[2], Token::Ident("word-tokens".into()));
    }

    #[test]
    fn minus_vs_hyphen() {
        // `a-b` is one identifier; `1 - 2` would be an error (no binary
        // minus in the subset) — ensure `x-1` splits cleanly.
        let toks = lex("edit-distance").unwrap();
        assert_eq!(toks, vec![Token::Ident("edit-distance".into())]);
    }

    #[test]
    fn strings_and_floats() {
        let toks = lex("set simthreshold '0.5'; return .5f").unwrap();
        assert!(toks.contains(&Token::Str("0.5".into())));
        assert!(toks.contains(&Token::Float(0.5)));
    }

    #[test]
    fn hints_captured() {
        let toks = lex("/*+ hash */ group by /*+ bcast */ $x").unwrap();
        assert_eq!(toks[0], Token::Hint("hash".into()));
        assert!(toks.contains(&Token::Hint("bcast".into())));
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("// --- Stage 3 ---\nfor /* c */ $x in $y").unwrap();
        assert_eq!(toks[0], Token::Ident("for".into()));
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn aqlplus_tokens() {
        let toks = lex("join((##LEFT_1), (##RIGHT_1), $$LEFTPK_3 = $id)").unwrap();
        assert!(toks.contains(&Token::MetaClause("LEFT_1".into())));
        assert!(toks.contains(&Token::MetaClause("RIGHT_1".into())));
        assert!(toks.contains(&Token::MetaVar("LEFTPK_3".into())));
    }

    #[test]
    fn sim_operator() {
        let toks = lex("$a ~= $b").unwrap();
        assert_eq!(toks[1], Token::SimEq);
    }

    #[test]
    fn errors_reported() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ^ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn record_constructor_tokens() {
        let toks = lex("{ 'k': $v, 'j': 1 }").unwrap();
        assert_eq!(toks[0], Token::LBrace);
        assert!(toks.contains(&Token::Assign)); // ':' maps to Assign
    }
}
