//! Instance-wide telemetry: run a small mixed workload, then inspect the
//! three export surfaces — the JSON metrics snapshot (per-class latency
//! histograms, operator timings, cache ratios, LSM gauges, the lifecycle
//! event ring), the Prometheus text rendering, and a slow-query capture
//! with its full plan, profile, and tracing spans.
//!
//! Run with: `cargo run --example telemetry`

use asterix_adm::IndexKind;
use asterix_core::{Instance, InstanceConfig, QueryOptions};
use asterix_datagen::amazon_reviews;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Telemetry is on by default — no opt-in needed.
    let db = Instance::new(InstanceConfig::with_partitions(4));
    db.create_dataset("AmazonReview", "id")?;
    db.load("AmazonReview", amazon_reviews(2_000, 42))?;
    db.create_index("AmazonReview", "smix", "summary", IndexKind::Keyword)?;
    db.create_index("AmazonReview", "nix", "reviewerName", IndexKind::NGram(2))?;
    // Flushing emits flush events into the lifecycle ring and moves data
    // to disk components so queries exercise the buffer cache.
    db.flush("AmazonReview")?;

    // A mixed workload: scans, index selections, and an index join. Each
    // query is classified by its plan and lands in that class's latency
    // histogram.
    for _ in 0..5 {
        db.query("for $t in dataset AmazonReview where $t.id < 50 return $t.id")?;
    }
    for _ in 0..5 {
        db.query(
            "for $t in dataset AmazonReview \
             where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.5 \
             return $t.id",
        )?;
    }
    db.query(
        "for $o in dataset AmazonReview \
         for $i in dataset AmazonReview \
         where $o.id < 25 \
           and similarity-jaccard(word-tokens($o.summary), word-tokens($i.summary)) >= 0.8 \
           and $o.id < $i.id \
         return {\"o\": $o.id, \"i\": $i.id}",
    )?;

    // Force one slow-query capture by dropping the threshold to zero for
    // a single query (normally `TelemetryConfig::slow_query_threshold`,
    // default 250ms, decides).
    db.query_with(
        "for $t in dataset AmazonReview \
         where edit-distance($t.reviewerName, 'gubimo') <= 1 \
         return $t.id",
        &QueryOptions {
            slow_query_threshold: Some(Duration::ZERO),
            ..QueryOptions::default()
        },
    )?;

    // Surface 1: the full JSON snapshot.
    println!("=== metrics snapshot (JSON) ===\n");
    println!("{}\n", asterix_adm::json::to_string(&db.metrics_snapshot()));

    // Surface 2: Prometheus text exposition.
    println!("=== metrics (Prometheus text) ===\n");
    println!("{}", db.metrics_prometheus());

    // Surface 3: the slow-query log, with the captured plan + span tree.
    let telemetry = db.telemetry().expect("telemetry is on by default");
    for slow in telemetry.slow_queries() {
        println!(
            "=== slow query #{} ({}, {:?}) ===\n{}\n",
            slow.seq,
            slow.class.name(),
            slow.execution_time,
            slow.query.trim()
        );
        println!("captured plan:\n{}", slow.plan);
        println!(
            "profile: {} operators, {} primary lookups, {} survivors",
            slow.profile.operators.len(),
            slow.profile.index_search.primary_lookups,
            slow.profile.index_search.post_verification_survivors
        );
        println!("span tree ({} spans):", slow.spans.len());
        for span in &slow.spans {
            println!(
                "  id={} parent={:?} {} partition={:?} start={}us dur={}us",
                span.id, span.parent, span.name, span.partition, span.start_us, span.duration_us
            );
        }
    }

    // The lifecycle event ring: flush/merge/bulk-load brackets with byte
    // counts and component generations.
    let events = telemetry.event_log().snapshot();
    println!("\n=== LSM lifecycle events ({} recorded) ===", telemetry.event_log().total_recorded());
    for e in events.iter().rev().take(10) {
        println!(
            "  #{} {} {} bytes={} components={} gen={}",
            e.seq,
            e.tree,
            e.kind.name(),
            e.bytes,
            e.components,
            e.generation
        );
    }
    Ok(())
}
