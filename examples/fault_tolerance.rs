//! Fault tolerance tour: query deadlines, external cancellation, and
//! seeded storage fault injection — the failure contract is that every
//! failure surfaces as a typed [`CoreError`], never a panic or a hang,
//! and that a failed query does not poison the instance.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use asterix_algebricks::OptimizerConfig;
use asterix_core::{CoreError, Instance, InstanceConfig, QueryOptions};
use asterix_datagen::amazon_reviews;
use asterix_storage::{FaultInjector, FaultRule, IoOp};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An index-less similarity self-join: quadratic scan work, the natural
/// victim for deadlines and cancellation.
const SLOW_JOIN: &str = r#"
    for $a in dataset ARevs
    for $b in dataset ARevs
    where edit-distance($a.reviewerName, $b.reviewerName) <= 2
      and $a.id < $b.id
    return { "a": $a.id, "b": $b.id }
"#;

fn scan_only(timeout: Option<Duration>) -> QueryOptions {
    QueryOptions {
        optimizer: Some(OptimizerConfig {
            enable_index_select: false,
            enable_index_join: false,
            ..OptimizerConfig::default()
        }),
        timeout,
        ..QueryOptions::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Instance::new(InstanceConfig::with_partitions(2));
    db.create_dataset("ARevs", "id")?;
    db.load("ARevs", amazon_reviews(400, 77))?;
    println!("loaded {} records over 2 partitions", db.count_records("ARevs")?);

    // 1. Deadline: the self-join cannot finish in 150 ms; the engine
    //    cancels every partition cooperatively and reports Timeout.
    let started = Instant::now();
    match db.query_with(SLOW_JOIN, &scan_only(Some(Duration::from_millis(150)))) {
        Err(CoreError::Timeout(budget)) => println!(
            "1. deadline   -> CoreError::Timeout({budget:?}) after {:?}",
            started.elapsed()
        ),
        other => panic!("expected Timeout, got {other:?}"),
    }

    // 2. External cancellation: a second thread kills the active job.
    let db = Arc::new(db);
    let worker = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || db.query_with(SLOW_JOIN, &scan_only(None)))
    };
    while !db.cluster().cancel_active() {
        std::thread::sleep(Duration::from_millis(2));
    }
    match worker.join().expect("worker must not panic") {
        Err(CoreError::Cancelled) => println!("2. cancel     -> CoreError::Cancelled"),
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // 3. Transient flush fault: fires once, the bounded retry in
    //    Instance::flush absorbs it, and the flush still succeeds.
    let injector = Arc::new(FaultInjector::new(9).with_rule(FaultRule {
        op: IoOp::Flush,
        file: None,
        nth: 1,
        transient: true,
    }));
    db.partition_cache(0).disk().set_fault_injector(injector.clone());
    db.flush("ARevs")?;
    println!(
        "3. transient  -> flush succeeded after absorbing {} injected fault(s)",
        injector.faults_injected()
    );

    // 4. Permanent read fault: the on-disk component is unreadable, so a
    //    query over it fails with a typed I/O error...
    db.partition_cache(0).disk().set_fault_injector(Arc::new(
        FaultInjector::new(5).with_rule(FaultRule {
            op: IoOp::Read,
            file: None,
            nth: 1,
            transient: false,
        }),
    ));
    match db.query("for $t in dataset ARevs return $t.id") {
        Err(CoreError::Io(msg)) => println!("4. permanent  -> CoreError::Io({msg:?})"),
        other => panic!("expected Io, got {other:?}"),
    }

    // ...and clearing the injector proves the failure did not poison
    // anything: the same query now returns every record.
    db.partition_cache(0).disk().clear_fault_injector();
    let rows = db.query("for $t in dataset ARevs return $t.id")?.rows.len();
    println!("5. recovered  -> same query returns {rows} rows");
    Ok(())
}
