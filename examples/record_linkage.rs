//! Record linkage (§1's motivating application): match customer records
//! across two independently-collected datasets whose names carry typos,
//! using an edit-distance similarity join through an n-gram index —
//! including the runtime corner-case path of Fig 14 for very short names.
//!
//! Run with: `cargo run --example record_linkage`

use asterix_adm::{record, IndexKind};
use asterix_core::{Instance, InstanceConfig};
use asterix_datagen::text::NamePool;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Instance::new(InstanceConfig::with_partitions(4));
    db.create_dataset("CrmCustomers", "cid")?;
    db.create_dataset("BillingAccounts", "aid")?;

    // Two systems recorded overlapping customers; the billing system's
    // data entry introduced typos (the NamePool injects 1-2 edit
    // variants).
    let pool = NamePool::new(120, 42);
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..400i64 {
        db.insert(
            "CrmCustomers",
            record! {"cid" => i, "name" => pool.name(&mut rng), "segment" => "retail"},
        )?;
    }
    for i in 0..400i64 {
        db.insert(
            "BillingAccounts",
            record! {"aid" => i, "holder" => pool.name(&mut rng), "balance" => i * 10},
        )?;
    }

    // Index the *inner* side's name: the join broadcasts CRM rows to each
    // partition's local 2-gram index (Fig 9).
    db.create_index("BillingAccounts", "holder_ngram", "holder", IndexKind::NGram(2))?;

    let linked = db.query(
        r#"
        for $c in dataset CrmCustomers
        for $b in dataset BillingAccounts
        where edit-distance($c.name, $b.holder) <= 1
        return { 'customer': $c.cid, 'account': $b.aid,
                 'name': $c.name, 'holder': $b.holder }
    "#,
    )?;

    println!(
        "linked {} candidate identity pairs (index-NL join used: {})",
        linked.rows.len(),
        linked.plan.used_rule("introduce-index-nested-loop-join"),
    );
    for row in linked.rows.iter().take(10) {
        println!("  {row}");
    }
    println!(
        "\nplan has a union for the corner-case path: {}",
        linked
            .plan
            .physical_ops
            .iter()
            .any(|(n, _)| *n == "union")
    );
    println!(
        "index candidates examined: {} (then verified exactly)",
        linked.index_candidates()
    );
    Ok(())
}
