//! Product search (§1's call-center scenario): "a call center
//! representative might wish to immediately identify a product purchased
//! by the customer by typing in a serial number. The system should locate
//! the product even in the presence of typos."
//!
//! Demonstrates edit-distance selection through an n-gram index, the
//! compile-time corner case (§5.1.1), and a user-defined similarity
//! function (§3.1).
//!
//! Run with: `cargo run --example product_search`

use asterix_adm::{record, IndexKind, Value};
use asterix_core::{Instance, InstanceConfig};
use asterix_simfn::jaccard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Instance::new(InstanceConfig::with_partitions(4));
    db.create_dataset("Products", "pid")?;
    for i in 0..2_000i64 {
        let serial = format!("SN{:06}-{}", i * 7 % 999_983, (b'A' + (i % 26) as u8) as char);
        db.insert(
            "Products",
            record! {"pid" => i, "serial" => serial,
                     "title" => format!("widget model {}", i % 97)},
        )?;
    }
    db.create_index("Products", "serial_ngram", "serial", IndexKind::NGram(2))?;

    // The agent mistypes two characters of "SN000007-B" (product 1).
    let hit = db.query(
        r#"
        for $p in dataset Products
        where edit-distance($p.serial, 'SN00OO07-B') <= 2
        return { 'pid': $p.pid, 'serial': $p.serial, 'title': $p.title }
    "#,
    )?;
    println!("products matching the mistyped serial:");
    for row in &hit.rows {
        println!("  {row}");
    }
    println!(
        "  index plan: {}, candidates: {}, execution: {:?}",
        hit.plan.used_rule("introduce-index-for-selection"),
        hit.index_candidates(),
        hit.execution_time,
    );

    // Corner case: a 3-character search with k = 2 has T = (3-1) - 2*2
    // <= 0 — the optimizer must refuse the index and scan instead.
    let corner = db.explain(
        r#"
        for $p in dataset Products
        where edit-distance($p.serial, 'SN0') <= 2
        return $p.pid
    "#,
    )?;
    println!(
        "\ncorner-case query compiled to a scan (no index rewrite): {}",
        !corner.used_rule("introduce-index-for-selection")
    );

    // A custom similarity: serial prefix-segment Jaccard, registered as a
    // UDF and used like any built-in.
    db.register_udf("similarity-serial-segments", |args| {
        let seg = |v: &Value| -> Vec<String> {
            v.as_str()
                .unwrap_or_default()
                .split('-')
                .map(str::to_lowercase)
                .collect()
        };
        Ok(Value::double(jaccard(&seg(&args[0]), &seg(&args[1]))))
    });
    let udf = db.query(
        r#"
        for $p in dataset Products
        where similarity-serial-segments($p.serial, 'SN000049-H') >= 0.5
        return $p.serial
    "#,
    )?;
    println!("\nUDF matches for segment similarity >= 0.5: {}", udf.rows.len());
    for row in udf.rows.iter().take(5) {
        println!("  {row}");
    }
    Ok(())
}
