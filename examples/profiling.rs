//! Per-query profiling: run similarity queries with
//! `QueryOptions { profile: true }` and inspect the attached
//! [`QueryProfile`] — the per-operator tuple/frame/time breakdown, the
//! buffer-cache and LSM counters attributed to each query alone, the
//! index-search candidate funnel (inverted-list elements → T-occurrence
//! candidates → primary lookups → post-verification survivors), and the
//! optimizer's rule trace — as an EXPLAIN PROFILE-style text tree and
//! as JSON.
//!
//! Run with: `cargo run --example profiling`

use asterix_adm::IndexKind;
use asterix_core::{Instance, InstanceConfig, QueryOptions};
use asterix_datagen::amazon_reviews;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Instance::new(InstanceConfig::with_partitions(4));
    db.create_dataset("AmazonReview", "id")?;
    // Seed 42: the generator's Zipfian vocabulary includes "caho" and
    // "gubimo", which the queries below probe for.
    db.load("AmazonReview", amazon_reviews(2_000, 42))?;
    db.create_index("AmazonReview", "smix", "summary", IndexKind::Keyword)?;
    db.create_index("AmazonReview", "nix", "reviewerName", IndexKind::NGram(2))?;
    // Flush so the queries below read disk components through the
    // buffer cache — otherwise every probe is an in-memory hit and the
    // cache/LSM sections of the profile stay empty.
    db.flush("AmazonReview")?;

    let profiled = QueryOptions {
        profile: true,
        disable_hotpath: false,
        ..QueryOptions::default()
    };

    // An index-accelerated Jaccard selection: the profile shows the
    // candidate funnel of §4.1 (inverted lists → T-occurrence →
    // primary lookups → verified results).
    let sel = db.query_with(
        "for $t in dataset AmazonReview \
         where similarity-jaccard(word-tokens($t.summary), word-tokens('caho gonaha')) >= 0.5 \
         return $t.id",
        &profiled,
    )?;
    let profile = sel.profile.as_ref().expect("profile was requested");
    println!("=== Jaccard selection: {} rows ===\n", sel.rows.len());
    println!("{}", profile.render_text());

    // The same profile as JSON, as the bench harness emits it.
    println!("=== profile JSON ===\n{}\n", profile.to_json_string());

    // An edit-distance selection through the 2-gram index: different
    // query, independent counters.
    let ed = db.query_with(
        "for $t in dataset AmazonReview \
         where edit-distance($t.reviewerName, 'gubimo') <= 1 \
         return $t.id",
        &profiled,
    )?;
    let profile = ed.profile.as_ref().expect("profile was requested");
    println!("=== Edit-distance selection: {} rows ===\n", ed.rows.len());
    println!("{}", profile.render_text());

    Ok(())
}
