//! Quickstart: the full lifecycle of similarity queries on a simulated
//! parallel cluster — create a dataset, load records, build similarity
//! indexes, and run selection + join queries with and without them.
//!
//! Run with: `cargo run --example quickstart`

use asterix_adm::{record, IndexKind};
use asterix_core::{Instance, InstanceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-partition simulated cluster (the paper used 8 nodes x 2).
    let db = Instance::new(InstanceConfig::with_partitions(4));
    db.create_dataset("AmazonReview", "review-id")?;

    // Fig 1's sample reviews.
    let reviews = [
        (1i64, "james", "This movie touched my heart!"),
        (2, "mary", "The best car charger I ever bought"),
        (3, "mario", "Different than my usual but good"),
        (4, "jamie", "Great Product - Fantastic Gift"),
        (5, "maria", "Better ever than I expected"),
        (6, "anna", "great product fantastic gift idea"),
    ];
    for (id, user, summary) in reviews {
        db.insert(
            "AmazonReview",
            record! {"review-id" => id, "username" => user, "summary" => summary},
        )?;
    }

    // §3.3: a keyword index for Jaccard and a 2-gram index for edit
    // distance.
    let smix = db.create_index("AmazonReview", "smix", "summary", IndexKind::Keyword)?;
    let nix = db.create_index("AmazonReview", "nix", "username", IndexKind::NGram(2))?;
    println!(
        "built {} ({} records, {} bytes) and {} ({} records, {} bytes)",
        smix.index, smix.records_indexed, smix.size_bytes, nix.index, nix.records_indexed,
        nix.size_bytes
    );

    // Similarity selection (edit distance, §4.1) — finds "maria" for the
    // typo "marla", through the n-gram index.
    let sel = db.query(
        r#"
        for $t in dataset AmazonReview
        where edit-distance($t.username, 'marla') <= 1
        return { 'id': $t.review-id, 'username': $t.username }
    "#,
    )?;
    println!("\nusers similar to 'marla':");
    for row in &sel.rows {
        println!("  {row}");
    }
    println!(
        "  (index-based plan: {}, candidates: {})",
        sel.plan.used_rule("introduce-index-for-selection"),
        sel.index_candidates()
    );

    // Similarity join (Jaccard, §4.2) with the `~=` sugar of Fig 4(a).
    let join = db.query(
        r#"
        set simfunction 'jaccard';
        set simthreshold '0.5';
        for $t1 in dataset AmazonReview
        for $t2 in dataset AmazonReview
        where word-tokens($t1.summary) ~= word-tokens($t2.summary)
          and $t1.review-id < $t2.review-id
        return { 'left': $t1.summary, 'right': $t2.summary }
    "#,
    )?;
    println!("\nreview pairs with similar summaries (Jaccard >= 0.5):");
    for row in &join.rows {
        println!("  {row}");
    }
    println!("  rewrites fired: {:?}", join.plan.rewrites);

    Ok(())
}
