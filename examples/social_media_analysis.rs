//! Social-media analysis (§1): find pairs of tweets with near-duplicate
//! text via the three-stage set-similarity join — no index required — and
//! then a multi-way query that combines an equi-join with a similarity
//! join (Fig 26's template shape).
//!
//! Run with: `cargo run --example social_media_analysis`

use asterix_core::{Instance, InstanceConfig};
use asterix_datagen::tweets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Instance::new(InstanceConfig::with_partitions(4));
    db.create_dataset("Tweets", "id")?;
    db.load("Tweets", tweets(1_500, 2024))?;
    println!("loaded {} tweets", db.count_records("Tweets")?);

    // Self join on tokenized text: without an index the optimizer picks
    // the three-stage plan of §4.2.2 (token ordering → rid-pair
    // generation → record join).
    let pairs = db.query(
        r#"
        for $t1 in dataset Tweets
        for $t2 in dataset Tweets
        where similarity-jaccard(word-tokens($t1.text),
                                 word-tokens($t2.text)) >= 0.8
          and $t1.id < $t2.id
        return { 'a': $t1.id, 'b': $t2.id, 'text': $t1.text }
    "#,
    )?;
    println!(
        "\nnear-duplicate tweet pairs (Jaccard >= 0.8): {}",
        pairs.rows.len()
    );
    println!(
        "three-stage join used: {} | logical operators in the plan: {}",
        pairs.plan.used_rule("three-stage-similarity-join"),
        pairs.plan.total_logical_ops_after(),
    );
    for row in pairs.rows.iter().take(5) {
        println!("  {row}");
    }

    // Multi-way: restrict one branch by an equality first, then apply the
    // similarity join (the paper's Fig 26 pattern).
    let multi = db.query(
        r#"
        for $seed in dataset Tweets
        for $t in dataset Tweets
        where $seed.id = 19
          and similarity-jaccard(word-tokens($seed.text),
                                 word-tokens($t.text)) >= 0.3
          and $seed.id != $t.id
        return { 'similar_to_19': $t.id, 'text': $t.text }
    "#,
    )?;
    println!("\ntweets similar to tweet 19: {}", multi.rows.len());
    for row in multi.rows.iter().take(5) {
        println!("  {row}");
    }
    Ok(())
}
