//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the subset of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and simple regex-pattern strategies, tuple and
//! collection combinators, `prop_oneof!` / `proptest!` /
//! `prop_assert*!` macros, and a deterministic per-test RNG.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (derived from the test's module path and name), there
//! is no shrinking, and failures surface as ordinary panics with the
//! generated inputs in the assertion message.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the fully qualified test name: stable across
            // runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy: Clone {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
        }

        /// Build recursive structures: each level picks the base strategy
        /// or one recursive application, up to `depth` levels deep.
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
        {
            Recursive {
                base: self.boxed(),
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }
    }

    /// Type-erased strategy (cheap to clone).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice among boxed branches (built by `prop_oneof!`).
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
            Union { branches }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                branches: self.branches.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.branches.len());
            self.branches[i].gen_value(rng)
        }
    }

    /// Result of [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                recurse: self.recurse.clone(),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            if self.depth == 0 || rng.below(2) == 0 {
                self.base.gen_value(rng)
            } else {
                let shallower = Recursive {
                    base: self.base.clone(),
                    recurse: self.recurse.clone(),
                    depth: self.depth - 1,
                };
                (self.recurse)(shallower.boxed()).gen_value(rng)
            }
        }
    }

    /// `any::<T>()` — the canonical strategy for a primitive type.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<u8> {
        type Value = u8;
        fn gen_value(&self, rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Strategy for Any<i64> {
        type Value = i64;
        fn gen_value(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            // Arbitrary bit patterns, excluding NaN/infinity so equality
            // round-trips behave.
            loop {
                let f = f64::from_bits(rng.next_u64());
                if f.is_finite() {
                    return f;
                }
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            // unit_f64 is half-open; stretch marginally to make the upper
            // bound reachable.
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            start + unit * (end - start)
        }
    }

    /// String-pattern strategies: a `&'static str` acts as a simplified
    /// regex of atoms (`[a-z0-9]` character classes or `.`) each followed
    /// by an optional quantifier (`{m,n}`, `{n}`, `*`, `+`, `?`).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                    let body = &chars[i + 1..close];
                    i = close + 1;
                    expand_class(body, pattern)
                }
                '.' => {
                    i += 1;
                    (0x20u8..0x7f).map(|b| b as char).collect()
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| p + i)
                            .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse::<usize>().unwrap_or(0),
                                hi.trim().parse::<usize>().unwrap_or(8),
                            ),
                            None => {
                                let n = body.trim().parse::<usize>().unwrap_or(1);
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(class[rng.below(class.len())]);
            }
        }
        out
    }

    fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                for cp in lo..=hi {
                    if let Some(c) = char::from_u32(cp) {
                        set.push(c);
                    }
                }
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
        set
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Collection size specifications accepted by the combinators below.
    pub trait SizeRange: Clone {
        fn pick(&self, rng: &mut TestRng) -> usize;
        fn min(&self) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below(self.end - self.start)
        }
        fn min(&self) -> usize {
            self.start
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below(*self.end() - *self.start() + 1)
        }
        fn min(&self) -> usize {
            *self.start()
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
        fn min(&self) -> usize {
            *self
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            // Duplicates shrink the set; retry within a generous budget so
            // the requested minimum size is honored when feasible.
            let mut budget = 64 * (target + 1);
            while out.len() < target && budget > 0 {
                out.insert(self.element.gen_value(rng));
                budget -= 1;
            }
            out
        }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut budget = 64 * (target + 1);
            while out.len() < target && budget > 0 {
                out.insert(self.element.gen_value(rng));
                budget -= 1;
            }
            out
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list of values.
    #[derive(Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real crate's `prelude::prop` re-export module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests. Each `fn` runs `cases` times with fresh inputs
/// drawn from its strategies; a deterministic per-test seed makes runs
/// reproducible.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property test (plain panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = crate::test_runner::TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn collections_honor_min_size() {
        let mut rng = crate::test_runner::TestRng::deterministic("coll");
        for _ in 0..100 {
            let s = Strategy::gen_value(&prop::collection::hash_set(0u8..30, 5..12), &mut rng);
            assert!(s.len() >= 5 && s.len() < 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u8..10, 0u8..10), s in "[x-z]{1,3}") {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!s.is_empty());
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursion_terminate(v in nested()) {
            fn depth(v: &[Vec<u8>]) -> usize { v.len() }
            prop_assert!(depth(&v) <= 6);
        }
    }

    fn nested() -> impl Strategy<Value = Vec<Vec<u8>>> {
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..3), 0..6)
    }
}
