//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! executor uses: MPMC bounded/unbounded channels with blocking,
//! timeout-aware send/recv and disconnect semantics, implemented with
//! `std::sync::{Mutex, Condvar}`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        Timeout(T),
        Disconnected(T),
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
                SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create a channel holding at most `cap` messages; sends block (or
    /// time out) while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Create a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }

        fn is_full(&self, state: &State<T>) -> bool {
            self.cap.is_some_and(|c| state.queue.len() >= c)
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued or every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if !self.inner.is_full(&state) {
                    state.queue.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .inner
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Like [`Sender::send`] but give up after `timeout`.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                if !self.inner.is_full(&state) {
                    state.queue.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(msg));
                }
                let (s, _timed_out) = self
                    .inner
                    .not_full
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
            }
        }

        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if self.inner.is_full(&state) {
                return Err(TrySendError::Full(msg));
            }
            state.queue.push_back(msg);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.lock();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Like [`Receiver::recv`] but give up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, _timed_out) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.lock();
            if let Some(msg) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocking iterator that ends when the channel is disconnected
        /// and drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.inner.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_blocks_and_unblocks() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap().unwrap();
        }

        #[test]
        fn send_timeout_on_full() {
            let (tx, _rx) = bounded(1);
            tx.send(1).unwrap();
            match tx.send_timeout(2, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(2)) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }

        #[test]
        fn recv_timeout_on_empty() {
            let (_tx, rx) = bounded::<i32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
