//! Offline placeholder for `serde`.
//!
//! The workspace declares a `serde` dependency but no code currently
//! derives or implements its traits; this empty crate satisfies the
//! manifest so the build works without network access. If serialization
//! is needed later, grow this into a real subset or vendor the real
//! crate.
