//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `bytes`:
//! cheaply-cloneable immutable [`Bytes`], growable [`BytesMut`], and the
//! [`Buf`]/[`BufMut`] read/write cursors. Only the methods this
//! workspace actually calls are provided.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (always a full, owned slice —
/// the zero-copy slicing of the real crate is not needed here).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source.
///
/// All `get_*` methods panic when the buffer is exhausted, matching the
/// real crate; callers guard with [`Buf::remaining`]/[`Buf::has_remaining`].
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, data: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u32_le(0xdead_beef);
        out.put_i64_le(-5);
        out.put_u64_le(u64::MAX);
        let frozen = out.freeze();
        let mut buf: &[u8] = &frozen;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xdead_beef);
        assert_eq!(buf.get_i64_le(), -5);
        assert_eq!(buf.get_u64_le(), u64::MAX);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), b"abc");
        assert_eq!(a.len(), 3);
    }
}
