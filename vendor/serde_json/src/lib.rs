//! Offline stand-in for `serde_json` covering the surface this workspace
//! uses: the [`Value`] tree, [`from_str`] parsing, `Display`
//! serialization, and [`Number`] accessors. It is a complete JSON
//! parser/printer, just not serde-integrated.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. The real crate preserves insertion order by
/// default; callers in this workspace canonicalize field order anyway, so
/// a sorted map is fine.
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: integer when exactly representable, float otherwise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    Int(i64),
    Float(f64),
}

impl Number {
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number::Float(f))
        } else {
            None
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(*i),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::Int(i) => Some(*i as f64),
            Number::Float(f) => Some(*f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Number(Number::Int(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Number::from_f64(f).map(Value::Number).unwrap_or(Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON text. Trailing non-whitespace input is an error.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(|f| Value::Number(Number::Float(f)))
            .ok_or_else(|| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // High surrogate: require the low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // parse_hex4 leaves pos after the 4 digits;
                            // skip the +1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-12").unwrap(), Value::Number(Number::Int(-12)));
        assert_eq!(
            from_str("2.5").unwrap(),
            Value::Number(Number::Float(2.5))
        );
        assert_eq!(
            from_str("\"a\\nb\"").unwrap(),
            Value::String("a\nb".into())
        );
    }

    #[test]
    fn parse_nested_and_roundtrip() {
        let text = r#"{"a": [1, 2.5, null, {"b": true}], "s": "xé"}"#;
        let v = from_str(text).unwrap();
        let back = from_str(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn reject_garbage() {
        assert!(from_str("{nope").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn surrogate_pair() {
        assert_eq!(
            from_str("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn number_accessors() {
        assert_eq!(Number::Int(5).as_i64(), Some(5));
        assert_eq!(Number::Float(2.5).as_i64(), None);
        assert_eq!(Number::Float(2.5).as_f64(), Some(2.5));
        assert!(Number::from_f64(f64::NAN).is_none());
    }
}
