//! Offline stand-in for `criterion`.
//!
//! Provides the macro and type surface the bench targets use
//! (`criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`) with a simple measure-and-print harness:
//! each benchmark runs a fixed warm-up then reports the mean
//! nanoseconds per iteration over a few batches. No statistics, HTML
//! reports, or CLI filtering.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters_per_batch: u64,
    total: Duration,
    total_iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..self.iters_per_batch.min(16) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(f());
        }
        self.total += start.elapsed();
        self.total_iters += self.iters_per_batch;
    }

    fn report(&self, name: &str) {
        if self.total_iters == 0 {
            println!("{name:<50} (no measurement)");
        } else {
            let ns = self.total.as_nanos() as f64 / self.total_iters as f64;
            println!("{name:<50} {ns:>14.1} ns/iter");
        }
    }
}

/// Top-level handle, one per `criterion_group!` function list.
#[derive(Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters_per_batch: 32,
        total: Duration::ZERO,
        total_iters: 0,
    };
    // A couple of batches scaled loosely by sample size; enough for a
    // relative signal without criterion's adaptive measurement.
    let batches = sample_size.clamp(1, 20);
    for _ in 0..batches {
        f(&mut bencher);
    }
    bencher.report(name);
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
