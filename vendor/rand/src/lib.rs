//! Offline stand-in for `rand`.
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] (xoshiro256**-style
//! core seeded via SplitMix64) and the [`Rng`]/[`SeedableRng`] trait
//! surface the workspace uses (`gen_range` over integer and float ranges,
//! `gen_bool`). Not cryptographically secure — it exists so seeded data
//! generation works without network access to crates.io.

use std::ops::{Range, RangeInclusive};

/// Construct an RNG from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-number operations (subset of the real trait).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open or inclusive; integers or
    /// `f64`). Panics on an empty range like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Types usable as a `gen_range` argument.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256**-style generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: i64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_full_int_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0..3));
        }
        assert_eq!(seen.len(), 3);
    }
}
