//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The signature difference that matters to callers is that `lock()` /
//! `read()` / `write()` return guards directly (no poisoning `Result`);
//! a poisoned std lock is unwrapped into the inner guard, matching
//! parking_lot's "no poisoning" semantics closely enough for this
//! workspace.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
